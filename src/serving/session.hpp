#pragma once
// InferenceSession: a frozen model hosted for forward-only execution.
//
// The session owns one *primary* net (batch 1) that holds the weights —
// optionally restored from a serialized checkpoint — plus a pool of
// *replicas*: per-batch-size nets whose activation blobs act as
// per-request arenas and whose parameters are shared read-only with the
// primary via Net::share_params_from (no weight copies). Replica batch
// sizes are rounded up to powers of two so the pool stays bounded
// ({1,2,4,8,...}) and every scope is profiled once during warmup instead
// of mid-traffic; slack slots are padded with the last real sample and
// their outputs ignored (per-sample independence keeps the real slots
// bit-exact).
//
// Every net is built with ExecContext::inference = true, so layers skip
// all gradient/solver scratch and Net::backward() throws.

#include <memory>
#include <string>
#include <vector>

#include "kernels/coalesce.hpp"
#include "kernels/dispatch.hpp"
#include "minicaffe/layers/input_layer.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/serialization.hpp"

namespace serving {

struct SessionOptions {
  kern::ComputeMode mode = kern::ComputeMode::kNumeric;
  /// Optional checkpoint to restore into the primary net (see
  /// mc::save_weights). Empty: keep the spec's filler-initialised weights.
  /// Keys must match the session's (possibly prefixed) layer names — a
  /// snapshot from save_weights(session.primary(), ...) always does.
  std::string weights_path;
  /// Prepended to every layer name (e.g. "t0:"): multi-tenant servers use
  /// it so scheduler scope keys never collide across tenants.
  std::string name_prefix;
  /// Wrap the dispatcher in a kern::CoalescingDispatcher per replica:
  /// steady per-sample scopes merge each lane's kernel chain into one
  /// launch per stream, cutting the serial host launch overhead by ~the
  /// batch size while keeping outputs bit-identical. No effect on
  /// profiling scopes or on dispatchers that never report a scope
  /// coalescable (e.g. the serial baseline).
  bool coalesce_lanes = false;
  std::uint64_t filler_seed = 0x5eedULL;
};

/// Round up to the replica pool's batch granularity (next power of two).
int replica_batch_for(int batch);

class InferenceSession {
 public:
  struct Replica {
    std::unique_ptr<mc::ExecContext> ec;
    /// Lane-coalescing wrapper around the session dispatcher (only when
    /// SessionOptions::coalesce_lanes is set).
    std::unique_ptr<kern::CoalescingDispatcher> coalescing;
    std::unique_ptr<mc::Net> net;
    mc::InputLayer* input = nullptr;
    mc::Blob* output = nullptr;
    int batch = 0;
    bool busy = false;
  };

  InferenceSession(scuda::Context& ctx, kern::KernelDispatcher& dispatcher,
                   mc::NetSpec spec, SessionOptions opts = {});

  /// Find an idle replica for `batch` requests (rounded up to the pool
  /// granularity), building one on first use. Marks it busy.
  Replica& checkout(int batch);
  void release(Replica& r) { r.busy = false; }

  /// Fill the replica's input staging from `samples` (one pointer per
  /// request; slack slots repeat the last sample), point it at `home` as
  /// its home stream, and launch the forward pass (asynchronous).
  /// `samples` may be empty in timing-only mode.
  void run_batch(Replica& r, const std::vector<const float*>& samples,
                 gpusim::StreamId home);

  /// Pointer to request i's output sample in the replica's output blob.
  /// Valid once the batch's completion event has been reached.
  const float* output_of(const Replica& r, int i) const;

  std::size_t sample_input_size() const { return input_size_; }
  std::size_t sample_output_size() const { return output_size_; }
  mc::Net& primary() { return *replicas_.front()->net; }
  const mc::NetSpec& spec() const { return spec_; }
  /// Replicas built so far (primary included) — the arena high-water mark.
  std::size_t replica_count() const { return replicas_.size(); }

 private:
  Replica& build_replica(int batch);

  scuda::Context* ctx_;
  kern::KernelDispatcher* dispatcher_;
  mc::NetSpec spec_;  ///< batch-agnostic template (Input batch rewritten)
  SessionOptions opts_;
  std::string output_blob_;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  /// All replicas, primary first (replicas_[0]).
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace serving
