#include "serving/trace_gen.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace serving {
namespace {

/// Exponential gap at `rate` requests per second, in sim nanoseconds.
double exp_gap_ns(glp::Rng& rng, double rate_rps) {
  const double u = rng.next_double();  // [0,1)
  return -std::log(1.0 - u) / rate_rps * 1e9;
}

/// Burst envelope: rate multiplier at absolute time t.
double burst_rate(const TraceSpec& s, double t_ns) {
  const double period = s.burst_period_ms * gpusim::kMs;
  const double phase = std::fmod(t_ns, period) / period;
  // Scale the off-phase so the time-averaged rate stays rate_rps:
  //   duty*factor + (1-duty)*off = 1
  const double off =
      (1.0 - s.burst_duty * s.burst_factor) / (1.0 - s.burst_duty);
  const double mult = (phase < s.burst_duty) ? s.burst_factor
                                             : std::max(off, 0.05);
  return s.rate_rps * mult;
}

}  // namespace

std::vector<InferenceRequest> make_trace(
    const TraceSpec& spec, const std::vector<std::size_t>& input_sizes) {
  GLP_REQUIRE(spec.requests >= 1, "trace needs at least one request");
  GLP_REQUIRE(spec.rate_rps > 0.0, "offered load must be positive");
  GLP_REQUIRE(spec.tenants >= 1, "trace needs at least one tenant");
  GLP_REQUIRE(static_cast<int>(input_sizes.size()) >= spec.tenants,
              "input_sizes must cover every tenant");
  if (spec.arrival == ArrivalProcess::kBursty) {
    GLP_REQUIRE(spec.burst_duty > 0.0 && spec.burst_duty < 1.0,
                "burst_duty must be in (0,1)");
    GLP_REQUIRE(spec.burst_duty * spec.burst_factor < 1.0,
                "burst envelope leaves no off-phase budget "
                "(duty*factor must be < 1)");
  }

  glp::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xabcdefULL);
  std::vector<InferenceRequest> trace;
  trace.reserve(static_cast<std::size_t>(spec.requests));
  double t = 0.0;
  for (int i = 0; i < spec.requests; ++i) {
    switch (spec.arrival) {
      case ArrivalProcess::kPoisson:
        t += exp_gap_ns(rng, spec.rate_rps);
        break;
      case ArrivalProcess::kBursty:
        t += exp_gap_ns(rng, burst_rate(spec, t));
        break;
      case ArrivalProcess::kUniform:
        t += 1e9 / spec.rate_rps;
        break;
    }
    InferenceRequest r;
    r.id = static_cast<std::uint64_t>(i);
    r.tenant = (spec.tenants == 1)
                   ? 0
                   : static_cast<int>(rng.next_below(
                         static_cast<std::uint64_t>(spec.tenants)));
    r.arrival_ns = t;
    if (spec.deadline_ms > 0.0) r.deadline_ns = t + spec.deadline_ms * gpusim::kMs;
    if (spec.fill_inputs) {
      const std::size_t n = input_sizes[static_cast<std::size_t>(r.tenant)];
      r.input.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        r.input[k] = static_cast<float>(rng.next_double() * 2.0 - 1.0);
      }
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

}  // namespace serving
