#include "serving/trace_gen.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace serving {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exponential gap at `rate` requests per second, in sim nanoseconds.
double exp_gap_ns(glp::Rng& rng, double rate_rps) {
  const double u = rng.next_double();  // [0,1)
  return -std::log(1.0 - u) / rate_rps * 1e9;
}

/// Pareto gap with shape `alpha` and mean 1/rate, in sim nanoseconds.
/// xm = mean*(alpha-1)/alpha is the scale that yields that mean.
double pareto_gap_ns(glp::Rng& rng, double rate_rps, double alpha) {
  const double mean_ns = 1e9 / rate_rps;
  const double xm = mean_ns * (alpha - 1.0) / alpha;
  const double u = 1.0 - rng.next_double();  // (0,1]
  return xm / std::pow(u, 1.0 / alpha);
}

/// On/off envelope multiplier: `factor` during the first `duty` fraction
/// of each period, normalized off-phase otherwise so the time-averaged
/// multiplier is 1 (duty*factor + (1-duty)*off = 1).
double on_off_mult(double t_ns, double period_ms, double duty, double factor) {
  const double period = period_ms * gpusim::kMs;
  const double phase = std::fmod(t_ns, period) / period;
  const double off = (1.0 - duty * factor) / (1.0 - duty);
  return (phase < duty) ? factor : std::max(off, 0.05);
}

/// Envelope multiplier at absolute time t for the modulated processes;
/// 1.0 for the homogeneous ones.
double envelope_mult(const TraceSpec& s, double t_ns) {
  switch (s.arrival) {
    case ArrivalProcess::kBursty:
      return on_off_mult(t_ns, s.burst_period_ms, s.burst_duty, s.burst_factor);
    case ArrivalProcess::kDiurnal: {
      const double period = s.diurnal_period_ms * gpusim::kMs;
      return 1.0 + s.diurnal_amplitude * std::sin(2.0 * kPi * t_ns / period);
    }
    case ArrivalProcess::kFlashCrowd:
    case ArrivalProcess::kAdversarial:
      return on_off_mult(t_ns, s.flash_period_ms, s.flash_duty, s.flash_factor);
    default:
      return 1.0;
  }
}

/// Peak of the envelope (the thinning proposal rate's multiplier).
double envelope_peak(const TraceSpec& s) {
  switch (s.arrival) {
    case ArrivalProcess::kBursty:
      return s.burst_factor;
    case ArrivalProcess::kDiurnal:
      return 1.0 + s.diurnal_amplitude;
    case ArrivalProcess::kFlashCrowd:
    case ArrivalProcess::kAdversarial:
      return s.flash_factor;
    default:
      return 1.0;
  }
}

bool is_modulated(ArrivalProcess p) {
  return p == ArrivalProcess::kBursty || p == ArrivalProcess::kDiurnal ||
         p == ArrivalProcess::kFlashCrowd || p == ArrivalProcess::kAdversarial;
}

/// True when t falls inside an adversarial spike window.
bool in_flash(const TraceSpec& s, double t_ns) {
  const double period = s.flash_period_ms * gpusim::kMs;
  return std::fmod(t_ns, period) / period < s.flash_duty;
}

}  // namespace

const char* arrival_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kDiurnal: return "diurnal";
    case ArrivalProcess::kFlashCrowd: return "flash_crowd";
    case ArrivalProcess::kHeavyTail: return "heavy_tail";
    case ArrivalProcess::kAdversarial: return "adversarial";
  }
  return "?";
}

std::vector<InferenceRequest> make_trace(
    const TraceSpec& spec, const std::vector<std::size_t>& input_sizes) {
  GLP_REQUIRE(spec.requests >= 1, "trace needs at least one request");
  GLP_REQUIRE(spec.rate_rps > 0.0, "offered load must be positive");
  GLP_REQUIRE(spec.tenants >= 1, "trace needs at least one tenant");
  GLP_REQUIRE(static_cast<int>(input_sizes.size()) >= spec.tenants,
              "input_sizes must cover every tenant");
  if (spec.arrival == ArrivalProcess::kBursty) {
    GLP_REQUIRE(spec.burst_duty > 0.0 && spec.burst_duty < 1.0,
                "burst_duty must be in (0,1)");
    GLP_REQUIRE(spec.burst_duty * spec.burst_factor < 1.0,
                "burst envelope leaves no off-phase budget "
                "(duty*factor must be < 1)");
  }
  if (spec.arrival == ArrivalProcess::kFlashCrowd ||
      spec.arrival == ArrivalProcess::kAdversarial) {
    GLP_REQUIRE(spec.flash_duty > 0.0 && spec.flash_duty < 1.0,
                "flash_duty must be in (0,1)");
    GLP_REQUIRE(spec.flash_duty * spec.flash_factor < 1.0,
                "flash envelope leaves no off-phase budget "
                "(duty*factor must be < 1)");
  }
  if (spec.arrival == ArrivalProcess::kDiurnal) {
    GLP_REQUIRE(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0,
                "diurnal_amplitude must be in [0,1)");
  }
  if (spec.arrival == ArrivalProcess::kHeavyTail) {
    GLP_REQUIRE(spec.pareto_alpha > 1.0,
                "pareto_alpha must exceed 1 for the mean gap to exist");
  }
  if (spec.arrival == ArrivalProcess::kAdversarial) {
    GLP_REQUIRE(spec.adversary_tenant >= 0 &&
                    spec.adversary_tenant < spec.tenants,
                "adversary_tenant out of range");
  }

  glp::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xabcdefULL);
  const bool modulated = is_modulated(spec.arrival);
  const double peak_rps = spec.rate_rps * envelope_peak(spec);

  std::vector<InferenceRequest> trace;
  trace.reserve(static_cast<std::size_t>(spec.requests));
  double t = 0.0;
  for (int i = 0; i < spec.requests; ++i) {
    if (modulated) {
      // Thinning (Lewis–Shedler): propose at the peak rate, accept with
      // probability rate(t)/peak — unbiased for any bounded envelope.
      for (;;) {
        t += exp_gap_ns(rng, peak_rps);
        const double accept = envelope_mult(spec, t) / envelope_peak(spec);
        if (rng.next_double() < accept) break;
      }
    } else if (spec.arrival == ArrivalProcess::kPoisson) {
      t += exp_gap_ns(rng, spec.rate_rps);
    } else if (spec.arrival == ArrivalProcess::kHeavyTail) {
      t += pareto_gap_ns(rng, spec.rate_rps, spec.pareto_alpha);
    } else {  // kUniform
      t += 1e9 / spec.rate_rps;
    }
    InferenceRequest r;
    r.id = static_cast<std::uint64_t>(i);
    if (spec.arrival == ArrivalProcess::kAdversarial && in_flash(spec, t)) {
      r.tenant = spec.adversary_tenant;
    } else {
      r.tenant = (spec.tenants == 1)
                     ? 0
                     : static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(spec.tenants)));
    }
    r.arrival_ns = t;
    if (spec.deadline_ms > 0.0) r.deadline_ns = t + spec.deadline_ms * gpusim::kMs;
    if (spec.fill_inputs) {
      const std::size_t n = input_sizes[static_cast<std::size_t>(r.tenant)];
      r.input.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        r.input[k] = static_cast<float>(rng.next_double() * 2.0 - 1.0);
      }
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

}  // namespace serving
