#pragma once
// Synthetic open-loop traffic generation over one or more tenants.
// Deterministic for a given spec (seeded xoshiro), so replays and
// differential tests are reproducible.
//
// Arrival processes:
//   poisson     — homogeneous exponential inter-arrival gaps
//   bursty      — Poisson modulated by an on/off burst envelope
//   uniform     — fixed gaps at exactly rate_rps
//   diurnal     — Poisson modulated by a sinusoidal day/night envelope
//   flash_crowd — Poisson with short periodic spikes (flash_factor x)
//   heavy_tail  — renewal process with Pareto(alpha) gaps: most gaps are
//                 short but rare huge silences dominate the tail
//   adversarial — flash-crowd envelope in which every spike's requests
//                 come from ONE tenant (the adversary) hammering the
//                 service while the rest arrive as normal background
//
// Every modulated envelope is normalized so the time-averaged rate stays
// rate_rps, and modulated processes are sampled by *thinning* (generate
// at the envelope peak, accept with probability rate(t)/peak), which is
// the unbiased construction for an inhomogeneous Poisson process — the
// realized rate converges to the offered rate for every pattern.

#include <vector>

#include "serving/request.hpp"

namespace serving {

enum class ArrivalProcess {
  kPoisson,     ///< exponential inter-arrival gaps
  kBursty,      ///< Poisson modulated by an on/off burst envelope
  kUniform,     ///< fixed gaps at exactly rate_rps
  kDiurnal,     ///< sinusoidal envelope (day/night traffic shape)
  kFlashCrowd,  ///< short periodic spikes over a calm baseline
  kHeavyTail,   ///< Pareto inter-arrival gaps (rare long silences)
  kAdversarial, ///< flash spikes attributed entirely to one tenant
};

const char* arrival_name(ArrivalProcess p);

struct TraceSpec {
  int requests = 1000;
  double rate_rps = 2000.0;  ///< mean offered load across all tenants
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Bursty: rate multiplier while a burst is on; off-phase rate is scaled
  /// down to preserve the overall mean (so duty*factor must stay < 1).
  double burst_factor = 3.0;
  double burst_duty = 0.25;    ///< fraction of time spent bursting
  double burst_period_ms = 20.0;
  /// Diurnal: rate(t) = rate_rps * (1 + amplitude*sin(2*pi*t/period)).
  double diurnal_amplitude = 0.8;  ///< in [0, 1)
  double diurnal_period_ms = 200.0;
  /// Flash crowd / adversarial: spike multiplier, spike duty cycle and
  /// period; off-phase is normalized like bursty (duty*factor < 1).
  double flash_factor = 10.0;
  double flash_duty = 0.05;
  double flash_period_ms = 100.0;
  /// Heavy tail: Pareto shape; must be > 1 so the mean gap exists (> 2
  /// for a finite variance; the 2.5 default has mean and variance but a
  /// much heavier tail than the exponential).
  double pareto_alpha = 2.5;
  /// Adversarial: the tenant every spike's requests are attributed to.
  int adversary_tenant = 0;
  int tenants = 1;             ///< requests assigned round-robin-free (random)
  double deadline_ms = 0.0;    ///< per-request deadline after arrival; 0 = none
  std::uint64_t seed = 42;
  bool fill_inputs = true;     ///< false for timing-only replays
};

/// Generate an arrival-ordered trace. `input_sizes[t]` is tenant t's
/// per-sample element count (used to fill inputs with uniform [-1,1)
/// values when fill_inputs is set).
std::vector<InferenceRequest> make_trace(
    const TraceSpec& spec, const std::vector<std::size_t>& input_sizes);

}  // namespace serving
