#pragma once
// Synthetic open-loop traffic generation: Poisson, bursty (two-state
// modulated Poisson), and uniform arrival processes over one or more
// tenants. Deterministic for a given spec (seeded xoshiro), so replays
// and differential tests are reproducible.

#include <vector>

#include "serving/request.hpp"

namespace serving {

enum class ArrivalProcess {
  kPoisson,  ///< exponential inter-arrival gaps
  kBursty,   ///< Poisson modulated by an on/off burst envelope
  kUniform,  ///< fixed gaps at exactly rate_rps
};

struct TraceSpec {
  int requests = 1000;
  double rate_rps = 2000.0;  ///< mean offered load across all tenants
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Bursty: rate multiplier while a burst is on; off-phase rate is scaled
  /// down to preserve the overall mean (so duty*factor must stay < 1).
  double burst_factor = 3.0;
  double burst_duty = 0.25;    ///< fraction of time spent bursting
  double burst_period_ms = 20.0;
  int tenants = 1;             ///< requests assigned round-robin-free (random)
  double deadline_ms = 0.0;    ///< per-request deadline after arrival; 0 = none
  std::uint64_t seed = 42;
  bool fill_inputs = true;     ///< false for timing-only replays
};

/// Generate an arrival-ordered trace. `input_sizes[t]` is tenant t's
/// per-sample element count (used to fill inputs with uniform [-1,1)
/// values when fill_inputs is set).
std::vector<InferenceRequest> make_trace(
    const TraceSpec& spec, const std::vector<std::size_t>& input_sizes);

}  // namespace serving
