#include "simcuda/context.hpp"

#include <cstdlib>
#include <cstring>

#include "common/strings.hpp"

namespace scuda {

void* Context::malloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes_allocated_ + bytes > props().mem_bytes) {
    throw OutOfMemory(glp::strformat(
        "device %s out of memory: requested %zu with %zu of %zu in use",
        props().name.c_str(), bytes, bytes_allocated_, props().mem_bytes));
  }
  void* ptr = std::malloc(bytes);
  GLP_CHECK_MSG(ptr != nullptr, "host allocation of " << bytes << " bytes failed");
  allocations_[ptr] = bytes;
  bytes_allocated_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes_allocated_);
  return ptr;
}

void Context::free(void* ptr) {
  if (ptr == nullptr) return;
  auto it = allocations_.find(ptr);
  GLP_REQUIRE(it != allocations_.end(), "free of pointer not allocated here");
  bytes_allocated_ -= it->second;
  allocations_.erase(it);
  std::free(ptr);
}

void Context::memcpy_async(void* dst, const void* src, std::size_t bytes,
                           bool host_to_device, StreamId stream) {
  device().memcpy_async(stream, bytes, host_to_device,
                        [dst, src, bytes] { std::memcpy(dst, src, bytes); });
}

void Context::memcpy(void* dst, const void* src, std::size_t bytes,
                     bool host_to_device) {
  memcpy_async(dst, src, bytes, host_to_device, kDefaultStream);
  device().synchronize_stream(kDefaultStream);
}

}  // namespace scuda
