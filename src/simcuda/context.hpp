#pragma once
// CUDA-runtime-like context for one simulated device: owns the engine,
// tracks "device" memory allocations against the device's capacity, and
// offers the memcpy entry points. Allocations are ordinary host memory —
// the simulator only times transfers; math runs in place.

#include <cstddef>
#include <map>
#include <memory>

#include "common/check.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/engine.hpp"
#include "simcuda/fault_injection.hpp"

namespace scuda {

using gpusim::StreamId;
using gpusim::kDefaultStream;

class OutOfMemory : public glp::Error {
 public:
  explicit OutOfMemory(const std::string& what) : Error(what) {}
};

class Context {
 public:
  /// `kind` selects the event-loop implementation: the optimized engine
  /// (default, production) or the golden ReferenceEngine — the testing
  /// seam the equivalence suite runs the whole stack through.
  explicit Context(gpusim::DeviceProps props,
                   gpusim::EngineKind kind = gpusim::EngineKind::kOptimized)
      : device_(gpusim::make_device_engine(std::move(props), kind)) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  gpusim::DeviceEngine& device() { return *device_; }
  const gpusim::DeviceEngine& device() const { return *device_; }
  const gpusim::DeviceProps& props() const { return device_->props(); }

  /// Allocate `bytes` of device memory. Throws OutOfMemory when the
  /// simulated device capacity would be exceeded.
  void* malloc(std::size_t bytes);
  void free(void* ptr);
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t peak_bytes_allocated() const { return peak_bytes_; }

  /// Timed async H2D/D2H copy. `dst`/`src` must stay alive until the
  /// stream completes. Actual byte movement happens at simulated
  /// completion time (ordering is guaranteed by the stream).
  void memcpy_async(void* dst, const void* src, std::size_t bytes,
                    bool host_to_device, StreamId stream);
  /// Synchronous copy: issues on the default stream and synchronises it.
  void memcpy(void* dst, const void* src, std::size_t bytes, bool host_to_device);

  /// Fault-injection hooks (disarmed by default; see fault_injection.hpp).
  /// The launcher, Stream::create and the resource tracker consult this
  /// before touching the device, mimicking runtime-API error returns.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

 private:
  std::unique_ptr<gpusim::DeviceEngine> device_;
  FaultInjector faults_;
  std::map<void*, std::size_t> allocations_;
  std::size_t bytes_allocated_ = 0;
  std::size_t peak_bytes_ = 0;
};

/// RAII stream handle. Default-constructible as a view of the device's
/// default stream; create(ctx) makes a new asynchronous stream.
class Stream {
 public:
  /// View of the legacy default stream (does not own anything).
  explicit Stream(Context& ctx) : ctx_(&ctx), id_(kDefaultStream), owned_(false) {}

  /// `non_blocking` is the cudaStreamNonBlocking analog: the stream is
  /// exempt from the legacy default-stream barrier (fleet communication
  /// traffic must overlap default-stream compute).
  static Stream create(Context& ctx, int priority = 0,
                       bool non_blocking = false) {
    if (ctx.faults().should_fail_stream_create()) {
      throw StreamCreateFailed("injected stream-creation failure on device " +
                               ctx.props().name);
    }
    Stream s(ctx);
    s.id_ = ctx.device().create_stream(priority, non_blocking);
    s.owned_ = true;
    return s;
  }
  /// Priority the stream was created with.
  int priority() const { return ctx_->device().stream_priority(id_); }

  Stream(Stream&& other) noexcept
      : ctx_(other.ctx_), id_(other.id_), owned_(other.owned_) {
    other.owned_ = false;
  }
  Stream& operator=(Stream&& other) noexcept {
    if (this != &other) {
      release();
      ctx_ = other.ctx_;
      id_ = other.id_;
      owned_ = other.owned_;
      other.owned_ = false;
    }
    return *this;
  }
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;
  ~Stream() { release(); }

  StreamId id() const { return id_; }
  Context& context() const { return *ctx_; }
  bool is_default() const { return id_ == kDefaultStream; }

  void synchronize() { ctx_->device().synchronize_stream(id_); }
  bool idle() const { return ctx_->device().stream_idle(id_); }

 private:
  void release() {
    if (owned_) {
      ctx_->device().destroy_stream(id_);
      owned_ = false;
    }
  }

  Context* ctx_;
  StreamId id_;
  bool owned_;
};

/// RAII event handle in the CUDA style: record() captures a point in a
/// stream, synchronize()/query() observe it, elapsed_ms() measures the
/// simulated interval between two recorded events.
class Event {
 public:
  explicit Event(Context& ctx) : ctx_(&ctx) {}

  void record(const Stream& stream) {
    id_ = ctx_->device().record_event(stream.id());
    recorded_ = true;
  }
  void record(StreamId stream) {
    id_ = ctx_->device().record_event(stream);
    recorded_ = true;
  }

  bool recorded() const { return recorded_; }
  gpusim::EventId id() const {
    GLP_REQUIRE(recorded_, "event was never recorded");
    return id_;
  }

  void synchronize() { ctx_->device().synchronize_event(id()); }
  bool query() const { return recorded_ && ctx_->device().event_complete(id_); }

  /// Simulated milliseconds between this event and `later`
  /// (cudaEventElapsedTime). Both events must have completed.
  float elapsed_ms(const Event& later) const {
    const gpusim::SimTime t0 = ctx_->device().event_time(id());
    const gpusim::SimTime t1 = later.ctx_->device().event_time(later.id());
    return static_cast<float>((t1 - t0) / 1e6);
  }

 private:
  Context* ctx_;
  gpusim::EventId id_ = 0;
  bool recorded_ = false;
};

}  // namespace scuda
