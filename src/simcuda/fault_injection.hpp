#pragma once
// Deterministic fault injection for the simulated CUDA runtime. Real
// deployments hit sporadic cudaLaunchKernel failures (driver resource
// exhaustion), cudaStreamCreate failures (stream-handle limits) and CUPTI
// record loss (activity buffers overflow); the schedule-correctness
// harness injects those faults probabilistically so the scheduler's
// degradation paths are exercised under test instead of in production.
//
// Every Context owns a FaultInjector, disarmed by default: a disarmed
// injector consumes no randomness and adds one branch per fault site, so
// fault-free runs stay bit-identical to a build without the hooks.
// Injection decisions come from a private seeded Rng, making every
// faulty run reproducible from (seed, rates) alone.

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace scuda {

/// A kernel launch the simulated runtime refused (injected).
class LaunchFailed : public glp::Error {
 public:
  explicit LaunchFailed(const std::string& what) : Error(what) {}
};

/// A stream creation the simulated runtime refused (injected).
class StreamCreateFailed : public glp::Error {
 public:
  explicit StreamCreateFailed(const std::string& what) : Error(what) {}
};

/// Per-site failure probabilities in [0, 1].
struct FaultConfig {
  double launch_failure_rate = 0.0;         ///< kernel launches
  double stream_create_failure_rate = 0.0;  ///< Stream::create
  double capture_loss_rate = 0.0;           ///< profiler records dropped
  std::uint64_t seed = 0xfa17ed5eedULL;
};

class FaultInjector {
 public:
  /// Arm the injector with the given rates. Re-arming reseeds the
  /// deterministic decision stream.
  void arm(const FaultConfig& config) {
    GLP_REQUIRE(config.launch_failure_rate >= 0.0 &&
                    config.launch_failure_rate <= 1.0 &&
                    config.stream_create_failure_rate >= 0.0 &&
                    config.stream_create_failure_rate <= 1.0 &&
                    config.capture_loss_rate >= 0.0 &&
                    config.capture_loss_rate <= 1.0,
                "fault rates must be probabilities in [0, 1]");
    config_ = config;
    rng_.reseed(config.seed);
    armed_ = config.launch_failure_rate > 0.0 ||
             config.stream_create_failure_rate > 0.0 ||
             config.capture_loss_rate > 0.0;
  }
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // --- fault sites (each consumes one decision when armed) -----------------
  bool should_fail_launch() {
    if (!armed_ || config_.launch_failure_rate <= 0.0) return false;
    if (rng_.next_double() >= config_.launch_failure_rate) return false;
    ++launch_faults_;
    return true;
  }
  bool should_fail_stream_create() {
    if (!armed_ || config_.stream_create_failure_rate <= 0.0) return false;
    if (rng_.next_double() >= config_.stream_create_failure_rate) return false;
    ++stream_create_faults_;
    return true;
  }
  bool should_drop_capture() {
    if (!armed_ || config_.capture_loss_rate <= 0.0) return false;
    if (rng_.next_double() >= config_.capture_loss_rate) return false;
    ++capture_records_dropped_;
    return true;
  }

  // --- bookkeeping (for tests and the fuzz driver's report) ----------------
  std::uint64_t launch_faults() const { return launch_faults_; }
  std::uint64_t stream_create_faults() const { return stream_create_faults_; }
  std::uint64_t capture_records_dropped() const {
    return capture_records_dropped_;
  }
  std::uint64_t total_faults() const {
    return launch_faults_ + stream_create_faults_ + capture_records_dropped_;
  }

 private:
  bool armed_ = false;
  FaultConfig config_;
  glp::Rng rng_;
  std::uint64_t launch_faults_ = 0;
  std::uint64_t stream_create_faults_ = 0;
  std::uint64_t capture_records_dropped_ = 0;
};

}  // namespace scuda
