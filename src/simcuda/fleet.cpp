#include "simcuda/fleet.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scuda {

Fleet::Fleet(std::vector<gpusim::DeviceProps> device_props,
             FleetOptions options)
    : links_(static_cast<int>(device_props.size()), options.topology,
             options.link),
      options_(options) {
  GLP_REQUIRE(!device_props.empty(), "fleet needs at least one device");
  devices_.reserve(device_props.size());
  for (auto& props : device_props) {
    devices_.push_back(
        std::make_unique<Context>(std::move(props), options.engine));
  }
}

Fleet Fleet::homogeneous(int count, const gpusim::DeviceProps& props,
                         FleetOptions options) {
  GLP_REQUIRE(count >= 1, "fleet needs at least one device");
  std::vector<gpusim::DeviceProps> all(static_cast<std::size_t>(count), props);
  return Fleet(std::move(all), options);
}

void Fleet::synchronize_all() {
  for (auto& dev : devices_) dev->device().synchronize();
}

void Fleet::advance_all_to(gpusim::SimTime t) {
  for (auto& dev : devices_) dev->device().advance_device_to(t);
}

gpusim::SimTime Fleet::max_device_now() const {
  gpusim::SimTime t = 0.0;
  for (const auto& dev : devices_)
    t = std::max(t, dev->device().device_now());
  return t;
}

}  // namespace scuda
