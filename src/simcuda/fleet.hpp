#pragma once
// Multi-device fleet: N simulated devices joined by an explicit
// interconnect model (gpusim::LinkModel). Each device keeps its own
// Context (engine, allocator, fault injector); the fleet adds the
// cross-device glue — channel-aware transfer timing and co-simulation
// helpers that keep the per-device clocks consistent while transfers
// are resolved externally.
//
// Cross-device copies flow through the engines' memcpy_peer op: the
// fleet computes each transfer's exact (start, end) span on the shared
// LinkModel (processor-sharing contention, per-direction channels) and
// hands the span to the *destination* device, where the copy rides the
// normal event-horizon machinery — ordered by its stream, overlapped
// with compute, visible to events recorded after it. See
// docs/FLEET.md.

#include <memory>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/interconnect.hpp"
#include "simcuda/context.hpp"

namespace scuda {

struct FleetOptions {
  gpusim::LinkTopology topology = gpusim::LinkTopology::kNvlinkRing;
  gpusim::LinkProps link = gpusim::LinkProps::nvlink();
  gpusim::EngineKind engine = gpusim::EngineKind::kOptimized;
};

class Fleet {
 public:
  /// One context per entry of `device_props` (heterogeneous fleets are
  /// legal; the serving shard placer uses them).
  Fleet(std::vector<gpusim::DeviceProps> device_props, FleetOptions options);

  /// Homogeneous convenience: `count` copies of `props`.
  static Fleet homogeneous(int count, const gpusim::DeviceProps& props,
                           FleetOptions options = {});

  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  int size() const { return static_cast<int>(devices_.size()); }
  Context& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  const Context& device(int i) const {
    return *devices_.at(static_cast<std::size_t>(i));
  }
  gpusim::LinkModel& links() { return links_; }
  const gpusim::LinkModel& links() const { return links_; }
  const FleetOptions& options() const { return options_; }

  /// Drain every device's work queue (device-by-device; legal because
  /// inter-device dependencies are always materialized as memcpy_peer
  /// spans before this is called).
  void synchronize_all();

  /// Advance every device's simulated clock to at least `t`.
  void advance_all_to(gpusim::SimTime t);

  /// Max of the per-device clocks — the fleet-wide makespan so far.
  gpusim::SimTime max_device_now() const;

 private:
  std::vector<std::unique_ptr<Context>> devices_;
  gpusim::LinkModel links_;
  FleetOptions options_;
};

}  // namespace scuda
