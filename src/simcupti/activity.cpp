#include "simcupti/activity.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scupti {

namespace {
constexpr std::size_t kKindTagBytes = sizeof(std::uint32_t);

std::size_t record_footprint(std::size_t record_size) {
  return kKindTagBytes + record_size;
}
}  // namespace

ActivityApi::ActivityApi(scuda::Context& ctx) : ctx_(ctx) {
  ctx_.device().set_kernel_callback(
      [this](const gpusim::KernelRecord& rec) { on_kernel(rec); });
  ctx_.device().set_copy_callback(
      [this](const gpusim::CopyRecord& rec) { on_copy(rec); });
}

ActivityApi::~ActivityApi() {
  flush_all();
  ctx_.device().set_kernel_callback(nullptr);
  ctx_.device().set_copy_callback(nullptr);
}

void ActivityApi::register_callbacks(BufferRequest request, BufferComplete complete) {
  request_ = std::move(request);
  complete_ = std::move(complete);
}

void ActivityApi::enable(ActivityKind kind) {
  GLP_REQUIRE(request_ && complete_,
              "register_callbacks must precede enabling activity collection");
  if (kind == ActivityKind::kKernel) kernel_enabled_ = true;
  if (kind == ActivityKind::kMemcpy) memcpy_enabled_ = true;
}

void ActivityApi::disable(ActivityKind kind) {
  if (kind == ActivityKind::kKernel) kernel_enabled_ = false;
  if (kind == ActivityKind::kMemcpy) memcpy_enabled_ = false;
}

bool ActivityApi::enabled(ActivityKind kind) const {
  return kind == ActivityKind::kKernel ? kernel_enabled_ : memcpy_enabled_;
}

void ActivityApi::flush_all() {
  if (buffer_ != nullptr && buffer_used_ > 0) deliver_current();
}

std::size_t ActivityApi::runtime_memory_bytes() const {
  return kRuntimeArenaBytes + outstanding_buffer_bytes_;
}

void ActivityApi::on_kernel(const gpusim::KernelRecord& rec) {
  if (!kernel_enabled_) return;
  ActivityKernel a;
  a.correlation_id = rec.correlation_id;
  a.start_ns = static_cast<std::uint64_t>(rec.start_ns);
  a.end_ns = static_cast<std::uint64_t>(rec.end_ns);
  a.grid_x = rec.config.grid.x;
  a.grid_y = rec.config.grid.y;
  a.grid_z = rec.config.grid.z;
  a.block_x = rec.config.block.x;
  a.block_y = rec.config.block.y;
  a.block_z = rec.config.block.z;
  a.registers_per_thread = rec.config.regs_per_thread;
  a.static_shared_memory = static_cast<std::uint32_t>(rec.config.smem_static_bytes);
  a.dynamic_shared_memory = static_cast<std::uint32_t>(rec.config.smem_dynamic_bytes);
  a.stream_id = rec.stream;
  std::strncpy(a.name, rec.name.c_str(), sizeof(a.name) - 1);
  append(ActivityKind::kKernel, &a, sizeof(a));
}

void ActivityApi::on_copy(const gpusim::CopyRecord& rec) {
  if (!memcpy_enabled_) return;
  ActivityMemcpy a;
  a.correlation_id = rec.correlation_id;
  a.start_ns = static_cast<std::uint64_t>(rec.start_ns);
  a.end_ns = static_cast<std::uint64_t>(rec.end_ns);
  a.bytes = rec.bytes;
  a.stream_id = rec.stream;
  a.host_to_device = rec.host_to_device ? 1 : 0;
  append(ActivityKind::kMemcpy, &a, sizeof(a));
}

void ActivityApi::append(ActivityKind kind, const void* record,
                         std::size_t record_size) {
  const std::size_t need = record_footprint(record_size);
  if (buffer_ == nullptr || buffer_used_ + need > buffer_size_) {
    if (buffer_ != nullptr) deliver_current();
    if (!acquire_buffer() || buffer_size_ < need) {
      ++dropped_;
      return;
    }
  }
  const auto tag = static_cast<std::uint32_t>(kind);
  std::memcpy(buffer_ + buffer_used_, &tag, kKindTagBytes);
  std::memcpy(buffer_ + buffer_used_ + kKindTagBytes, record, record_size);
  buffer_used_ += need;
}

bool ActivityApi::acquire_buffer() {
  buffer_ = nullptr;
  buffer_size_ = 0;
  buffer_used_ = 0;
  if (!request_) return false;
  request_(&buffer_, &buffer_size_);
  if (buffer_ == nullptr || buffer_size_ == 0) {
    buffer_ = nullptr;
    return false;
  }
  outstanding_buffer_bytes_ += buffer_size_;
  return true;
}

void ActivityApi::deliver_current() {
  GLP_CHECK(buffer_ != nullptr);
  std::uint8_t* buf = buffer_;
  const std::size_t size = buffer_size_;
  const std::size_t valid = buffer_used_;
  outstanding_buffer_bytes_ -= size;
  buffer_ = nullptr;
  buffer_size_ = 0;
  buffer_used_ = 0;
  complete_(buf, size, valid);
}

std::vector<ActivityRecordView> ActivityApi::parse(const std::uint8_t* buffer,
                                                   std::size_t valid) {
  std::vector<ActivityRecordView> out;
  std::size_t off = 0;
  while (off + kKindTagBytes <= valid) {
    std::uint32_t tag = 0;
    std::memcpy(&tag, buffer + off, kKindTagBytes);
    off += kKindTagBytes;
    ActivityRecordView view;
    view.kind = static_cast<ActivityKind>(tag);
    if (view.kind == ActivityKind::kKernel) {
      GLP_CHECK(off + sizeof(ActivityKernel) <= valid);
      std::memcpy(&view.kernel, buffer + off, sizeof(ActivityKernel));
      off += sizeof(ActivityKernel);
    } else if (view.kind == ActivityKind::kMemcpy) {
      GLP_CHECK(off + sizeof(ActivityMemcpy) <= valid);
      std::memcpy(&view.memcpy_, buffer + off, sizeof(ActivityMemcpy));
      off += sizeof(ActivityMemcpy);
    } else {
      throw glp::InternalError("scupti: corrupt activity buffer");
    }
    out.push_back(view);
  }
  return out;
}

}  // namespace scupti
