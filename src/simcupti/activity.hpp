#pragma once
// CUPTI-like activity API over the simulator. Mirrors the parts of
// NVIDIA CUPTI the paper's resource tracker uses: asynchronous,
// buffer-based collection of kernel and memcpy activity records carrying
// each launch's configuration (grid, block, registers per thread, static
// and dynamic shared memory) and timestamps.
//
// Memory accounting: the paper's Fig. 10 splits GLP4NN's footprint into
// mem_tt (timestamps), mem_K (kernel configurations) and mem_cupti (the
// CUPTI runtime itself, dominant). runtime_memory_bytes() reports this
// library's counterpart of mem_cupti: a fixed runtime arena plus all
// outstanding activity buffers.

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <vector>

#include "simcuda/context.hpp"

namespace scupti {

enum class ActivityKind : std::uint32_t { kKernel = 1, kMemcpy = 2 };

/// Fixed-layout kernel activity record (mirrors CUpti_ActivityKernel).
struct ActivityKernel {
  std::uint64_t correlation_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t grid_x = 1, grid_y = 1, grid_z = 1;
  std::uint32_t block_x = 1, block_y = 1, block_z = 1;
  std::int32_t registers_per_thread = 0;
  std::uint32_t static_shared_memory = 0;
  std::uint32_t dynamic_shared_memory = 0;
  std::int32_t stream_id = 0;
  char name[64] = {};

  double duration_us() const {
    return static_cast<double>(end_ns - start_ns) / 1000.0;
  }
};

/// Fixed-layout memcpy activity record (mirrors CUpti_ActivityMemcpy).
struct ActivityMemcpy {
  std::uint64_t correlation_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t bytes = 0;
  std::int32_t stream_id = 0;
  std::uint8_t host_to_device = 1;
  std::uint8_t pad[3] = {};
};

/// Decoded view over a completed buffer.
struct ActivityRecordView {
  ActivityKind kind = ActivityKind::kKernel;
  ActivityKernel kernel;   // valid when kind == kKernel
  ActivityMemcpy memcpy_;  // valid when kind == kMemcpy
};

/// The activity collection interface. One ActivityApi may be attached to
/// a Context at a time (it owns the device's completion hooks while
/// alive — exactly like CUPTI owning the real driver's callbacks).
class ActivityApi {
 public:
  /// Called when the library needs an empty buffer.
  using BufferRequest = std::function<void(std::uint8_t** buffer, std::size_t* size)>;
  /// Called when a buffer is full or flushed; `valid` bytes contain records.
  using BufferComplete =
      std::function<void(std::uint8_t* buffer, std::size_t size, std::size_t valid)>;

  explicit ActivityApi(scuda::Context& ctx);
  ~ActivityApi();
  ActivityApi(const ActivityApi&) = delete;
  ActivityApi& operator=(const ActivityApi&) = delete;

  void register_callbacks(BufferRequest request, BufferComplete complete);

  void enable(ActivityKind kind);
  void disable(ActivityKind kind);
  bool enabled(ActivityKind kind) const;

  /// Deliver all partially filled buffers to the client.
  void flush_all();

  /// This library's share of host memory (the paper's mem_cupti):
  /// fixed runtime arena + outstanding activity buffers.
  std::size_t runtime_memory_bytes() const;

  /// Total records dropped because no buffer was available.
  std::uint64_t dropped_records() const { return dropped_; }

  /// Decode the records in a completed buffer.
  static std::vector<ActivityRecordView> parse(const std::uint8_t* buffer,
                                               std::size_t valid);

  /// Fixed arena the runtime keeps resident while attached (CUPTI's own
  /// footprint dwarfs the tracker's record memory; see Fig. 10).
  static constexpr std::size_t kRuntimeArenaBytes = 3u << 20;

 private:
  void on_kernel(const gpusim::KernelRecord& rec);
  void on_copy(const gpusim::CopyRecord& rec);
  void append(ActivityKind kind, const void* record, std::size_t record_size);
  bool acquire_buffer();
  void deliver_current();

  scuda::Context& ctx_;
  BufferRequest request_;
  BufferComplete complete_;
  bool kernel_enabled_ = false;
  bool memcpy_enabled_ = false;

  std::uint8_t* buffer_ = nullptr;
  std::size_t buffer_size_ = 0;
  std::size_t buffer_used_ = 0;
  std::size_t outstanding_buffer_bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace scupti
