#include "testing/differential_runner.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "core/glp4nn.hpp"
#include "kernels/dispatch.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/context.hpp"

namespace glpfuzz {

namespace {

/// Bit-pattern equality: distinguishes -0.0f from 0.0f and treats equal
/// NaN payloads as equal — exactly "the same training run".
bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// Tolerance equality that also accepts identically non-finite pairs
/// (a net whose loss blows up must blow up the same way in both runs).
bool close_enough(float a, float b, double rtol, double atol) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::abs(static_cast<double>(a) - b) <=
         atol + rtol * std::abs(static_cast<double>(a));
}

struct RunOutput {
  std::vector<float> losses;
  std::vector<float> params;
};

RunOutput train(mc::ExecContext& ec, const FuzzCase& c) {
  RunOutput out;
  mc::Net net(c.net, ec);
  mc::SgdSolver solver(net, {});
  solver.step(c.iters,
              [&](int, float loss) { out.losses.push_back(loss); });
  ec.ctx->device().synchronize();
  for (const auto& p : net.learnable_params()) {
    const float* d = p->data();
    out.params.insert(out.params.end(), d, d + p->count());
  }
  return out;
}

int data_batch(const mc::NetSpec& net) {
  for (const mc::LayerSpec& l : net.layers) {
    if (l.type == "Data") return l.params.batch_size;
  }
  return 0;
}

}  // namespace

bool bit_exact_contract(const mc::NetSpec& net,
                        const glp4nn::SchedulerOptions& options) {
  bool has_scope_parallel = false;
  for (const mc::LayerSpec& l : net.layers) {
    if (l.type == "Convolution" || l.type == "Deconvolution") {
      has_scope_parallel = true;
      break;
    }
  }
  // Only conv/deconv fan per-sample work across streams; everything else
  // runs whole-batch kernels on the default stream in program order.
  if (!has_scope_parallel) return true;
  // batch ≤ 32: every sample owns a private gradient-accumulation slot,
  // so the summation order cannot depend on the stream layout.
  if (data_batch(net) <= 32) return true;
  // batch > 32: slots are shared between samples. Only strict-repro pools
  // (divisors of 32) with round-robin assignment keep each slot's
  // accumulation order identical to the serial baseline; block-cyclic
  // assignment interleaves slot owners across streams.
  return options.strict_repro &&
         options.policy == glp4nn::DispatchPolicy::kRoundRobin;
}

DiffResult run_differential(const FuzzCase& c, const DiffOptions& opts) {
  DiffResult r;
  r.bit_exact_expected = bit_exact_contract(c.net, c.options);

  // --- serial baseline (always fault-free) ------------------------------
  RunOutput serial;
  {
    scuda::Context ctx(c.device);
    kern::SerialDispatcher dispatcher(ctx);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &dispatcher;
    serial = train(ec, c);
  }

  // --- GLP4NN run -------------------------------------------------------
  RunOutput glp;
  {
    scuda::Context ctx(c.device);
    scuda::FaultConfig faults = opts.faults;
    if (faults.launch_failure_rate > 0.0 ||
        faults.stream_create_failure_rate > 0.0 ||
        faults.capture_loss_rate > 0.0) {
      // Decorrelate fault draw sequences across cases.
      faults.seed ^= c.seed * 0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    if (opts.check_timeline) ctx.device().timeline().set_enabled(true);

    glp4nn::Glp4nnEngine engine(c.options);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    glp = train(ec, c);

    r.launch_faults = ctx.faults().launch_faults();
    r.stream_faults = ctx.faults().stream_create_faults();
    r.capture_drops = ctx.faults().capture_records_dropped();
    r.serial_fallback_scopes =
        engine.scheduler_for(ctx).serial_fallback_count();
    if (opts.check_timeline) {
      r.races = check_timeline(ctx.device().timeline(), c.device);
    }
  }

  r.serial_losses = serial.losses;
  r.glp_losses = glp.losses;

  auto fail = [&](const std::string& what) {
    if (r.ok) {
      r.ok = false;
      r.failure = what;
    }
  };

  // --- compare ----------------------------------------------------------
  if (serial.losses.size() != glp.losses.size() ||
      serial.params.size() != glp.params.size()) {
    std::ostringstream os;
    os << "shape mismatch: " << serial.losses.size() << "/"
       << glp.losses.size() << " losses, " << serial.params.size() << "/"
       << glp.params.size() << " params";
    fail(os.str());
    return r;
  }
  r.params_compared = serial.params.size();

  bool bits_match = true;
  for (std::size_t i = 0; i < serial.losses.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(serial.losses[i]) - glp.losses[i]);
    if (diff == diff) r.max_loss_diff = std::max(r.max_loss_diff, diff);
    bits_match = bits_match && same_bits(serial.losses[i], glp.losses[i]);
    if (!r.bit_exact_expected &&
        !close_enough(serial.losses[i], glp.losses[i], opts.loss_rtol,
                      opts.loss_atol)) {
      std::ostringstream os;
      os << "loss diverged at iter " << i << ": serial=" << serial.losses[i]
         << " glp=" << glp.losses[i];
      fail(os.str());
    }
  }
  for (std::size_t i = 0; i < serial.params.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(serial.params[i]) - glp.params[i]);
    if (diff == diff) r.max_param_diff = std::max(r.max_param_diff, diff);
    bits_match = bits_match && same_bits(serial.params[i], glp.params[i]);
  }
  r.bit_exact_observed = bits_match;

  if (r.bit_exact_expected && !bits_match) {
    std::ostringstream os;
    os << "bit-exact contract violated (max param diff " << r.max_param_diff
       << ", max loss diff " << r.max_loss_diff << ")";
    fail(os.str());
  }
  if (!r.bit_exact_expected && r.max_param_diff > opts.param_tol) {
    std::ostringstream os;
    os << "parameters diverged: max diff " << r.max_param_diff << " > "
       << opts.param_tol;
    fail(os.str());
  }
  if (!r.races.clean()) {
    std::ostringstream os;
    os << r.races.violations.size() << " timeline ordering violation(s); first: "
       << "[" << kind_name(r.races.violations.front().kind) << "] "
       << r.races.violations.front().detail;
    fail(os.str());
  }
  return r;
}

}  // namespace glpfuzz
