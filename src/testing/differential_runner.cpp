#include "testing/differential_runner.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "core/glp4nn.hpp"
#include "kernels/dispatch.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/net_dag.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/context.hpp"

namespace glpfuzz {

namespace {

/// Bit-pattern equality: distinguishes -0.0f from 0.0f and treats equal
/// NaN payloads as equal — exactly "the same training run".
bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// Bit-pattern equality for simulated timestamps: the engine-equivalence
/// contract is *exact*, not "close" — an ulp of drift means the optimized
/// loop changed the arithmetic.
bool same_bits64(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool same_config(const gpusim::LaunchConfig& a, const gpusim::LaunchConfig& b) {
  return a.grid == b.grid && a.block == b.block &&
         a.regs_per_thread == b.regs_per_thread &&
         a.smem_static_bytes == b.smem_static_bytes &&
         a.smem_dynamic_bytes == b.smem_dynamic_bytes;
}

/// Tolerance equality that also accepts identically non-finite pairs
/// (a net whose loss blows up must blow up the same way in both runs).
bool close_enough(float a, float b, double rtol, double atol) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::abs(static_cast<double>(a) - b) <=
         atol + rtol * std::abs(static_cast<double>(a));
}

struct RunOutput {
  std::vector<float> losses;
  std::vector<float> params;
};

RunOutput train(mc::ExecContext& ec, const FuzzCase& c) {
  RunOutput out;
  mc::Net net(c.net, ec);
  mc::SgdSolver solver(net, {});
  solver.step(c.iters,
              [&](int, float loss) { out.losses.push_back(loss); });
  ec.ctx->device().synchronize();
  for (const auto& p : net.learnable_params()) {
    const float* d = p->data();
    out.params.insert(out.params.end(), d, d + p->count());
  }
  return out;
}

int data_batch(const mc::NetSpec& net) {
  for (const mc::LayerSpec& l : net.layers) {
    if (l.type == "Data") return l.params.batch_size;
  }
  return 0;
}

}  // namespace

bool bit_exact_contract(const mc::NetSpec& net,
                        const glp4nn::SchedulerOptions& options) {
  bool has_scope_parallel = false;
  for (const mc::LayerSpec& l : net.layers) {
    if (l.type == "Convolution" || l.type == "Deconvolution") {
      has_scope_parallel = true;
      break;
    }
  }
  // Only conv/deconv fan per-sample work across streams; everything else
  // runs whole-batch kernels on the default stream in program order.
  if (!has_scope_parallel) return true;
  // batch ≤ 32: every sample owns a private gradient-accumulation slot,
  // so the summation order cannot depend on the stream layout.
  if (data_batch(net) <= 32) return true;
  // batch > 32: slots are shared between samples. Only strict-repro pools
  // (divisors of 32) with round-robin assignment keep each slot's
  // accumulation order identical to the serial baseline; block-cyclic
  // assignment interleaves slot owners across streams.
  return options.strict_repro &&
         options.policy == glp4nn::DispatchPolicy::kRoundRobin;
}

DiffResult run_differential(const FuzzCase& c, const DiffOptions& opts) {
  DiffResult r;
  r.bit_exact_expected = bit_exact_contract(c.net, c.options);

  // --- serial baseline (always fault-free) ------------------------------
  RunOutput serial;
  {
    scuda::Context ctx(c.device);
    kern::SerialDispatcher dispatcher(ctx);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &dispatcher;
    serial = train(ec, c);
  }

  // --- GLP4NN run -------------------------------------------------------
  RunOutput glp;
  {
    scuda::Context ctx(c.device);
    scuda::FaultConfig faults = opts.faults;
    if (faults.launch_failure_rate > 0.0 ||
        faults.stream_create_failure_rate > 0.0 ||
        faults.capture_loss_rate > 0.0) {
      // Decorrelate fault draw sequences across cases.
      faults.seed ^= c.seed * 0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    if (opts.check_timeline) ctx.device().timeline().set_enabled(true);

    glp4nn::Glp4nnEngine engine(c.options);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    glp = train(ec, c);

    r.launch_faults = ctx.faults().launch_faults();
    r.stream_faults = ctx.faults().stream_create_faults();
    r.capture_drops = ctx.faults().capture_records_dropped();
    r.serial_fallback_scopes =
        engine.scheduler_for(ctx).serial_fallback_count();
    if (opts.check_timeline) {
      r.races = check_timeline(ctx.device().timeline(), c.device);
    }
  }

  r.serial_losses = serial.losses;
  r.glp_losses = glp.losses;

  auto fail = [&](const std::string& what) {
    if (r.ok) {
      r.ok = false;
      r.failure = what;
    }
  };

  // --- compare ----------------------------------------------------------
  if (serial.losses.size() != glp.losses.size() ||
      serial.params.size() != glp.params.size()) {
    std::ostringstream os;
    os << "shape mismatch: " << serial.losses.size() << "/"
       << glp.losses.size() << " losses, " << serial.params.size() << "/"
       << glp.params.size() << " params";
    fail(os.str());
    return r;
  }
  r.params_compared = serial.params.size();

  bool bits_match = true;
  for (std::size_t i = 0; i < serial.losses.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(serial.losses[i]) - glp.losses[i]);
    if (diff == diff) r.max_loss_diff = std::max(r.max_loss_diff, diff);
    bits_match = bits_match && same_bits(serial.losses[i], glp.losses[i]);
    if (!r.bit_exact_expected &&
        !close_enough(serial.losses[i], glp.losses[i], opts.loss_rtol,
                      opts.loss_atol)) {
      std::ostringstream os;
      os << "loss diverged at iter " << i << ": serial=" << serial.losses[i]
         << " glp=" << glp.losses[i];
      fail(os.str());
    }
  }
  for (std::size_t i = 0; i < serial.params.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(serial.params[i]) - glp.params[i]);
    if (diff == diff) r.max_param_diff = std::max(r.max_param_diff, diff);
    bits_match = bits_match && same_bits(serial.params[i], glp.params[i]);
  }
  r.bit_exact_observed = bits_match;

  if (r.bit_exact_expected && !bits_match) {
    std::ostringstream os;
    os << "bit-exact contract violated (max param diff " << r.max_param_diff
       << ", max loss diff " << r.max_loss_diff << ")";
    fail(os.str());
  }
  if (!r.bit_exact_expected && r.max_param_diff > opts.param_tol) {
    std::ostringstream os;
    os << "parameters diverged: max diff " << r.max_param_diff << " > "
       << opts.param_tol;
    fail(os.str());
  }
  if (!r.races.clean()) {
    std::ostringstream os;
    os << r.races.violations.size() << " timeline ordering violation(s); first: "
       << "[" << kind_name(r.races.violations.front().kind) << "] "
       << r.races.violations.front().detail;
    fail(os.str());
  }
  return r;
}

std::string compare_timelines(const gpusim::Timeline& a,
                              const gpusim::Timeline& b) {
  std::ostringstream os;
  if (a.kernels().size() != b.kernels().size()) {
    os << "kernel record count " << a.kernels().size() << " vs "
       << b.kernels().size();
    return os.str();
  }
  if (a.copies().size() != b.copies().size()) {
    os << "copy record count " << a.copies().size() << " vs "
       << b.copies().size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.kernels().size(); ++i) {
    const gpusim::KernelRecord& ka = a.kernels()[i];
    const gpusim::KernelRecord& kb = b.kernels()[i];
    const char* field = nullptr;
    if (ka.correlation_id != kb.correlation_id) field = "correlation";
    else if (ka.name != kb.name) field = "name";
    else if (ka.stream != kb.stream) field = "stream";
    else if (!same_config(ka.config, kb.config)) field = "config";
    else if (!same_bits64(ka.submit_ns, kb.submit_ns)) field = "submit_ns";
    else if (!same_bits64(ka.start_ns, kb.start_ns)) field = "start_ns";
    else if (!same_bits64(ka.end_ns, kb.end_ns)) field = "end_ns";
    else if (ka.tenant != kb.tenant) field = "tenant";
    if (field != nullptr) {
      os << "kernel record " << i << " (" << ka.name << " vs " << kb.name
         << ") differs in " << field << " (e.g. end_ns " << ka.end_ns
         << " vs " << kb.end_ns << ")";
      return os.str();
    }
  }
  for (std::size_t i = 0; i < a.copies().size(); ++i) {
    const gpusim::CopyRecord& ca = a.copies()[i];
    const gpusim::CopyRecord& cb = b.copies()[i];
    const char* field = nullptr;
    if (ca.correlation_id != cb.correlation_id) field = "correlation";
    else if (ca.stream != cb.stream) field = "stream";
    else if (ca.bytes != cb.bytes) field = "bytes";
    else if (ca.host_to_device != cb.host_to_device) field = "direction";
    else if (!same_bits64(ca.start_ns, cb.start_ns)) field = "start_ns";
    else if (!same_bits64(ca.end_ns, cb.end_ns)) field = "end_ns";
    else if (ca.tenant != cb.tenant) field = "tenant";
    if (field != nullptr) {
      os << "copy record " << i << " differs in " << field << " (start "
         << ca.start_ns << " vs " << cb.start_ns << ", end " << ca.end_ns
         << " vs " << cb.end_ns << ")";
      return os.str();
    }
  }
  return "";
}

EngineDiffResult run_engine_differential(const FuzzCase& c,
                                         const DiffOptions& opts) {
  EngineDiffResult r;
  r.iters = static_cast<std::size_t>(c.iters);

  RunOutput out[2];
  gpusim::Timeline timelines[2];
  const gpusim::EngineKind kinds[2] = {gpusim::EngineKind::kOptimized,
                                       gpusim::EngineKind::kReference};
  for (int run = 0; run < 2; ++run) {
    scuda::Context ctx(c.device, kinds[run]);
    scuda::FaultConfig faults = opts.faults;
    if (faults.launch_failure_rate > 0.0 ||
        faults.stream_create_failure_rate > 0.0 ||
        faults.capture_loss_rate > 0.0) {
      // Same derived seed for both runs: the fault draw sequence is part
      // of the program being compared, so it must be identical.
      faults.seed ^= c.seed * 0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    ctx.device().timeline().set_enabled(true);

    // Pin the per-scope profiling/analysis charge: the default charges
    // *measured* wall time to the simulated host clock, which would make
    // the two timelines differ for reasons unrelated to the engines.
    glp4nn::SchedulerOptions options = c.options;
    options.overhead_charge_ms = 0.05;
    glp4nn::Glp4nnEngine engine(options);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    ec.dag_schedule = opts.dag_schedule;
    out[run] = train(ec, c);
    timelines[run] = ctx.device().timeline();
  }

  const auto fail = [&](const std::string& why) {
    if (r.ok) {
      r.ok = false;
      r.failure = why;
    }
  };

  if (out[0].losses.size() != out[1].losses.size() ||
      out[0].params.size() != out[1].params.size()) {
    std::ostringstream os;
    os << "shape mismatch: " << out[0].losses.size() << "/"
       << out[1].losses.size() << " losses, " << out[0].params.size() << "/"
       << out[1].params.size() << " params";
    fail(os.str());
    return r;
  }
  for (std::size_t i = 0; i < out[0].losses.size(); ++i) {
    if (!same_bits(out[0].losses[i], out[1].losses[i])) {
      std::ostringstream os;
      os << "loss bits differ at iter " << i << ": optimized="
         << out[0].losses[i] << " reference=" << out[1].losses[i];
      fail(os.str());
      return r;
    }
  }
  for (std::size_t i = 0; i < out[0].params.size(); ++i) {
    if (!same_bits(out[0].params[i], out[1].params[i])) {
      std::ostringstream os;
      os << "parameter bits differ at index " << i << ": optimized="
         << out[0].params[i] << " reference=" << out[1].params[i];
      fail(os.str());
      return r;
    }
  }

  const std::string timeline_diff =
      compare_timelines(timelines[0], timelines[1]);
  if (!timeline_diff.empty()) {
    fail("timeline mismatch (optimized vs reference): " + timeline_diff);
  }
  r.kernels_compared = timelines[0].kernels().size();
  r.copies_compared = timelines[0].copies().size();
  return r;
}

namespace {

std::vector<ScheduledOp> to_checker_ops(
    const std::vector<mc::NetDag::ScheduledOp>& in) {
  std::vector<ScheduledOp> out;
  out.reserve(in.size());
  for (const mc::NetDag::ScheduledOp& op : in) {
    out.push_back(ScheduledOp{op.prefix, op.stream, op.deps});
  }
  return out;
}

}  // namespace

DagDiffResult run_dag_differential(const FuzzCase& c, const DiffOptions& opts) {
  DagDiffResult r;
  r.bit_exact_expected = bit_exact_contract(c.net, c.options);

  const bool arm = opts.faults.launch_failure_rate > 0.0 ||
                   opts.faults.stream_create_failure_rate > 0.0 ||
                   opts.faults.capture_loss_rate > 0.0;

  // --- serial baseline (fault-free serial dispatch, serial issue) -------
  RunOutput serial;
  {
    scuda::Context ctx(c.device);
    kern::SerialDispatcher dispatcher(ctx);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &dispatcher;
    serial = train(ec, c);
  }

  // --- chain-only GLP run (faults armed, DAG issue off) -----------------
  RunOutput chain;
  {
    scuda::Context ctx(c.device);
    if (arm) {
      scuda::FaultConfig faults = opts.faults;
      faults.seed ^= c.seed * 0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    glp4nn::Glp4nnEngine engine(c.options);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    chain = train(ec, c);
  }

  // --- DAG GLP run (same derived fault seed, DAG scheduling + fusion) ---
  RunOutput dag;
  {
    scuda::Context ctx(c.device);
    if (arm) {
      scuda::FaultConfig faults = opts.faults;
      faults.seed ^= c.seed * 0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    if (opts.check_timeline) ctx.device().timeline().set_enabled(true);

    glp4nn::Glp4nnEngine engine(c.options);
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    ec.dag_schedule = true;

    mc::Net net(c.net, ec);
    mc::SgdSolver solver(net, {});
    solver.step(c.iters,
                [&](int, float loss) { dag.losses.push_back(loss); });
    ctx.device().synchronize();
    for (const auto& p : net.learnable_params()) {
      const float* d = p->data();
      dag.params.insert(dag.params.end(), d, d + p->count());
    }

    r.launch_faults = ctx.faults().launch_faults();
    r.stream_faults = ctx.faults().stream_create_faults();
    r.serial_fallback_scopes =
        engine.scheduler_for(ctx).serial_fallback_count();

    const std::vector<mc::NetDag::Op>& fops = net.dag()->forward_ops();
    for (std::size_t i = 0; i < fops.size(); ++i) {
      if (fops[i].absorbed) ++r.relu_epilogues;
      if (fops[i].fused_head == static_cast<int>(i)) ++r.fused_chains;
    }

    if (opts.check_timeline) {
      r.races = check_timeline(ctx.device().timeline(), c.device);
      // Replay one clean pass at a time on an emptied timeline: spans from
      // different training iterations would otherwise aggregate, and every
      // edge whose consumer ran in iteration 0 before the producer's last
      // iteration ended would look violated.
      gpusim::Timeline& tl = ctx.device().timeline();
      tl.clear();
      net.forward();
      ctx.device().synchronize();
      r.forward_schedule =
          check_op_schedule(tl, to_checker_ops(net.dag()->forward_schedule()));
      tl.clear();
      net.backward();
      ctx.device().synchronize();
      r.backward_schedule =
          check_op_schedule(tl, to_checker_ops(net.dag()->backward_schedule()));
    }
  }

  r.serial_losses = serial.losses;
  r.chain_losses = chain.losses;
  r.dag_losses = dag.losses;

  auto fail = [&](const std::string& what) {
    if (r.ok) {
      r.ok = false;
      r.failure = what;
    }
  };

  if (serial.losses.size() != dag.losses.size() ||
      chain.losses.size() != dag.losses.size() ||
      serial.params.size() != dag.params.size() ||
      chain.params.size() != dag.params.size()) {
    std::ostringstream os;
    os << "shape mismatch: losses " << serial.losses.size() << "/"
       << chain.losses.size() << "/" << dag.losses.size() << ", params "
       << serial.params.size() << "/" << chain.params.size() << "/"
       << dag.params.size();
    fail(os.str());
    return r;
  }

  auto compare = [&](const RunOutput& base, const char* label, bool& bits,
                     double& max_param_diff) {
    bits = true;
    for (std::size_t i = 0; i < base.losses.size(); ++i) {
      bits = bits && same_bits(base.losses[i], dag.losses[i]);
      if (!r.bit_exact_expected &&
          !close_enough(base.losses[i], dag.losses[i], opts.loss_rtol,
                        opts.loss_atol)) {
        std::ostringstream os;
        os << "loss diverged vs " << label << " at iter " << i << ": "
           << base.losses[i] << " vs dag=" << dag.losses[i];
        fail(os.str());
      }
    }
    for (std::size_t i = 0; i < base.params.size(); ++i) {
      const double diff =
          std::abs(static_cast<double>(base.params[i]) - dag.params[i]);
      if (diff == diff) max_param_diff = std::max(max_param_diff, diff);
      bits = bits && same_bits(base.params[i], dag.params[i]);
    }
    if (r.bit_exact_expected && !bits) {
      std::ostringstream os;
      os << "bit-exact contract violated vs " << label << " (max param diff "
         << max_param_diff << ")";
      fail(os.str());
    }
    if (!r.bit_exact_expected && max_param_diff > opts.param_tol) {
      std::ostringstream os;
      os << "parameters diverged vs " << label << ": max diff "
         << max_param_diff << " > " << opts.param_tol;
      fail(os.str());
    }
  };
  compare(serial, "serial", r.serial_bits_match, r.max_param_diff_serial);
  compare(chain, "chain-only", r.chain_bits_match, r.max_param_diff_chain);

  if (!r.races.clean()) {
    std::ostringstream os;
    os << r.races.violations.size()
       << " timeline ordering violation(s); first: ["
       << kind_name(r.races.violations.front().kind) << "] "
       << r.races.violations.front().detail;
    fail(os.str());
  }
  if (!r.forward_schedule.clean()) {
    fail("forward op-schedule violated: " +
         r.forward_schedule.violations.front().detail);
  }
  if (!r.backward_schedule.clean()) {
    fail("backward op-schedule violated: " +
         r.backward_schedule.violations.front().detail);
  }
  return r;
}

}  // namespace glpfuzz
