#pragma once
// Differential runner: trains one sampled net twice — once under plain
// serial dispatch (the naive-Caffe baseline) and once under the GLP4NN
// runtime scheduler — and compares the results under the contract the
// paper and this reproduction promise:
//
//   * bit-identical losses and parameters whenever the strict-repro
//     contract applies (every gradient-accumulation slot is owned by a
//     single sample, or strict_repro pools + round-robin make slot order
//     stream-stable);
//   * loss-trajectory and parameter agreement within float-reassociation
//     tolerance otherwise.
//
// The GLP run records its full gpusim timeline, which is then checked
// against the stream-ordering invariants (see race_checker.hpp). Faults
// can be armed on the GLP run only: correctness must survive injected
// launch/stream/profiler failures via graceful degradation.

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/timeline.hpp"
#include "simcuda/fault_injection.hpp"
#include "testing/net_generator.hpp"
#include "testing/race_checker.hpp"

namespace glpfuzz {

struct DiffOptions {
  bool check_timeline = true;
  /// Arm these fault rates on the GLP run's context (the serial baseline
  /// always runs fault-free). All-zero rates leave the injector disarmed.
  scuda::FaultConfig faults;
  /// Tolerances for the non-bit-exact regime.
  double loss_rtol = 1e-2;
  double loss_atol = 1e-4;
  double param_tol = 5e-2;
  /// Route the GLP runs of run_engine_differential through the NetDag
  /// executor (inter-operator DAG scheduling + fusion) instead of the
  /// serial layer loop. run_dag_differential ignores this — it always
  /// compares DAG against both non-DAG baselines.
  bool dag_schedule = false;
};

struct DiffResult {
  bool ok = true;
  std::string failure;  ///< first failure, human-readable ("" when ok)

  bool bit_exact_expected = false;
  bool bit_exact_observed = false;
  double max_param_diff = 0.0;
  double max_loss_diff = 0.0;
  std::size_t params_compared = 0;
  std::vector<float> serial_losses;
  std::vector<float> glp_losses;

  RaceReport races;

  // Fault-injection accounting (GLP run only).
  std::size_t launch_faults = 0;
  std::size_t stream_faults = 0;
  std::size_t capture_drops = 0;
  std::size_t serial_fallback_scopes = 0;
};

/// Does the bit-exact branch of the contract apply to this combination?
/// True when no scope-parallel layer shares gradient slots between
/// samples (batch ≤ 32), or when strict_repro + round-robin pin the slot
/// accumulation order regardless of pool size.
bool bit_exact_contract(const mc::NetSpec& net,
                        const glp4nn::SchedulerOptions& options);

/// Train the case twice and compare. Never throws for a *failing*
/// comparison (inspect `ok`/`failure`); propagates unexpected errors
/// (bad net, simulator invariant breakage) as exceptions.
DiffResult run_differential(const FuzzCase& c, const DiffOptions& opts = {});

/// Field-for-field, bit-for-bit comparison of two recorded timelines
/// (kernel and copy records, including every timestamp's exact double
/// bits). Returns "" when identical, else a description of the first
/// difference.
std::string compare_timelines(const gpusim::Timeline& a,
                              const gpusim::Timeline& b);

struct EngineDiffResult {
  bool ok = true;
  std::string failure;  ///< first difference, human-readable ("" when ok)
  std::size_t kernels_compared = 0;
  std::size_t copies_compared = 0;
  std::size_t iters = 0;
};

/// Engine-vs-reference mode: train the case through the full GLP4NN
/// stack once on the optimized engine and once on ReferenceEngine, and
/// require the two runs to be indistinguishable — bit-identical losses
/// and parameters AND an event-for-event bit-identical device timeline.
/// This is the enforcement of the hot-path overhaul's contract: the
/// optimized loop must not change the simulation, only its wall-clock.
EngineDiffResult run_engine_differential(const FuzzCase& c,
                                         const DiffOptions& opts = {});

struct DagDiffResult {
  bool ok = true;
  std::string failure;  ///< first failure, human-readable ("" when ok)

  bool bit_exact_expected = false;
  bool serial_bits_match = false;  ///< serial baseline vs DAG run
  bool chain_bits_match = false;   ///< chain-only GLP vs DAG run
  double max_param_diff_serial = 0.0;
  double max_param_diff_chain = 0.0;
  std::vector<float> serial_losses;
  std::vector<float> chain_losses;
  std::vector<float> dag_losses;

  RaceReport races;  ///< stream-ordering invariants, full DAG-run timeline
  /// One clean (post-training) forward / backward pass replayed against
  /// the NetDag's op DAG: no op's kernel may start before every producer
  /// op's kernel ended.
  OpScheduleReport forward_schedule;
  OpScheduleReport backward_schedule;

  // Fusion accounting (DAG run, forward pass).
  std::size_t relu_epilogues = 0;  ///< ReLUs absorbed into producer GEMMs
  std::size_t fused_chains = 0;    ///< coalesced elementwise chains

  // Fault accounting (DAG run).
  std::size_t launch_faults = 0;
  std::size_t stream_faults = 0;
  std::size_t serial_fallback_scopes = 0;
};

/// Three-way DAG differential: trains the case (1) under serial dispatch,
/// fault-free; (2) under the GLP scheduler with chain-only (non-DAG)
/// issue, faults armed; (3) under the GLP scheduler with DAG scheduling
/// and fusion, same faults armed. Requires DAG == serial AND DAG ==
/// chain-only — bit-identical when the bit-exact contract applies,
/// within tolerance otherwise — plus a clean race report and a clean
/// op-schedule replay (when opts.check_timeline).
DagDiffResult run_dag_differential(const FuzzCase& c,
                                   const DiffOptions& opts = {});

}  // namespace glpfuzz
