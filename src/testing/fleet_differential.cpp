#include "testing/fleet_differential.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "comm/data_parallel.hpp"
#include "common/check.hpp"
#include "core/glp4nn.hpp"
#include "minicaffe/net.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/fleet.hpp"
#include "testing/differential_runner.hpp"

namespace glpfuzz {

namespace {

bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

struct RunOutput {
  std::vector<float> losses;
  std::vector<float> params;
};

/// The single-device reference: each fleet iteration is N sequential
/// micro-batch passes whose captured gradients are combined with the
/// selected collective's exact wave program (the same one the fleet
/// schedules — same algorithm, pipelining split, wire format), scaled
/// by 1/N, scattered back and consumed by ONE solver update.
/// Fault-free by construction.
RunOutput reference_train(const FuzzCase& c, const FleetDiffOptions& opts) {
  const int n = opts.devices;
  const std::size_t bucket_bytes = opts.bucket_bytes;
  RunOutput out;
  scuda::Context ctx(c.device);
  glp4nn::Glp4nnEngine engine(c.options);
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.dispatcher = &engine.scheduler_for(ctx);
  mc::Net net(c.net, ec);
  mc::SgdSolver solver(net, {});
  const comm::BucketPlan plan = comm::plan_buckets(net, bucket_bytes);
  const auto nn = static_cast<std::size_t>(n);
  const float inv_n = 1.0f / static_cast<float>(n);

  // Mirror the fleet's link properties so plan_collective resolves kAuto
  // (and the pipelining split) to the exact program the fleet runs.
  const gpusim::LinkProps props =
      opts.topology == gpusim::LinkTopology::kNvlinkRing
          ? gpusim::LinkProps::nvlink()
          : gpusim::LinkProps::pcie();
  // One plan per bucket size: buckets share counts often, so memoize.
  std::map<std::size_t, comm::CollectiveProgram> programs;
  auto program_for = [&](std::size_t count) -> const comm::CollectiveProgram& {
    auto it = programs.find(count);
    if (it == programs.end()) {
      it = programs
               .emplace(count, comm::plan_collective(n, opts.topology, props,
                                                     opts.collective, count))
               .first;
    }
    return it->second;
  };

  // grads[b][r]: micro-batch r's packed gradient for bucket b.
  std::vector<std::vector<std::vector<float>>> grads(plan.buckets.size());
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    grads[b].assign(nn, std::vector<float>(plan.buckets[b].count, 0.0f));
  }

  for (int it = 0; it < c.iters; ++it) {
    const float lr = solver.current_lr();
    float loss = 0.0f;
    for (std::size_t r = 0; r < nn; ++r) {
      net.zero_param_diffs();
      net.forward();
      net.backward();
      loss += net.total_loss();  // synchronizes the device
      for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
        std::size_t off = 0;
        for (const std::size_t pi : plan.buckets[b].params) {
          const mc::Blob& p = *net.learnable_params()[pi];
          std::memcpy(grads[b][r].data() + off, p.diff(),
                      p.count() * sizeof(float));
          off += p.count();
        }
      }
    }
    loss *= inv_n;

    std::vector<float*> ptrs(nn);
    for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
      for (std::size_t r = 0; r < nn; ++r) ptrs[r] = grads[b][r].data();
      comm::reference_collective_allreduce(program_for(plan.buckets[b].count),
                                           ptrs, plan.buckets[b].count,
                                           opts.collective.wire);
      std::size_t off = 0;
      for (const std::size_t pi : plan.buckets[b].params) {
        mc::Blob& p = *net.learnable_params()[pi];
        float* diff = p.mutable_diff();
        for (std::size_t k = 0; k < p.count(); ++k) {
          diff[k] = grads[b][0][off + k] * inv_n;
        }
        off += p.count();
      }
    }
    solver.apply_update(lr);
    ctx.device().synchronize();
    solver.note_step(loss);
    out.losses.push_back(loss);
  }

  ctx.device().synchronize();
  for (const auto& p : net.learnable_params()) {
    const float* d = p->data();
    out.params.insert(out.params.end(), d, d + p->count());
  }
  return out;
}

void merge_transfer_report(FleetTransferReport& into,
                           const FleetTransferReport& from) {
  into.violations.insert(into.violations.end(), from.violations.begin(),
                         from.violations.end());
  into.transfers_checked += from.transfers_checked;
  into.peak_channel_rate =
      std::max(into.peak_channel_rate, from.peak_channel_rate);
  into.channels_used = std::max(into.channels_used, from.channels_used);
}

}  // namespace

mc::NetSpec strip_dropout(const mc::NetSpec& spec) {
  mc::NetSpec out;
  out.name = spec.name;
  // top name → what it resolves to once its producer is dropped.
  std::map<std::string, std::string> alias;
  auto resolve = [&](const std::string& name) {
    auto it = alias.find(name);
    return it == alias.end() ? name : it->second;
  };
  for (const mc::LayerSpec& l : spec.layers) {
    if (l.type == "Dropout") {
      // In-place dropout (top == bottom) vanishes without a trace; the
      // out-of-place form forwards its bottom under the top's name.
      if (!l.tops.empty() && !l.bottoms.empty() &&
          l.tops.front() != l.bottoms.front()) {
        alias[l.tops.front()] = resolve(l.bottoms.front());
      }
      continue;
    }
    mc::LayerSpec kept = l;
    for (std::string& b : kept.bottoms) b = resolve(b);
    out.layers.push_back(std::move(kept));
  }
  return out;
}

FuzzCase make_fleet_case(std::uint64_t seed, const NetGenOptions& gen) {
  FuzzCase c = make_case(seed, gen);
  c.net = strip_dropout(c.net);
  if (!bit_exact_contract(c.net, c.options)) {
    // The fleet contract is bit-exactness; force the regime that makes
    // per-device numerics independent of the stream layout.
    c.options.strict_repro = true;
    c.options.policy = glp4nn::DispatchPolicy::kRoundRobin;
  }
  return c;
}

FleetDiffResult run_fleet_differential(const FuzzCase& c,
                                       const FleetDiffOptions& opts) {
  FleetDiffResult r;
  const int n = opts.devices;
  GLP_REQUIRE(n >= 1, "fleet differential needs at least one device");

  const RunOutput single = reference_train(c, opts);

  // --- fleet run --------------------------------------------------------
  scuda::FleetOptions fopts;
  fopts.topology = opts.topology;
  fopts.link = opts.topology == gpusim::LinkTopology::kNvlinkRing
                   ? gpusim::LinkProps::nvlink()
                   : gpusim::LinkProps::pcie();
  fopts.engine = opts.engine;
  scuda::Fleet fleet = scuda::Fleet::homogeneous(n, c.device, fopts);

  const bool arm = opts.faults.launch_failure_rate > 0.0 ||
                   opts.faults.stream_create_failure_rate > 0.0 ||
                   opts.faults.capture_loss_rate > 0.0;
  std::vector<std::unique_ptr<glp4nn::Glp4nnEngine>> engines;
  std::vector<std::unique_ptr<mc::ExecContext>> ecs;
  std::vector<mc::ExecContext*> ec_ptrs;
  for (int d = 0; d < n; ++d) {
    scuda::Context& ctx = fleet.device(d);
    if (arm) {
      scuda::FaultConfig faults = opts.faults;
      faults.seed ^= (c.seed + static_cast<std::uint64_t>(d) + 1) *
                     0x9e3779b97f4a7c15ULL;
      ctx.faults().arm(faults);
    }
    engines.push_back(std::make_unique<glp4nn::Glp4nnEngine>(c.options));
    auto ec = std::make_unique<mc::ExecContext>();
    ec->ctx = &ctx;
    ec->dispatcher = &engines.back()->scheduler_for(ctx);
    ec_ptrs.push_back(ec.get());
    ecs.push_back(std::move(ec));
  }

  comm::FleetTrainerOptions topts;
  topts.bucket_bytes = opts.bucket_bytes;
  topts.overlap = opts.overlap;
  topts.collective = opts.collective;
  comm::FleetTrainer trainer(fleet, ec_ptrs, c.net, topts);
  r.buckets = trainer.plan().buckets.size();

  trainer.step(c.iters, [&](int, float loss) {
    r.fleet_losses.push_back(loss);
    if (opts.check_transfers) {
      merge_transfer_report(
          r.transfers, check_fleet_transfers(trainer.collectives().transfers(),
                                             fleet.links().props()));
    }
  });
  fleet.synchronize_all();

  for (int d = 0; d < n; ++d) {
    r.launch_faults += fleet.device(d).faults().launch_faults();
    r.stream_faults += fleet.device(d).faults().stream_create_faults();
    if (trainer.collectives().fallback(d)) ++r.comm_fallbacks;
  }

  // --- compare ----------------------------------------------------------
  r.single_losses = single.losses;
  for (std::size_t i = 0; i < single.losses.size(); ++i) {
    if (i >= r.fleet_losses.size() ||
        !same_bits(single.losses[i], r.fleet_losses[i])) {
      std::ostringstream os;
      os << "loss diverged at iteration " << i << ": single="
         << single.losses[i] << " fleet="
         << (i < r.fleet_losses.size()
                 ? std::to_string(r.fleet_losses[i])
                 : std::string("<missing>"));
      r.ok = false;
      r.failure = os.str();
      return r;
    }
  }

  for (int d = 0; d < n; ++d) {
    std::size_t off = 0;
    for (const auto& p : trainer.net(d).learnable_params()) {
      const float* got = p->data();
      for (std::size_t k = 0; k < p->count(); ++k, ++off) {
        GLP_CHECK(off < single.params.size());
        if (!same_bits(single.params[off], got[k])) {
          std::ostringstream os;
          os << "device " << d << " param " << off << " diverged: single="
             << single.params[off] << " fleet=" << got[k];
          r.ok = false;
          r.failure = os.str();
          return r;
        }
      }
    }
    GLP_CHECK(off == single.params.size());
    r.params_compared += off;
  }

  if (opts.check_transfers && !r.transfers.clean()) {
    r.ok = false;
    r.failure = "link-contract violation:\n" + r.transfers.to_string();
  }
  return r;
}

}  // namespace glpfuzz
