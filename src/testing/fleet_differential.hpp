#pragma once
// Fleet differential: data-parallel training on an N-device fleet must
// be *bit-identical* to a single device consuming the same samples —
// the bit-exactness contract of comm/data_parallel.hpp.
//
// The reference run trains one net on one device, consuming each fleet
// iteration's N micro-batches sequentially, capturing each micro-batch's
// gradients, combining them with the *selected collective's* reference
// oracle — the same wave program the fleet schedules (ring, tree or
// hierarchical, with the same pipelining split and wire format),
// replayed on the host by reference_collective_allreduce — scaling by
// 1/N and applying ONE solver update. The fleet run trains the same
// spec through FleetTrainer over a real Fleet (link contention, eager
// bucketed overlap, non-blocking comm streams, per-device GLP4NN
// schedulers), optionally with fault injection armed on every device.
// Losses and every replica's parameters must match bit for bit.
//
// Cases ride the ordinary fuzz-case sampler, adjusted for the fleet
// corpus: Dropout is stripped (masks are drawn from each replica's
// private RNG, so replicas and the reference would diverge — see
// strip_dropout) and scheduler options are forced into the bit-exact
// regime when the sampled batch size would leave it.

#include <cstddef>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "gpusim/interconnect.hpp"
#include "simcuda/fault_injection.hpp"
#include "testing/net_generator.hpp"
#include "testing/race_checker.hpp"

namespace glpfuzz {

struct FleetDiffOptions {
  int devices = 2;
  gpusim::LinkTopology topology = gpusim::LinkTopology::kNvlinkRing;
  /// Engine the fleet devices run on. The single-device reference always
  /// uses the optimized engine, so kReference doubles as a cross-engine
  /// differential over the whole fleet path (events, peer copies,
  /// non-blocking streams) on top of the data-parallel contract.
  gpusim::EngineKind engine = gpusim::EngineKind::kOptimized;
  /// Eager bucketed overlap (the default) or the serialize-then-reduce
  /// baseline; both must satisfy the same bit-exactness contract.
  bool overlap = true;
  /// Small default so the little fuzz nets still split into several
  /// buckets and exercise the eager per-bucket machinery.
  std::size_t bucket_bytes = std::size_t{1} << 12;
  /// Armed on every fleet device (per-device derived seeds); the
  /// single-device reference always runs fault-free.
  scuda::FaultConfig faults;
  /// Audit the iteration's TransferRecords against the link contract
  /// (capacity, conservation, profile sanity) via check_fleet_transfers.
  bool check_transfers = true;
  /// Collective algorithm / wire format / pipelining under test. The
  /// reference oracle replays whatever program these options select —
  /// including fp16-on-the-wire, which stays bit-exact against its own
  /// fp16 oracle (the fp32-tolerance contract is a separate test).
  comm::CollectiveOptions collective;
};

struct FleetDiffResult {
  bool ok = true;
  std::string failure;  ///< first failure, human-readable ("" when ok)

  std::vector<float> single_losses;
  std::vector<float> fleet_losses;
  std::size_t params_compared = 0;
  std::size_t buckets = 0;

  /// Merged link-contract report over every training iteration.
  FleetTransferReport transfers;

  // Fault accounting, summed over devices (fleet run only).
  std::size_t launch_faults = 0;
  std::size_t stream_faults = 0;
  /// Devices whose comm stream fell back to the default stream after an
  /// injected stream-creation failure.
  int comm_fallbacks = 0;
};

/// `spec` without its Dropout layers: each one is removed and, for the
/// non-in-place form, later references to its top are rewired to its
/// bottom. Every other layer is untouched.
mc::NetSpec strip_dropout(const mc::NetSpec& spec);

/// A fuzz case adjusted for the fleet corpus: Dropout stripped and
/// scheduler options forced into the bit-exact regime (strict_repro +
/// round-robin) when the sampled batch size would otherwise leave it.
FuzzCase make_fleet_case(std::uint64_t seed, const NetGenOptions& gen = {});

/// Train `c` on an `opts.devices`-wide fleet and on the single-device
/// reference, and compare bit for bit. Never throws for a *failing*
/// comparison (inspect ok/failure); propagates unexpected errors.
FleetDiffResult run_fleet_differential(const FuzzCase& c,
                                       const FleetDiffOptions& opts = {});

}  // namespace glpfuzz
