#include "testing/net_generator.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace glpfuzz {

namespace {

template <typename T>
T pick(glp::Rng& rng, std::initializer_list<T> values) {
  const auto* begin = values.begin();
  return begin[rng.next_below(values.size())];
}

bool chance(glp::Rng& rng, double p) { return rng.next_double() < p; }

int conv_out(int in, int kernel, int pad, int stride) {
  return (in + 2 * pad - kernel) / stride + 1;
}

mc::FillerSpec random_weight_filler(glp::Rng& rng) {
  const double r = rng.next_double();
  if (r < 0.5) return mc::FillerSpec::xavier();
  if (r < 0.8) return mc::FillerSpec::gaussian(0.05f);
  return mc::FillerSpec::uniform(-0.1f, 0.1f);
}

/// Tracks the (channels, height, width) of the chain's current blob.
struct Shape {
  int c = 0;
  int h = 0;
  int w = 0;
};

/// Builds layer specs with unique names and shape bookkeeping.
struct Builder {
  mc::NetSpec spec;
  int counter = 0;

  std::string fresh(const std::string& stem) {
    return stem + std::to_string(++counter);
  }

  mc::LayerSpec& add(const std::string& type, const std::string& stem,
                     std::vector<std::string> bottoms,
                     std::vector<std::string> tops) {
    mc::LayerSpec layer;
    layer.type = type;
    layer.name = stem;
    layer.bottoms = std::move(bottoms);
    layer.tops = std::move(tops);
    spec.layers.push_back(std::move(layer));
    return spec.layers.back();
  }
};

/// Append a convolution; returns the top blob name and updates `shape`.
std::string add_conv(Builder& b, glp::Rng& rng, const std::string& bottom,
                     Shape& shape) {
  const std::string name = b.fresh("conv");
  mc::LayerSpec& layer = b.add("Convolution", name, {bottom}, {name});
  mc::LayerParams& p = layer.params;
  p.num_output = pick(rng, {4, 6, 8, 12, 16});
  // Odd kernels with "same" padding keep the spatial size; a stride-2
  // variant shrinks it when there is room.
  p.kernel_size = shape.h >= 5 && shape.w >= 5 ? pick(rng, {1, 3, 5})
                  : shape.h >= 3 && shape.w >= 3 ? pick(rng, {1, 3})
                                                 : 1;
  p.pad = p.kernel_size / 2;
  p.stride = 1;
  if (chance(rng, 0.2) &&
      conv_out(std::min(shape.h, shape.w), p.kernel_size, p.pad, 2) >= 2) {
    p.stride = 2;
  }
  if (chance(rng, 0.15) && shape.c % 2 == 0 && p.num_output % 2 == 0) {
    p.group = 2;
  }
  p.weight_filler = random_weight_filler(rng);
  p.bias_filler = mc::FillerSpec::constant(chance(rng, 0.5) ? 0.0f : 0.05f);
  shape.c = p.num_output;
  shape.h = conv_out(shape.h, p.kernel_size, p.pad, p.stride);
  shape.w = conv_out(shape.w, p.kernel_size, p.pad, p.stride);
  return name;
}

/// Append an activation, in-place half of the time.
std::string add_activation(Builder& b, glp::Rng& rng, const std::string& bottom,
                           bool allow_in_place) {
  const char* type = pick(rng, {"ReLU", "TanH", "Sigmoid", "AbsVal"});
  const std::string name = b.fresh("act");
  const bool in_place = allow_in_place && chance(rng, 0.5);
  mc::LayerSpec& layer =
      b.add(type, name, {bottom}, {in_place ? bottom : name});
  if (std::string(type) == "ReLU" && chance(rng, 0.3)) {
    layer.params.negative_slope = 0.1f;
  }
  return in_place ? bottom : name;
}

/// A stride-1, same-padded conv for inception branches: spatial size is
/// preserved so any set of sibling branches can merge afterwards.
std::string add_branch_conv(Builder& b, glp::Rng& rng, const std::string& bottom,
                            Shape& shape, int num_output) {
  const std::string name = b.fresh("bconv");
  mc::LayerSpec& layer = b.add("Convolution", name, {bottom}, {name});
  mc::LayerParams& p = layer.params;
  p.num_output = num_output;
  p.kernel_size = shape.h >= 3 && shape.w >= 3 && chance(rng, 0.6) ? 3 : 1;
  p.pad = p.kernel_size / 2;
  p.stride = 1;
  p.weight_filler = random_weight_filler(rng);
  p.bias_filler = mc::FillerSpec::constant(chance(rng, 0.5) ? 0.0f : 0.05f);
  shape.c = num_output;
  return name;
}

/// An in-place ReLU directly after a conv — the GEMM-epilogue fusion shape.
std::string add_relu(Builder& b, glp::Rng& rng, const std::string& bottom) {
  const std::string name = b.fresh("relu");
  mc::LayerSpec& layer = b.add("ReLU", name, {bottom}, {bottom});
  if (chance(rng, 0.3)) layer.params.negative_slope = 0.1f;
  return bottom;
}

/// A run of stacked elementwise activations — chain-coalescing fodder.
std::string add_act_chain(Builder& b, glp::Rng& rng, std::string cur, int len) {
  for (int i = 0; i < len; ++i) cur = add_activation(b, rng, cur, true);
  return cur;
}

}  // namespace

mc::NetSpec random_net(glp::Rng& rng, const NetGenOptions& options) {
  Builder b;
  b.spec.name = "fuzz";

  // --- data ---------------------------------------------------------------
  mc::DatasetSpec dataset;
  dataset.name = "random";
  dataset.num_classes = pick(rng, {2, 3, 5, 10});
  dataset.channels = pick(rng, {1, 3});
  dataset.height = pick(rng, {6, 8, 10, 12});
  dataset.width = chance(rng, 0.8) ? dataset.height : pick(rng, {6, 8, 10, 12});
  dataset.train_size = 128;
  dataset.noise = 0.3f;
  dataset.shuffle = chance(rng, 0.25);

  const int batch = std::min(
      options.max_batch,
      pick(rng, {3, 4, 8, 12, 16, 24, 32, 33, 40, 48, 64}));

  mc::LayerSpec& data = b.add("Data", "data", {}, {"data", "label"});
  data.params.dataset = dataset;
  data.params.batch_size = batch;

  Shape shape{dataset.channels, dataset.height, dataset.width};
  std::string cur = "data";

  // --- body ---------------------------------------------------------------
  const int span = options.max_body_layers - options.min_body_layers + 1;
  const int stages =
      options.min_body_layers + static_cast<int>(rng.next_below(
                                    static_cast<std::uint64_t>(span)));
  const bool branch =
      options.allow_branches && stages >= 3 && chance(rng, 0.35);
  const int branch_at =
      branch ? 1 + static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(stages - 1)))
             : -1;

  for (int stage = 0; stage < stages; ++stage) {
    if (stage == branch_at) {
      // Two conv branches from `cur`, merged by Concat or Eltwise. Both
      // branches preserve the spatial size so the merge always shapes.
      const bool eltwise = chance(rng, 0.4);
      Shape sa = shape, sb = shape;
      std::string a = add_conv(b, rng, cur, sa);
      std::string br = add_conv(b, rng, cur, sb);
      {
        // Both merge flavours need matching spatial sizes, so branch B
        // reuses branch A's kernel geometry; Eltwise additionally needs
        // matching channel counts.
        mc::LayerSpec& lb = b.spec.layers.back();
        const mc::LayerSpec& la = b.spec.layers[b.spec.layers.size() - 2];
        lb.params.stride = la.params.stride;
        lb.params.kernel_size = la.params.kernel_size;
        lb.params.pad = la.params.pad;
        if (eltwise) {
          lb.params.num_output = la.params.num_output;
          lb.params.group = 1;
          sb = sa;
        } else {
          sb.h = sa.h;
          sb.w = sa.w;
        }
      }
      if (chance(rng, 0.5)) a = add_activation(b, rng, a, true);
      if (chance(rng, 0.5)) br = add_activation(b, rng, br, true);
      const std::string merged = b.fresh(eltwise ? "sum" : "cat");
      mc::LayerSpec& merge =
          b.add(eltwise ? "Eltwise" : "Concat", merged, {a, br}, {merged});
      if (eltwise) {
        merge.params.eltwise = mc::EltwiseOp::kSum;
        shape = sa;
      } else {
        merge.params.axis = 1;
        shape = sa;
        shape.c = sa.c + sb.c;
      }
      cur = merged;
      continue;
    }

    // Weighted pick among the ops legal for the current shape. The first
    // stage is always a convolution so every net exercises the
    // scope-parallel dispatch path.
    const double r = stage == 0 ? 0.0 : rng.next_double();
    if (r < 0.40) {
      cur = add_conv(b, rng, cur, shape);
    } else if (r < 0.55 && shape.h >= 4 && shape.w >= 4) {
      const std::string name = b.fresh("pool");
      mc::LayerSpec& layer = b.add("Pooling", name, {cur}, {name});
      layer.params.pool =
          chance(rng, 0.5) ? mc::PoolMethod::kMax : mc::PoolMethod::kAve;
      layer.params.kernel_size = 2;
      layer.params.stride = 2;
      // Caffe's ceil-mode pooling output.
      shape.h = (shape.h - 2 + 1) / 2 + 1;
      shape.w = (shape.w - 2 + 1) / 2 + 1;
      cur = name;
    } else if (r < 0.65 && options.allow_deconv && shape.h <= 12 &&
               shape.w <= 12) {
      const std::string name = b.fresh("deconv");
      mc::LayerSpec& layer = b.add("Deconvolution", name, {cur}, {name});
      layer.params.num_output = pick(rng, {4, 8});
      layer.params.kernel_size = 2;
      layer.params.stride = 2;
      layer.params.weight_filler = random_weight_filler(rng);
      shape.c = layer.params.num_output;
      shape.h = shape.h * 2;
      shape.w = shape.w * 2;
      cur = name;
    } else if (r < 0.78) {
      cur = add_activation(b, rng, cur, true);
    } else if (r < 0.88 && shape.c >= 3) {
      const std::string name = b.fresh("lrn");
      mc::LayerSpec& layer = b.add("LRN", name, {cur}, {name});
      layer.params.local_size = pick(rng, {3, 5});
      cur = name;
    } else if (r < 0.94) {
      const std::string name = b.fresh("drop");
      const bool in_place = chance(rng, 0.5);
      mc::LayerSpec& layer =
          b.add("Dropout", name, {cur}, {in_place ? cur : name});
      layer.params.dropout_ratio = pick(rng, {0.3f, 0.5f});
      if (!in_place) cur = name;
    } else {
      cur = add_conv(b, rng, cur, shape);
    }
  }

  // --- head ---------------------------------------------------------------
  mc::LayerSpec& ip = b.add("InnerProduct", "ip_head", {cur}, {"ip_head"});
  ip.params.num_output = dataset.num_classes;
  ip.params.weight_filler = random_weight_filler(rng);
  b.add("SoftmaxWithLoss", "loss", {"ip_head", "label"}, {"loss"});
  return std::move(b.spec);
}

mc::NetSpec random_inference_net(glp::Rng& rng, const NetGenOptions& options) {
  Builder b;
  b.spec.name = "serve_fuzz";

  mc::LayerSpec& in = b.add("Input", "input", {}, {"data"});
  in.params.batch_size =
      1 + static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(std::min(8, options.max_batch))));
  in.params.dataset.channels = pick(rng, {1, 3});
  in.params.dataset.height = pick(rng, {6, 8, 10, 12});
  in.params.dataset.width =
      chance(rng, 0.8) ? in.params.dataset.height : pick(rng, {6, 8, 10, 12});

  Shape shape{in.params.dataset.channels, in.params.dataset.height,
              in.params.dataset.width};
  std::string cur = "data";

  // --- body: convs, pools, activations only — everything here must be
  // deterministic at inference time (no Dropout) and forward-only.
  const int span = options.max_body_layers - options.min_body_layers + 1;
  const int stages =
      options.min_body_layers + static_cast<int>(rng.next_below(
                                    static_cast<std::uint64_t>(span)));
  for (int stage = 0; stage < stages; ++stage) {
    // The first stage is always a convolution so every net exercises the
    // scope-parallel per-sample dispatch the serving scheduler slices.
    const double r = stage == 0 ? 0.0 : rng.next_double();
    if (r < 0.50) {
      cur = add_conv(b, rng, cur, shape);
    } else if (r < 0.65 && shape.h >= 4 && shape.w >= 4) {
      const std::string name = b.fresh("pool");
      mc::LayerSpec& layer = b.add("Pooling", name, {cur}, {name});
      layer.params.pool =
          chance(rng, 0.5) ? mc::PoolMethod::kMax : mc::PoolMethod::kAve;
      layer.params.kernel_size = 2;
      layer.params.stride = 2;
      shape.h = (shape.h - 2 + 1) / 2 + 1;
      shape.w = (shape.w - 2 + 1) / 2 + 1;
      cur = name;
    } else if (r < 0.72 && options.allow_deconv && shape.h <= 12 &&
               shape.w <= 12) {
      const std::string name = b.fresh("deconv");
      mc::LayerSpec& layer = b.add("Deconvolution", name, {cur}, {name});
      layer.params.num_output = pick(rng, {4, 8});
      layer.params.kernel_size = 2;
      layer.params.stride = 2;
      layer.params.weight_filler = random_weight_filler(rng);
      shape.c = layer.params.num_output;
      shape.h = shape.h * 2;
      shape.w = shape.w * 2;
      cur = name;
    } else {
      cur = add_activation(b, rng, cur, true);
    }
  }

  // --- head: class scores + Softmax, no loss or labels.
  mc::LayerSpec& ip = b.add("InnerProduct", "ip_head", {cur}, {"ip_head"});
  ip.params.num_output = pick(rng, {2, 5, 10});
  ip.params.weight_filler = random_weight_filler(rng);
  b.add("Softmax", "prob", {"ip_head"}, {"prob"});
  return std::move(b.spec);
}

mc::NetSpec random_dag_net(glp::Rng& rng, const NetGenOptions& options) {
  Builder b;
  b.spec.name = "dag_fuzz";

  // --- data ---------------------------------------------------------------
  mc::DatasetSpec dataset;
  dataset.name = "random";
  dataset.num_classes = pick(rng, {2, 3, 5, 10});
  dataset.channels = pick(rng, {1, 3});
  dataset.height = pick(rng, {6, 8, 10});
  dataset.width = chance(rng, 0.8) ? dataset.height : pick(rng, {6, 8, 10});
  dataset.train_size = 128;
  dataset.noise = 0.3f;
  dataset.shuffle = chance(rng, 0.25);

  const int batch = std::min(options.max_batch,
                             pick(rng, {4, 8, 12, 16, 24, 32, 33, 40, 48}));
  mc::LayerSpec& data = b.add("Data", "data", {}, {"data", "label"});
  data.params.dataset = dataset;
  data.params.batch_size = batch;

  Shape shape{dataset.channels, dataset.height, dataset.width};
  std::string cur = "data";

  // --- stem: a conv (with optional epilogue-shaped ReLU) so even the
  // narrowest sample has scoped, fusable layers before the first fan-out.
  cur = add_branch_conv(b, rng, cur, shape, pick(rng, {4, 6, 8}));
  if (chance(rng, 0.6)) cur = add_relu(b, rng, cur);

  // --- inception units ----------------------------------------------------
  const int units = chance(rng, 0.6) ? 2 : 1;
  std::string aux_tap;
  for (int u = 0; u < units; ++u) {
    const int max_b = std::clamp(options.max_branches, 2, 6);
    const int width =
        2 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(max_b - 1)));
    if (width == 2 && chance(rng, 0.35)) {
      // Diamond skip: Eltwise(cur, f(cur)). The transformed path keeps the
      // channel count so the sum always shapes; the pass-through edge makes
      // `cur` a two-consumer blob, which the conflict tracker must fan out.
      Shape sb = shape;
      std::string tr = add_branch_conv(b, rng, cur, sb, shape.c);
      if (chance(rng, 0.7)) tr = add_relu(b, rng, tr);
      if (chance(rng, 0.4)) tr = add_act_chain(b, rng, tr, pick(rng, {2, 3}));
      const std::string merged = b.fresh("sum");
      mc::LayerSpec& merge = b.add("Eltwise", merged, {cur, tr}, {merged});
      merge.params.eltwise = mc::EltwiseOp::kSum;
      cur = merged;
    } else {
      // Wide fan-out: `width` independent conv branches merged by Concat.
      std::vector<std::string> tops;
      int channels = 0;
      for (int br = 0; br < width; ++br) {
        Shape sb = shape;
        std::string t = add_branch_conv(b, rng, cur, sb, pick(rng, {4, 6, 8}));
        if (chance(rng, 0.65)) t = add_relu(b, rng, t);
        if (chance(rng, 0.3)) {
          t = add_branch_conv(b, rng, t, sb, sb.c);
          if (chance(rng, 0.5)) t = add_relu(b, rng, t);
        }
        if (chance(rng, 0.3)) t = add_act_chain(b, rng, t, pick(rng, {2, 3}));
        tops.push_back(t);
        channels += sb.c;
      }
      const std::string merged = b.fresh("cat");
      mc::LayerSpec& merge = b.add("Concat", merged, std::move(tops), {merged});
      merge.params.axis = 1;
      shape.c = channels;
      cur = merged;
    }
    // Post-merge elementwise chain: the producer (Concat/Eltwise) is not an
    // epilogue host, so this exercises pure launch coalescing.
    if (chance(rng, 0.3)) cur = add_act_chain(b, rng, cur, pick(rng, {2, 3}));
    if (u + 1 < units && shape.h >= 4 && shape.w >= 4 && chance(rng, 0.5)) {
      const std::string name = b.fresh("pool");
      mc::LayerSpec& layer = b.add("Pooling", name, {cur}, {name});
      layer.params.pool =
          chance(rng, 0.5) ? mc::PoolMethod::kMax : mc::PoolMethod::kAve;
      layer.params.kernel_size = 2;
      layer.params.stride = 2;
      shape.h = (shape.h - 2 + 1) / 2 + 1;
      shape.w = (shape.w - 2 + 1) / 2 + 1;
      cur = name;
    }
    if (u == 0) aux_tap = cur;
  }

  // --- heads: main classifier plus (sometimes) a GoogLeNet-style auxiliary
  // loss from the first unit — two loss ops with no dependency between
  // them, i.e. parallel sinks in the backward DAG.
  if (chance(rng, 0.4)) {
    mc::LayerSpec& aip = b.add("InnerProduct", "aux_ip", {aux_tap}, {"aux_ip"});
    aip.params.num_output = dataset.num_classes;
    aip.params.weight_filler = random_weight_filler(rng);
    mc::LayerSpec& aloss =
        b.add("SoftmaxWithLoss", "aux_loss", {"aux_ip", "label"}, {"aux_loss"});
    aloss.params.loss_weight = 0.3f;
  }
  mc::LayerSpec& ip = b.add("InnerProduct", "ip_head", {cur}, {"ip_head"});
  ip.params.num_output = dataset.num_classes;
  ip.params.weight_filler = random_weight_filler(rng);
  b.add("SoftmaxWithLoss", "loss", {"ip_head", "label"}, {"loss"});
  return std::move(b.spec);
}

gpusim::DeviceProps random_device(glp::Rng& rng) {
  const std::vector<gpusim::DeviceProps> catalogue = gpusim::DeviceTable::all();
  gpusim::DeviceProps d =
      catalogue[rng.next_below(catalogue.size())];

  // Perturb every limit the analytical model consumes, around the
  // catalogue values (the paper's Table 3 plus one GPU per generation).
  d.sm_count = std::clamp(
      static_cast<int>(d.sm_count * (0.5 + rng.next_double() * 1.5)), 1, 120);
  d.cores_per_sm = pick(rng, {32, 64, 128});
  d.clock_ghz *= 0.7 + rng.next_double() * 0.8;
  d.max_threads_per_sm = pick(rng, {1024, 1536, 2048});
  d.max_blocks_per_sm = pick(rng, {8, 16, 32});
  // ≥ 32 KiB: the largest GEMM tile wants 16 KiB per block.
  d.shared_mem_per_sm = static_cast<std::size_t>(pick(rng, {32, 48, 64, 96})) * 1024;
  d.registers_per_sm = pick(rng, {32 * 1024, 64 * 1024});
  d.max_concurrent_kernels = pick(rng, {1, 2, 4, 8, 16, 32, 64, 128});
  d.mem_bandwidth_gbs = 100.0 + rng.next_double() * 800.0;
  d.pcie_bandwidth_gbs = 6.0 + rng.next_double() * 10.0;
  d.kernel_launch_overhead_us = pick(rng, {1.0, 2.0, 5.0, 10.0, 20.0});
  d.kernel_start_latency_us = pick(rng, {0.5, 1.0, 2.0, 5.0});
  d.name += "-fuzz";
  return d;
}

glp4nn::SchedulerOptions random_scheduler_options(glp::Rng& rng) {
  glp4nn::SchedulerOptions o;
  o.policy = chance(rng, 0.7) ? glp4nn::DispatchPolicy::kRoundRobin
                              : glp4nn::DispatchPolicy::kBlockCyclic;
  o.strict_repro = chance(rng, 0.4);
  if (chance(rng, 0.3)) o.fixed_streams = pick(rng, {1, 2, 3, 4, 5, 8, 16});
  if (chance(rng, 0.25)) o.max_streams = pick(rng, {1, 2, 3, 4, 6, 8});
  return o;
}

FuzzCase make_case(std::uint64_t seed, const NetGenOptions& options) {
  // Decorrelate nearby seeds (1, 2, 3, ...) with a SplitMix64-style mix.
  glp::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
  FuzzCase c;
  c.seed = seed;
  c.dag = options.dag_corpus;
  c.net = c.dag ? random_dag_net(rng, options) : random_net(rng, options);
  c.net.name = (c.dag ? "dagfuzz_" : "fuzz_") + std::to_string(seed);
  c.device = random_device(rng);
  c.options = random_scheduler_options(rng);
  c.iters = chance(rng, 0.7) ? 2 : 3;
  return c;
}

std::string FuzzCase::summary() const {
  int batch = 0;
  for (const mc::LayerSpec& l : net.layers) {
    if (l.type == "Data") batch = l.params.batch_size;
  }
  std::ostringstream os;
  os << "seed=" << seed << " net=" << net.name << " (" << net.layers.size()
     << " layers, batch " << batch << ") device=" << device.name
     << " (C=" << device.max_concurrent_kernels << ", " << device.sm_count
     << " SMs) policy="
     << (options.policy == glp4nn::DispatchPolicy::kRoundRobin ? "rr" : "bc")
     << " strict=" << (options.strict_repro ? 1 : 0)
     << " fixed=" << options.fixed_streams << " max=" << options.max_streams
     << " iters=" << iters << (dag ? " dag=1" : "");
  return os.str();
}

}  // namespace glpfuzz
