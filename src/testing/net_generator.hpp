#pragma once
// Seeded generators for the schedule-correctness harness: random layer
// graphs, random devices (perturbations of the paper's Table-3 GPUs) and
// random scheduler configurations. Everything is a pure function of the
// seed, so any failing fuzz case replays from one integer.
//
// Generated nets always contain at least one Convolution layer — conv
// and deconv are the scope-parallel layers, so a net without them never
// exercises the stream scheduler.

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/runtime_scheduler.hpp"
#include "gpusim/device_props.hpp"
#include "minicaffe/net.hpp"

namespace glpfuzz {

/// Knobs for the random net generator (defaults give small, fast nets).
struct NetGenOptions {
  int min_body_layers = 2;   ///< conv/pool/act stages between data and head
  int max_body_layers = 6;
  bool allow_branches = true;  ///< inception-style branch + Concat/Eltwise
  bool allow_deconv = true;
  int max_batch = 64;
  /// DAG-scheduling corpus: generate with random_dag_net (wide inception
  /// fan-outs, diamond skips, elementwise chains, auxiliary losses)
  /// instead of the mostly-linear random_net body.
  bool dag_corpus = false;
  int max_branches = 4;  ///< inception fan-out width (dag corpus only)
};

/// A random, valid, topologically-sorted training net: Data → random
/// body (convs, pools, activations, LRN, dropout, optional branch) →
/// InnerProduct → SoftmaxWithLoss. Batch sizes straddle the 32-slot
/// boundary so both bit-exact regimes are sampled.
mc::NetSpec random_net(glp::Rng& rng, const NetGenOptions& options = {});

/// A random, valid, forward-only *serving* net: Input (caller-filled
/// samples) → random conv body → InnerProduct → Softmax. No Data or loss
/// layers, so an InferenceSession can host it directly. The Input batch
/// size is a small ragged value in [1, 8] — the serving fuzzers rewrite
/// it per replica anyway, but partial batches get exercised either way.
mc::NetSpec random_inference_net(glp::Rng& rng,
                                 const NetGenOptions& options = {});

/// A random *branchy* training net for the DAG scheduler: GoogLeNet-style
/// inception units (2..max_branches parallel conv branches merged by
/// Concat), diamond skips (Eltwise sum of a transformed and a pass-through
/// path), in-place ReLUs directly after convs (GEMM-epilogue fusion
/// candidates), runs of stacked elementwise activations (chain-coalescing
/// candidates), and sometimes an auxiliary loss head (parallel losses).
/// Always topologically sorted; batch sizes straddle the 32-slot boundary.
mc::NetSpec random_dag_net(glp::Rng& rng, const NetGenOptions& options = {});

/// A random device: one of the catalogue GPUs with perturbed SM count,
/// per-SM thread/smem/block limits, concurrency degree, bandwidths and
/// launch latencies. Always satisfies the simulator's launch limits for
/// the kernels the layer zoo emits.
gpusim::DeviceProps random_device(glp::Rng& rng);

/// A random scheduler configuration over DispatchPolicy × strict_repro ×
/// fixed_streams × max_streams.
glp4nn::SchedulerOptions random_scheduler_options(glp::Rng& rng);

/// One fully-sampled differential-fuzz case.
struct FuzzCase {
  std::uint64_t seed = 0;
  mc::NetSpec net;
  gpusim::DeviceProps device;
  glp4nn::SchedulerOptions options;
  int iters = 2;  ///< training iterations per run
  bool dag = false;  ///< sampled from the dag corpus (random_dag_net)

  /// One-line human-readable description for logs.
  std::string summary() const;
};

/// Sample a complete case from a seed (net, device, scheduler options).
FuzzCase make_case(std::uint64_t seed, const NetGenOptions& options = {});

}  // namespace glpfuzz
