#include "testing/race_checker.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

namespace glpfuzz {

namespace {

// Simulated timestamps are doubles; comparisons tolerate accumulated
// floating-point noise well below any real event spacing.
constexpr double kEpsNs = 1e-3;

/// A kernel or copy record flattened to the fields the checker needs.
struct Op {
  std::uint64_t correlation_id = 0;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  double submit_ns = 0.0;
  double start_ns = 0.0;
  double end_ns = 0.0;
  bool is_kernel = false;
  bool has_submit = false;  ///< CopyRecord does not record submit time
  const std::string* name = nullptr;
};

}  // namespace

const char* kind_name(RaceViolation::Kind kind) {
  switch (kind) {
    case RaceViolation::Kind::kDuplicateCorrelation: return "duplicate-correlation";
    case RaceViolation::Kind::kNonMonotonic: return "non-monotonic";
    case RaceViolation::Kind::kStreamFifo: return "stream-fifo";
    case RaceViolation::Kind::kDefaultBarrierBefore: return "default-barrier-before";
    case RaceViolation::Kind::kDefaultBarrierAfter: return "default-barrier-after";
    case RaceViolation::Kind::kConcurrencyCap: return "concurrency-cap";
    case RaceViolation::Kind::kDagOrderViolation: return "dag-order";
    case RaceViolation::Kind::kLinkOversubscribed: return "link-oversubscribed";
    case RaceViolation::Kind::kTransferAccounting: return "transfer-accounting";
  }
  return "unknown";
}

std::string RaceReport::to_string() const {
  std::ostringstream os;
  for (const RaceViolation& v : violations) {
    os << "[" << kind_name(v.kind) << "] corr=" << v.correlation_id
       << " stream=" << v.stream << " t=" << v.ts_ns << "ns: " << v.detail
       << "\n";
  }
  return os.str();
}

RaceReport check_timeline(const gpusim::Timeline& timeline,
                          const gpusim::DeviceProps& props) {
  RaceReport report;

  static const std::string kCopyName = "memcpy";
  std::vector<Op> ops;
  ops.reserve(timeline.size());
  for (const gpusim::KernelRecord& k : timeline.kernels()) {
    ops.push_back(Op{k.correlation_id, k.stream, k.submit_ns, k.start_ns,
                     k.end_ns, true, true, &k.name});
  }
  for (const gpusim::CopyRecord& c : timeline.copies()) {
    ops.push_back(Op{c.correlation_id, c.stream, 0.0, c.start_ns, c.end_ns,
                     false, false, &kCopyName});
  }

  // Correlation ids are assigned in host submission order, so sorting by
  // them reconstructs the program order every barrier invariant is
  // defined against.
  std::sort(ops.begin(), ops.end(),
            [](const Op& a, const Op& b) {
              return a.correlation_id < b.correlation_id;
            });
  report.ops_checked = ops.size();

  auto flag = [&](RaceViolation::Kind kind, const Op& op, double ts,
                  const std::string& detail) {
    report.violations.push_back(
        RaceViolation{kind, op.correlation_id, op.stream, ts, detail});
  };

  // --- uniqueness + monotonicity ----------------------------------------
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (i > 0 && op.correlation_id == ops[i - 1].correlation_id) {
      flag(RaceViolation::Kind::kDuplicateCorrelation, op, op.start_ns,
           "correlation id appears more than once");
    }
    if (op.end_ns < op.start_ns - kEpsNs ||
        (op.has_submit && op.start_ns < op.submit_ns - kEpsNs)) {
      std::ostringstream d;
      d << *op.name << ": submit=" << op.submit_ns << " start=" << op.start_ns
        << " end=" << op.end_ns;
      flag(RaceViolation::Kind::kNonMonotonic, op, op.start_ns, d.str());
    }
  }

  // --- FIFO + default-stream barrier (one pass in program order) --------
  std::unordered_map<gpusim::StreamId, const Op*> last_on_stream;
  const Op* max_end_op = nullptr;    // op with the latest end so far
  const Op* last_default = nullptr;  // last stream-0 op seen so far
  for (const Op& op : ops) {
    if (const Op* prev = last_on_stream[op.stream]) {
      if (op.start_ns < prev->end_ns - kEpsNs) {
        std::ostringstream d;
        d << *op.name << " started at " << op.start_ns
          << " before same-stream predecessor corr=" << prev->correlation_id
          << " ended at " << prev->end_ns;
        flag(RaceViolation::Kind::kStreamFifo, op, op.start_ns, d.str());
      }
    }
    if (op.stream == gpusim::kDefaultStream) {
      if (max_end_op && op.start_ns < max_end_op->end_ns - kEpsNs) {
        std::ostringstream d;
        d << *op.name << " on the default stream started at " << op.start_ns
          << " before earlier corr=" << max_end_op->correlation_id
          << " (stream " << max_end_op->stream << ") ended at "
          << max_end_op->end_ns;
        flag(RaceViolation::Kind::kDefaultBarrierBefore, op, op.start_ns,
             d.str());
      }
      last_default = &op;
    } else if (last_default && op.start_ns < last_default->end_ns - kEpsNs) {
      std::ostringstream d;
      d << *op.name << " started at " << op.start_ns
        << " before preceding default-stream corr="
        << last_default->correlation_id << " ended at "
        << last_default->end_ns;
      flag(RaceViolation::Kind::kDefaultBarrierAfter, op, op.start_ns,
           d.str());
    }
    last_on_stream[op.stream] = &op;
    if (!max_end_op || op.end_ns > max_end_op->end_ns) max_end_op = &op;
  }

  // --- concurrency cap (interval sweep over kernels only) ---------------
  // At equal timestamps, process ends before starts: a kernel admitted
  // exactly when another retires does not overlap it.
  struct Event {
    double ts;
    int delta;
    const Op* op;
  };
  std::vector<Event> events;
  for (const Op& op : ops) {
    if (!op.is_kernel) continue;
    events.push_back(Event{op.start_ns, +1, &op});
    events.push_back(Event{op.end_ns, -1, &op});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.delta < b.delta;
  });
  int resident = 0;
  for (const Event& e : events) {
    resident += e.delta;
    report.peak_concurrency = std::max(report.peak_concurrency, resident);
    if (e.delta > 0 && resident > props.max_concurrent_kernels) {
      std::ostringstream d;
      d << resident << " kernels resident at t=" << e.ts << " but device '"
        << props.name << "' allows " << props.max_concurrent_kernels;
      flag(RaceViolation::Kind::kConcurrencyCap, *e.op, e.ts, d.str());
    }
  }

  return report;
}

std::string OpScheduleReport::to_string() const {
  std::ostringstream os;
  for (const RaceViolation& v : violations) {
    os << "[" << kind_name(v.kind) << "] corr=" << v.correlation_id
       << " stream=" << v.stream << " t=" << v.ts_ns << "ns: " << v.detail
       << "\n";
  }
  return os.str();
}

OpScheduleReport check_op_schedule(const gpusim::Timeline& timeline,
                                   const std::vector<ScheduledOp>& ops) {
  OpScheduleReport report;

  // Attribute every kernel to the (single) op whose prefix it carries.
  struct Span {
    bool any = false;
    double min_start = 0.0;
    double max_end = 0.0;
    // Earliest-starting kernel, for violation reporting.
    std::uint64_t first_corr = 0;
    gpusim::StreamId first_stream = gpusim::kDefaultStream;
    const std::string* first_name = nullptr;
  };
  std::vector<Span> spans(ops.size());
  auto belongs = [](const std::string& name, const std::string& prefix) {
    if (prefix.empty()) return false;
    if (name.size() < prefix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    return name.size() == prefix.size() || name[prefix.size()] == '/';
  };
  for (const gpusim::KernelRecord& k : timeline.kernels()) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!belongs(k.name, ops[i].prefix)) continue;
      Span& s = spans[i];
      if (!s.any || k.start_ns < s.min_start) {
        s.first_corr = k.correlation_id;
        s.first_stream = k.stream;
        s.first_name = &k.name;
        s.min_start = s.any ? std::min(s.min_start, k.start_ns) : k.start_ns;
      }
      s.max_end = s.any ? std::max(s.max_end, k.end_ns) : k.end_ns;
      s.any = true;
      break;  // prefixes are per-layer-pass and thus disjoint
    }
  }
  for (const Span& s : spans) {
    if (s.any) ++report.ops_matched;
  }

  // Edge check: the consumer's earliest kernel start must not precede any
  // producer kernel's end. Vacuous when either side has no kernels.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!spans[i].any) continue;
    for (int d : ops[i].deps) {
      if (d < 0 || static_cast<std::size_t>(d) >= ops.size()) continue;
      if (!spans[static_cast<std::size_t>(d)].any) continue;
      ++report.edges_checked;
      const Span& prod = spans[static_cast<std::size_t>(d)];
      const Span& cons = spans[i];
      if (cons.min_start < prod.max_end - kEpsNs) {
        std::ostringstream det;
        det << "op '" << ops[i].prefix << "' (" << *cons.first_name
            << ") started at " << cons.min_start << " before producer op '"
            << ops[static_cast<std::size_t>(d)].prefix << "' ended at "
            << prod.max_end;
        report.violations.push_back(
            RaceViolation{RaceViolation::Kind::kDagOrderViolation,
                          cons.first_corr, cons.first_stream, cons.min_start,
                          det.str()});
      }
    }
  }

  // Op-level concurrency: how many op spans overlap at once. This is the
  // branch parallelism the DAG scheduler achieved — a report, not a race.
  struct Edge {
    double ts;
    int delta;
  };
  std::vector<Edge> sweep;
  for (const Span& s : spans) {
    if (!s.any) continue;
    sweep.push_back(Edge{s.min_start, +1});
    sweep.push_back(Edge{s.max_end, -1});
  }
  std::sort(sweep.begin(), sweep.end(), [](const Edge& a, const Edge& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.delta < b.delta;
  });
  int resident = 0;
  for (const Edge& e : sweep) {
    resident += e.delta;
    report.peak_op_concurrency = std::max(report.peak_op_concurrency, resident);
  }

  return report;
}

std::string FleetTransferReport::to_string() const {
  std::ostringstream os;
  for (const RaceViolation& v : violations) {
    os << "[" << kind_name(v.kind) << "] transfer=" << v.correlation_id
       << " channel=" << v.stream << " t=" << v.ts_ns << "ns: " << v.detail
       << "\n";
  }
  return os.str();
}

FleetTransferReport check_fleet_transfers(
    const std::vector<gpusim::TransferRecord>& transfers,
    const gpusim::LinkProps& props) {
  FleetTransferReport report;
  report.transfers_checked = transfers.size();
  const double bandwidth = props.bytes_per_ns();
  // Conservation tolerance: the PS fluid drain works in double bytes, so
  // residuals stay far below one byte even across many segments.
  constexpr double kEpsBytes = 1e-3;
  // Rate tolerance absorbs division noise when n transfers share B/n.
  const double eps_rate = bandwidth * 1e-9 + 1e-12;

  auto flag = [&](RaceViolation::Kind kind, const gpusim::TransferRecord& t,
                  double ts, const std::string& detail) {
    report.violations.push_back(RaceViolation{
        kind, t.id, static_cast<gpusim::StreamId>(t.channel), ts, detail});
  };

  // --- per-record sanity + conservation ---------------------------------
  for (const gpusim::TransferRecord& t : transfers) {
    if (t.start_ns < t.request_ns - kEpsNs || t.end_ns < t.start_ns - kEpsNs) {
      std::ostringstream d;
      d << "request=" << t.request_ns << " start=" << t.start_ns
        << " end=" << t.end_ns;
      flag(RaceViolation::Kind::kTransferAccounting, t, t.start_ns, d.str());
      continue;
    }
    double moved = 0.0;
    double cursor = t.start_ns;
    bool profile_ok = true;
    for (const gpusim::RateSegment& seg : t.segments) {
      // The PS fluid profile must tile [start, end] exactly: an active
      // transfer always holds a positive share, so gaps are as illegal
      // as overlaps.
      if (std::abs(seg.start_ns - cursor) > kEpsNs ||
          seg.end_ns < seg.start_ns || seg.end_ns > t.end_ns + kEpsNs ||
          seg.rate < 0.0) {
        std::ostringstream d;
        d << "segment [" << seg.start_ns << ", " << seg.end_ns << ") rate "
          << seg.rate << " leaves [" << cursor << ", " << t.end_ns << ")";
        flag(RaceViolation::Kind::kTransferAccounting, t, seg.start_ns,
             d.str());
        profile_ok = false;
        break;
      }
      moved += seg.rate * (seg.end_ns - seg.start_ns);
      cursor = seg.end_ns;
    }
    if (!profile_ok) continue;
    if (std::abs(cursor - t.end_ns) > kEpsNs) {
      std::ostringstream d;
      d << "rate profile stops at " << cursor << " short of end "
        << t.end_ns;
      flag(RaceViolation::Kind::kTransferAccounting, t, cursor, d.str());
      continue;
    }
    if (std::abs(moved - static_cast<double>(t.bytes)) > kEpsBytes) {
      std::ostringstream d;
      d << "rate profile moved " << moved << " bytes of " << t.bytes;
      flag(RaceViolation::Kind::kTransferAccounting, t, t.end_ns, d.str());
    }
  }

  // --- per-channel capacity sweep ---------------------------------------
  // Rate-delta events over every channel's segments; at equal timestamps
  // rate removals land before additions (back-to-back waves touch).
  struct RateEvent {
    double ts;
    double delta;
    const gpusim::TransferRecord* transfer;
  };
  std::map<int, std::vector<RateEvent>> by_channel;
  for (const gpusim::TransferRecord& t : transfers) {
    for (const gpusim::RateSegment& seg : t.segments) {
      if (seg.rate <= 0.0 || seg.end_ns <= seg.start_ns) continue;
      by_channel[t.channel].push_back(RateEvent{seg.start_ns, seg.rate, &t});
      by_channel[t.channel].push_back(RateEvent{seg.end_ns, -seg.rate, &t});
    }
  }
  report.channels_used = by_channel.size();
  for (auto& [channel, events] : by_channel) {
    std::sort(events.begin(), events.end(),
              [](const RateEvent& a, const RateEvent& b) {
                if (a.ts != b.ts) return a.ts < b.ts;
                return a.delta < b.delta;
              });
    double rate = 0.0;
    for (const RateEvent& e : events) {
      rate += e.delta;
      report.peak_channel_rate = std::max(report.peak_channel_rate, rate);
      if (e.delta > 0.0 && rate > bandwidth + eps_rate) {
        std::ostringstream d;
        d << "channel " << channel << " carries " << rate
          << " bytes/ns at t=" << e.ts << " but the link provides "
          << bandwidth;
        flag(RaceViolation::Kind::kLinkOversubscribed, *e.transfer, e.ts,
             d.str());
      }
    }
  }

  return report;
}

std::vector<gpusim::TraceMarker> violation_markers(const RaceReport& report) {
  std::vector<gpusim::TraceMarker> markers;
  markers.reserve(report.violations.size());
  for (const RaceViolation& v : report.violations) {
    markers.push_back(gpusim::TraceMarker{
        std::string("RACE ") + kind_name(v.kind) + ": " + v.detail, v.ts_ns,
        v.stream});
  }
  return markers;
}

}  // namespace glpfuzz
