#pragma once
// Timeline race checker: replays a recorded gpusim timeline against the
// simulator's ordering contract and reports every violation. The checked
// invariants are exactly the guarantees the engine documents:
//
//   1. correlation ids are unique (one record per submitted op);
//   2. timestamps are monotonic per op (submit ≤ start ≤ end);
//   3. same-stream FIFO — an op is admitted only after its stream
//      predecessor *completed*, so start ≥ previous op's end;
//   4. the legacy default stream is a two-sided barrier: a default-stream
//      op starts only after every earlier-submitted op (any stream) has
//      finished, and no later-submitted op starts before the last
//      default-stream op finished;
//   5. at most `max_concurrent_kernels` kernels are resident at any
//      instant (copies ride the copy engines and are exempt).
//
// Since per-sample task-lane work is serialised onto one stream by the
// scheduler, invariant 3 subsumes "every kernel starts after its
// same-sample predecessors".
//
// DAG-scheduled runs additionally tag kernels with their layer-op prefix
// ("conv1/fwd/..."). check_op_schedule() replays a timeline against an
// explicit op DAG: every kernel of a consumer op must start at or after
// every kernel of each producer op ended. Concurrent sibling branches
// overlap legitimately — overlap across ops is *concurrency*, reported
// as peak_op_concurrency, not flagged as a race; only an edge violation
// (consumer kernel starting before a producer kernel ended) is an error.

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/interconnect.hpp"
#include "gpusim/timeline.hpp"
#include "gpusim/trace_export.hpp"

namespace glpfuzz {

struct RaceViolation {
  enum class Kind {
    kDuplicateCorrelation,  ///< two records share a correlation id
    kNonMonotonic,          ///< end < start or start < submit
    kStreamFifo,            ///< started before same-stream predecessor ended
    kDefaultBarrierBefore,  ///< stream-0 op started before earlier work ended
    kDefaultBarrierAfter,   ///< op started before preceding stream-0 op ended
    kConcurrencyCap,        ///< resident kernels exceeded the device limit
    kDagOrderViolation,     ///< consumer-op kernel started before a producer
                            ///< op's kernel ended
    kLinkOversubscribed,    ///< concurrent transfers on one channel summed
                            ///< past its physical bandwidth
    kTransferAccounting,    ///< a transfer's rate profile is inconsistent
                            ///< (gaps, bad bounds, or ∫rate dt ≠ bytes)
  };

  Kind kind;
  std::uint64_t correlation_id = 0;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  gpusim::SimTime ts_ns = 0.0;  ///< where in the trace it happened
  std::string detail;           ///< human-readable explanation
};

const char* kind_name(RaceViolation::Kind kind);

struct RaceReport {
  std::vector<RaceViolation> violations;
  std::size_t ops_checked = 0;
  int peak_concurrency = 0;  ///< max simultaneously-resident kernels

  bool clean() const { return violations.empty(); }
  /// Multi-line dump of every violation (empty string when clean).
  std::string to_string() const;
};

/// Check a recorded timeline against the ordering contract of `props`'
/// device. The timeline must have been recorded with tracing enabled for
/// the whole run; an empty timeline trivially passes.
RaceReport check_timeline(const gpusim::Timeline& timeline,
                          const gpusim::DeviceProps& props);

/// One Chrome-trace instant marker per violation, for visual triage.
std::vector<gpusim::TraceMarker> violation_markers(const RaceReport& report);

/// One node of the op DAG a timeline is checked against. A kernel belongs
/// to the op when its name equals `prefix` or starts with `prefix + "/"`
/// (fused-chain kernels carry the head op's prefix; a ReLU absorbed as a
/// GEMM epilogue contributes no kernels of its own and its span is
/// vacuously ordered). `deps` index earlier entries of the same vector.
struct ScheduledOp {
  std::string prefix;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  std::vector<int> deps;
};

struct OpScheduleReport {
  std::vector<RaceViolation> violations;
  std::size_t ops_matched = 0;  ///< ops with at least one kernel on the trace
  std::size_t edges_checked = 0;
  /// Max DAG ops simultaneously resident (both spans overlapping) — the
  /// legitimate branch concurrency the DAG scheduler achieved.
  int peak_op_concurrency = 0;

  bool clean() const { return violations.empty(); }
  std::string to_string() const;
};

/// Check a DAG-scheduled run: for every edge producer -> consumer, every
/// consumer kernel must start at or after every producer kernel ended
/// (regardless of which stream a kernel landed on — launch faults reroute
/// kernels to the default stream, which is still ordering-safe). Ops with
/// no kernels on the trace (data layers, absorbed/fused members) pass
/// vacuously.
OpScheduleReport check_op_schedule(const gpusim::Timeline& timeline,
                                   const std::vector<ScheduledOp>& ops);

struct FleetTransferReport {
  std::vector<RaceViolation> violations;
  std::size_t transfers_checked = 0;
  /// Max instantaneous aggregate rate observed on any one channel
  /// (bytes/ns == GB/s) — at most props.bandwidth_gbps when clean.
  double peak_channel_rate = 0.0;
  /// Channels that carried at least one transfer.
  std::size_t channels_used = 0;

  bool clean() const { return violations.empty(); }
  std::string to_string() const;
};

/// Check a fleet run's cross-device transfers against the interconnect
/// model's physical contract (docs/FLEET.md):
///
///   1. per-record sanity — request ≤ start, start ≤ end, and the
///      RateSegment profile tiles [start, end] exactly (contiguous,
///      in-bounds, non-negative rates);
///   2. conservation — every transfer's ∫rate dt equals its byte count;
///   3. capacity — at every instant, the rates of all transfers sharing
///      a channel sum to at most the link bandwidth, so contending
///      transfers each see a reduced share while transfers on disjoint
///      channels keep the full link to themselves.
///
/// The RaceViolation's `stream` field carries the channel index and
/// `correlation_id` the transfer id.
FleetTransferReport check_fleet_transfers(
    const std::vector<gpusim::TransferRecord>& transfers,
    const gpusim::LinkProps& props);

}  // namespace glpfuzz
