#pragma once
// Timeline race checker: replays a recorded gpusim timeline against the
// simulator's ordering contract and reports every violation. The checked
// invariants are exactly the guarantees the engine documents:
//
//   1. correlation ids are unique (one record per submitted op);
//   2. timestamps are monotonic per op (submit ≤ start ≤ end);
//   3. same-stream FIFO — an op is admitted only after its stream
//      predecessor *completed*, so start ≥ previous op's end;
//   4. the legacy default stream is a two-sided barrier: a default-stream
//      op starts only after every earlier-submitted op (any stream) has
//      finished, and no later-submitted op starts before the last
//      default-stream op finished;
//   5. at most `max_concurrent_kernels` kernels are resident at any
//      instant (copies ride the copy engines and are exempt).
//
// Since per-sample task-lane work is serialised onto one stream by the
// scheduler, invariant 3 subsumes "every kernel starts after its
// same-sample predecessors".

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device_props.hpp"
#include "gpusim/timeline.hpp"
#include "gpusim/trace_export.hpp"

namespace glpfuzz {

struct RaceViolation {
  enum class Kind {
    kDuplicateCorrelation,  ///< two records share a correlation id
    kNonMonotonic,          ///< end < start or start < submit
    kStreamFifo,            ///< started before same-stream predecessor ended
    kDefaultBarrierBefore,  ///< stream-0 op started before earlier work ended
    kDefaultBarrierAfter,   ///< op started before preceding stream-0 op ended
    kConcurrencyCap,        ///< resident kernels exceeded the device limit
  };

  Kind kind;
  std::uint64_t correlation_id = 0;
  gpusim::StreamId stream = gpusim::kDefaultStream;
  gpusim::SimTime ts_ns = 0.0;  ///< where in the trace it happened
  std::string detail;           ///< human-readable explanation
};

const char* kind_name(RaceViolation::Kind kind);

struct RaceReport {
  std::vector<RaceViolation> violations;
  std::size_t ops_checked = 0;
  int peak_concurrency = 0;  ///< max simultaneously-resident kernels

  bool clean() const { return violations.empty(); }
  /// Multi-line dump of every violation (empty string when clean).
  std::string to_string() const;
};

/// Check a recorded timeline against the ordering contract of `props`'
/// device. The timeline must have been recorded with tracing enabled for
/// the whole run; an empty timeline trivially passes.
RaceReport check_timeline(const gpusim::Timeline& timeline,
                          const gpusim::DeviceProps& props);

/// One Chrome-trace instant marker per violation, for visual triage.
std::vector<gpusim::TraceMarker> violation_markers(const RaceReport& report);

}  // namespace glpfuzz
