#include "testing/serving_differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "serving/server.hpp"
#include "testing/differential_runner.hpp"

namespace glpfuzz {

namespace {

bool same_time_bits(gpusim::SimTime a, gpusim::SimTime b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

template <typename T>
T pick(glp::Rng& rng, std::initializer_list<T> values) {
  const auto* begin = values.begin();
  return begin[rng.next_below(values.size())];
}

bool chance(glp::Rng& rng, double p) { return rng.next_double() < p; }

std::size_t sample_size_of(const mc::NetSpec& net) {
  GLP_REQUIRE(!net.layers.empty() && net.layers.front().type == "Input",
              "serving case net must start with an Input layer");
  const mc::LayerParams& p = net.layers.front().params;
  return static_cast<std::size_t>(p.dataset.channels) * p.dataset.height *
         p.dataset.width;
}

}  // namespace

ServeCase make_serving_case(std::uint64_t seed, const NetGenOptions& options) {
  // Decorrelate nearby seeds, and keep this stream independent from the
  // training fuzzer's by a different additive constant.
  glp::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5e91feULL);
  ServeCase c;
  c.seed = seed;

  const int tenants = chance(rng, 0.4) ? 2 : 1;
  for (int t = 0; t < tenants; ++t) {
    mc::NetSpec net = random_inference_net(rng, options);
    net.name = "serve_fuzz_" + std::to_string(seed) + "_t" + std::to_string(t);
    c.nets.push_back(std::move(net));
  }
  c.device = random_device(rng);

  c.batch.enabled = true;
  c.batch.mode = chance(rng, 0.5) ? serving::BatchMode::kContinuous
                                  : serving::BatchMode::kWindowed;
  c.batch.max_batch = pick(rng, {2, 3, 4, 6, 8});
  c.batch.max_delay_us = pick(rng, {200.0, 500.0, 1000.0, 2000.0});
  c.coalesce = chance(rng, 0.5);
  c.slots = pick(rng, {1, 2, 4});

  c.trace.requests = 16 + static_cast<int>(rng.next_below(33));  // 16..48
  c.trace.rate_rps = pick(rng, {1000.0, 3000.0, 8000.0, 20000.0});
  c.trace.arrival = pick(rng, {serving::ArrivalProcess::kPoisson,
                               serving::ArrivalProcess::kBursty,
                               serving::ArrivalProcess::kUniform,
                               serving::ArrivalProcess::kDiurnal,
                               serving::ArrivalProcess::kFlashCrowd,
                               serving::ArrivalProcess::kHeavyTail,
                               serving::ArrivalProcess::kAdversarial});
  c.trace.tenants = tenants;
  c.trace.deadline_ms = 0.0;  // the contract compares *served* outputs
  c.trace.seed = seed ^ 0xbadc0ffeULL;
  c.trace.fill_inputs = true;
  return c;
}

std::string ServeCase::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " tenants=" << nets.size() << " (";
  for (std::size_t t = 0; t < nets.size(); ++t) {
    os << (t ? "+" : "") << nets[t].layers.size();
  }
  os << " layers) batch<=" << batch.max_batch << "/"
     << static_cast<int>(batch.max_delay_us) << "us "
     << serving::batch_mode_name(batch.mode)
     << (coalesce ? "+coalesce" : "") << " slots=" << slots
     << " trace=" << trace.requests << "@"
     << static_cast<int>(trace.rate_rps) << "rps/"
     << serving::arrival_name(trace.arrival) << " device=" << device.name
     << " (C=" << device.max_concurrent_kernels << ")";
  return os.str();
}

ServeDiffResult run_serving_differential(const ServeCase& c,
                                         bool check_timeline) {
  ServeDiffResult r;
  r.requests = static_cast<std::size_t>(c.trace.requests);

  std::vector<std::size_t> sizes;
  std::vector<serving::TenantModel> models;
  for (std::size_t t = 0; t < c.nets.size(); ++t) {
    sizes.push_back(sample_size_of(c.nets[t]));
    serving::TenantModel m;
    m.name = "t" + std::to_string(t);
    m.spec = c.nets[t];
    models.push_back(std::move(m));
  }
  const auto trace = serving::make_trace(c.trace, sizes);

  // Both replays get an over-provisioned queue and no deadlines, so every
  // request is served and the comparison covers the full trace.
  serving::ServerOptions base;
  base.slots = c.slots;
  base.queue_capacity = trace.size() + 1;
  base.keep_outputs = true;

  // Reference: serial dispatch, batcher off, no coalescing — every request
  // is its own batch-1 forward on the default stream.
  std::vector<serving::RequestRecord> ref;
  {
    serving::ServerOptions opts = base;
    opts.batch.enabled = false;
    opts.use_scheduler = false;
    opts.coalesce_lanes = false;
    scuda::Context ctx(c.device);
    serving::InferenceServer server(ctx, models, opts);
    ref = server.replay(trace);
  }

  // Subject: tenant-sliced scheduler with dynamic batching (windowed or
  // continuous) and, on half the cases, lane coalescing.
  std::vector<serving::RequestRecord> sub;
  {
    serving::ServerOptions opts = base;
    opts.batch = c.batch;
    opts.use_scheduler = true;
    opts.coalesce_lanes = c.coalesce;
    opts.record_timeline = check_timeline;
    scuda::Context ctx(c.device);
    serving::InferenceServer server(ctx, models, opts);
    sub = server.replay(trace);
    ctx.device().synchronize();
    if (check_timeline) {
      r.races = glpfuzz::check_timeline(ctx.device().timeline(), c.device);
    }
    // Sharded batchers mint strided ids, so count distinct ids rather
    // than assuming a dense 0..N-1 range.
    std::set<std::uint64_t> batch_ids;
    for (const serving::RequestRecord& rec : sub) batch_ids.insert(rec.batch_id);
    r.subject_batches = batch_ids.size();
  }

  const auto fail = [&](const std::string& why) {
    if (r.ok) {
      r.ok = false;
      r.failure = why;
    }
  };

  if (ref.size() != trace.size() || sub.size() != trace.size()) {
    fail("record count mismatch: ref " + std::to_string(ref.size()) +
         ", subject " + std::to_string(sub.size()) + ", trace " +
         std::to_string(trace.size()));
    return r;
  }

  std::map<std::uint64_t, const serving::RequestRecord*> ref_by_id;
  for (const serving::RequestRecord& rec : ref) ref_by_id[rec.id] = &rec;

  // Within a tenant, responses must complete in arrival order; `sub` is
  // already in completion order, so arrivals must be non-decreasing.
  std::map<int, gpusim::SimTime> last_arrival;

  for (const serving::RequestRecord& s : sub) {
    const auto it = ref_by_id.find(s.id);
    if (it == ref_by_id.end()) {
      fail("subject served unknown request id " + std::to_string(s.id));
      break;
    }
    const serving::RequestRecord& b = *it->second;
    if (s.outcome != b.outcome) {
      fail("request " + std::to_string(s.id) + " outcome " +
           std::string(serving::outcome_name(s.outcome)) + " vs reference " +
           serving::outcome_name(b.outcome));
      break;
    }
    if (s.outcome != serving::Outcome::kServed) continue;
    ++r.served;

    auto& last = last_arrival[s.tenant];
    if (s.arrival_ns < last) {
      fail("tenant " + std::to_string(s.tenant) +
           " completions reordered: request " + std::to_string(s.id) +
           " overtook a later arrival");
      break;
    }
    last = s.arrival_ns;

    if (s.output.size() != b.output.size()) {
      fail("request " + std::to_string(s.id) + " output size " +
           std::to_string(s.output.size()) + " vs reference " +
           std::to_string(b.output.size()));
      break;
    }
    for (std::size_t i = 0; i < s.output.size(); ++i) {
      r.max_output_diff = std::max(
          r.max_output_diff,
          static_cast<double>(std::fabs(s.output[i] - b.output[i])));
    }
    if (!s.output.empty() &&
        std::memcmp(s.output.data(), b.output.data(),
                    s.output.size() * sizeof(float)) != 0) {
      std::ostringstream os;
      os << "request " << s.id << " output differs from serial batch-1 "
         << "reference (max |diff| so far " << r.max_output_diff << ")";
      fail(os.str());
      break;
    }
  }

  if (r.ok && r.served != trace.size()) {
    fail("only " + std::to_string(r.served) + "/" +
         std::to_string(trace.size()) +
         " requests served despite ample queue and no deadlines");
  }
  if (r.ok && check_timeline && !r.races.clean()) {
    fail("timeline race checks failed");
  }
  return r;
}

ServeEngineDiffResult run_serving_engine_differential(const ServeCase& c) {
  ServeEngineDiffResult r;
  r.requests = static_cast<std::size_t>(c.trace.requests);

  std::vector<std::size_t> sizes;
  std::vector<serving::TenantModel> models;
  for (std::size_t t = 0; t < c.nets.size(); ++t) {
    sizes.push_back(sample_size_of(c.nets[t]));
    serving::TenantModel m;
    m.name = "t" + std::to_string(t);
    m.spec = c.nets[t];
    models.push_back(std::move(m));
  }
  const auto trace = serving::make_trace(c.trace, sizes);

  // The subject configuration only (scheduled + batched): it exercises
  // priorities, tenant stream slices and the lookahead API — the paths
  // the optimized engine most needs to reproduce exactly.
  serving::ServerOptions opts;
  opts.slots = c.slots;
  opts.queue_capacity = trace.size() + 1;
  opts.keep_outputs = true;
  opts.batch = c.batch;
  opts.use_scheduler = true;
  opts.coalesce_lanes = c.coalesce;
  opts.record_timeline = true;
  // Pin the profiling/analysis charge so the simulated clock does not
  // absorb run-to-run wall-time noise (see run_engine_differential).
  opts.scheduler.overhead_charge_ms = 0.05;

  std::vector<serving::RequestRecord> recs[2];
  gpusim::Timeline timelines[2];
  const gpusim::EngineKind kinds[2] = {gpusim::EngineKind::kOptimized,
                                       gpusim::EngineKind::kReference};
  for (int run = 0; run < 2; ++run) {
    scuda::Context ctx(c.device, kinds[run]);
    serving::InferenceServer server(ctx, models, opts);
    recs[run] = server.replay(trace);
    ctx.device().synchronize();
    timelines[run] = ctx.device().timeline();
  }

  const auto fail = [&](const std::string& why) {
    if (r.ok) {
      r.ok = false;
      r.failure = why;
    }
  };

  if (recs[0].size() != recs[1].size()) {
    fail("record count mismatch: optimized " + std::to_string(recs[0].size()) +
         " vs reference " + std::to_string(recs[1].size()));
    return r;
  }
  for (std::size_t i = 0; i < recs[0].size(); ++i) {
    const serving::RequestRecord& a = recs[0][i];
    const serving::RequestRecord& b = recs[1][i];
    const char* field = nullptr;
    if (a.id != b.id) field = "id";
    else if (a.tenant != b.tenant) field = "tenant";
    else if (a.outcome != b.outcome) field = "outcome";
    else if (a.downgraded != b.downgraded) field = "downgraded";
    else if (!same_time_bits(a.arrival_ns, b.arrival_ns)) field = "arrival_ns";
    else if (!same_time_bits(a.issue_ns, b.issue_ns)) field = "issue_ns";
    else if (!same_time_bits(a.completion_ns, b.completion_ns)) field = "completion_ns";
    else if (a.batch_id != b.batch_id) field = "batch_id";
    else if (a.batch_size != b.batch_size) field = "batch_size";
    else if (a.output.size() != b.output.size()) field = "output size";
    else if (!a.output.empty() &&
             std::memcmp(a.output.data(), b.output.data(),
                         a.output.size() * sizeof(float)) != 0) {
      field = "output bits";
    }
    if (field != nullptr) {
      std::ostringstream os;
      os << "request record " << i << " (id " << a.id << ") differs in "
         << field << " between optimized and reference engines";
      fail(os.str());
      return r;
    }
  }

  const std::string timeline_diff =
      compare_timelines(timelines[0], timelines[1]);
  if (!timeline_diff.empty()) {
    fail("timeline mismatch (optimized vs reference): " + timeline_diff);
  }
  r.kernels_compared = timelines[0].kernels().size();
  r.copies_compared = timelines[0].copies().size();
  return r;
}

}  // namespace glpfuzz
