#pragma once
// Serving differential runner: replays one sampled inference trace twice
// against the same tenant models — once on the serial baseline with the
// dynamic batcher disabled (every request a batch-1 forward on the
// default stream) and once on the GLP4NN tenant-sliced scheduler with
// batching enabled — and checks the serving contract:
//
//   * every request's output is bit-identical between the two replays
//     (batching pads with copies of real samples and per-sample scopes
//     are data-independent, so there is no tolerance regime here);
//   * within a tenant, responses complete in arrival order (batches may
//     interleave across tenants, never within one);
//   * the scheduled replay's timeline passes the stream-ordering race
//     checks from PR 1.

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device_props.hpp"
#include "serving/batcher.hpp"
#include "serving/trace_gen.hpp"
#include "testing/net_generator.hpp"
#include "testing/race_checker.hpp"

namespace glpfuzz {

/// One fully-sampled serving-differential case.
struct ServeCase {
  std::uint64_t seed = 0;
  std::vector<mc::NetSpec> nets;  ///< one tenant per net (1 or 2)
  gpusim::DeviceProps device;
  serving::BatchPolicy batch;  ///< subject-side batching policy (mode too)
  bool coalesce = false;       ///< subject-side lane coalescing
  int slots = 2;
  serving::TraceSpec trace;

  std::string summary() const;
};

/// Sample a complete serving case from a seed: random inference nets
/// (see random_inference_net), a random device, a random batching policy
/// and a short random open-loop trace.
ServeCase make_serving_case(std::uint64_t seed,
                            const NetGenOptions& options = {});

struct ServeDiffResult {
  bool ok = true;
  std::string failure;  ///< first failure, human-readable ("" when ok)

  std::size_t requests = 0;
  std::size_t served = 0;
  std::uint64_t subject_batches = 0;  ///< batches the scheduled replay formed
  double max_output_diff = 0.0;       ///< 0.0 when bit-exact (the contract)

  RaceReport races;  ///< scheduled replay's timeline checks
};

/// Replay the case twice and compare. Never throws for a *failing*
/// comparison (inspect `ok`/`failure`); propagates unexpected errors as
/// exceptions.
ServeDiffResult run_serving_differential(const ServeCase& c,
                                         bool check_timeline = true);

struct ServeEngineDiffResult {
  bool ok = true;
  std::string failure;  ///< first difference, human-readable ("" when ok)
  std::size_t requests = 0;
  std::size_t kernels_compared = 0;
  std::size_t copies_compared = 0;
};

/// Engine-vs-reference mode for serving: replay the scheduled, batched
/// subject configuration once on the optimized engine and once on
/// ReferenceEngine and require indistinguishable results — identical
/// request outcomes, batch assignments, bit-identical arrival/issue/
/// completion timestamps and outputs, and an event-for-event identical
/// device timeline.
ServeEngineDiffResult run_serving_engine_differential(const ServeCase& c);

}  // namespace glpfuzz
