#include <functional>
// Tests of the paper's analytical model (§3.2): the Eq. 7/8 helper
// formulas, and the property that every decision satisfies the hard
// constraints Eq. 4–6 while being MILP-optimal (cross-checked against
// brute force on small instances).

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "core/analytical_model.hpp"
#include "core/kernel_analyzer.hpp"

namespace {

using glp4nn::AnalyticalModel;
using glp4nn::ConcurrencyDecision;
using glp4nn::KernelAnalyzer;
using glp4nn::KernelStats;
using glp4nn::ScopeProfile;

KernelStats kernel(const std::string& name, unsigned blocks, unsigned threads,
                   double duration_us, std::size_t smem = 0) {
  KernelStats k;
  k.name = name;
  k.config.grid = {blocks, 1, 1};
  k.config.block = {threads, 1, 1};
  k.config.smem_static_bytes = smem;
  k.launches = 1;
  k.avg_duration_us = duration_us;
  k.total_duration_us = duration_us;
  return k;
}

// --- Eq. 8 -----------------------------------------------------------------------

TEST(Eq8, BetaPerSmIsFlooredBlockRatio) {
  AnalyticalModel model(gpusim::DeviceTable::p100());  // 56 SMs
  EXPECT_EQ(model.beta_per_sm(kernel("k", 112, 256, 10)), 2);
  EXPECT_EQ(model.beta_per_sm(kernel("k", 100, 256, 10)), 1);  // floor
  // Deviation from the paper documented in the header: floored at 1.
  EXPECT_EQ(model.beta_per_sm(kernel("k", 3, 256, 10)), 1);
}

// --- Eq. 7 -----------------------------------------------------------------------

TEST(Eq7, LaunchRateBoundDominatesForShortKernels) {
  auto props = gpusim::DeviceTable::p100();  // T_launch = 5 us
  AnalyticalModel model(props);
  // A 12 us kernel with tiny footprint: bound = ceil(12/5) = 3.
  EXPECT_EQ(model.upper_bound(kernel("k", 2, 64, 12.0)), 3);
  // A 2 us kernel: ceil(2/5) = 1 — cannot overlap with itself.
  EXPECT_EQ(model.upper_bound(kernel("k", 2, 64, 2.0)), 1);
}

TEST(Eq7, ThreadCapacityBoundDominatesForFatKernels) {
  auto props = gpusim::DeviceTable::p100();  // τ_max·#SM = 114688
  AnalyticalModel model(props);
  // 1024 threads × 100 blocks = 102400 active threads → bound 1.
  EXPECT_EQ(model.upper_bound(kernel("k", 100, 1024, 1e6)), 1);
}

TEST(Eq7, SharedMemoryBoundApplies) {
  auto props = gpusim::DeviceTable::p100();  // sm_max·#SM = 56·64K
  AnalyticalModel model(props);
  // 32 KiB per block × 60 blocks → smem bound = 56·64K/(32K·60) = 1.
  const int bound = model.upper_bound(kernel("k", 60, 64, 1e6, 32 * 1024));
  EXPECT_EQ(bound, 1);
}

TEST(Eq7, ClampedToConcurrencyDegree) {
  auto props = gpusim::DeviceTable::p100();
  AnalyticalModel model(props);
  // An extremely long, tiny kernel: launch bound huge → clamp to C = 128.
  EXPECT_EQ(model.upper_bound(kernel("k", 1, 32, 1e9)), 128);
}

TEST(Eq7, BoundDiffersAcrossDevices) {
  // The same kernel gets different bounds on different GPUs — the core of
  // the paper's "optimal stream count varies per device" observation.
  const KernelStats k = kernel("k", 8, 256, 40.0);
  AnalyticalModel k40(gpusim::DeviceTable::k40c());      // T_launch 7
  AnalyticalModel p100(gpusim::DeviceTable::p100());     // T_launch 5
  EXPECT_NE(k40.upper_bound(k), p100.upper_bound(k));
}

// --- decisions ---------------------------------------------------------------------

TEST(Analyze, PaperWorkflowExampleYieldsThree) {
  // Fig. 6's example: the conv1 scope has three kernel types on K40C and
  // the analyzer outputs 3 (each short kernel bound to 1 instance).
  AnalyticalModel model(gpusim::DeviceTable::k40c());
  std::vector<KernelStats> kernels = {
      kernel("im2col", 18, 256, 4.0),  // < T_launch → #K = 1
      kernel("sgemm", 12, 128, 6.0),
      kernel("gemmk", 4, 128, 5.0),
  };
  const ConcurrencyDecision d = model.analyze("conv1/fwd", kernels);
  EXPECT_EQ(d.stream_count, 3);
  for (const auto& pk : d.per_kernel) EXPECT_EQ(pk.count, 1);
}

TEST(Analyze, LongKernelsGetMultipleInstances) {
  AnalyticalModel model(gpusim::DeviceTable::p100());
  const ConcurrencyDecision d =
      model.analyze("s", {kernel("gemm", 4, 256, 40.0)});
  // Launch bound = 8; thread constraint allows 2048/256 = 8 → 8 streams.
  EXPECT_EQ(d.stream_count, 8);
}

TEST(Analyze, DecisionSatisfiesEq4And5And6) {
  auto props = gpusim::DeviceTable::p100();
  AnalyticalModel model(props);
  std::vector<KernelStats> kernels = {
      kernel("a", 60, 512, 50.0, 8 * 1024),
      kernel("b", 10, 256, 30.0, 4 * 1024),
      kernel("c", 200, 128, 80.0),
  };
  const ConcurrencyDecision d = model.analyze("s", kernels);

  double threads = 0, smem = 0;
  int total = 0;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& pk = d.per_kernel[i];
    EXPECT_LE(pk.count, pk.upper_bound);   // Eq. 7
    EXPECT_GE(pk.count, 0);
    threads += static_cast<double>(pk.count) * pk.beta_per_sm *
               kernels[i].config.threads_per_block();
    smem += static_cast<double>(pk.count) * pk.beta_per_sm *
            kernels[i].config.smem_per_block();
    total += pk.count;
  }
  EXPECT_LE(threads, props.max_threads_per_sm);      // Eq. 5
  EXPECT_LE(smem, static_cast<double>(props.shared_mem_per_sm));  // Eq. 4
  EXPECT_GE(total, 1);                               // Eq. 6
  EXPECT_LE(total, props.max_concurrent_kernels);
  EXPECT_EQ(d.stream_count, total);                  // Eq. 9
  EXPECT_GT(d.occupancy, 0.0);
  EXPECT_LE(d.occupancy, 1.0);
}

TEST(Analyze, InfeasibleModelFallsBackToSerial) {
  // A kernel whose per-SM footprint alone exceeds τ_max makes Eqs. 5+6
  // unsatisfiable; the model must degrade to one stream, not crash.
  AnalyticalModel model(gpusim::DeviceTable::p100());
  const ConcurrencyDecision d =
      model.analyze("fat", {kernel("fat", 560, 1024, 1e4)});  // β = 10
  EXPECT_EQ(d.stream_count, 1);
}

TEST(Analyze, EmptyKernelSetThrows) {
  AnalyticalModel model(gpusim::DeviceTable::p100());
  EXPECT_THROW(model.analyze("s", {}), glp::InvalidArgument);
}

// Property: on random kernel sets the MILP solution matches a brute-force
// maximisation of Eq. 3 under Eqs. 4–7.
class ModelOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelOptimality, MatchesBruteForce) {
  glp::Rng rng(GetParam());
  const auto devices = gpusim::DeviceTable::all();
  const auto props = devices[rng.next_below(devices.size())];
  AnalyticalModel model(props);

  std::vector<KernelStats> kernels;
  const int n = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    kernels.push_back(kernel("k" + std::to_string(i),
                             1 + static_cast<unsigned>(rng.next_below(300)),
                             32u << rng.next_below(5),
                             rng.uniform(1.0f, 60.0f),
                             rng.next_below(2) ? 2048u << rng.next_below(3) : 0u));
  }
  const ConcurrencyDecision d = model.analyze("s", kernels);

  // Brute force over the Eq. 7 boxes (bounded ≤ 24 per var for tractability).
  std::vector<int> ub, beta;
  std::vector<double> tau, smem;
  for (const auto& k : kernels) {
    ub.push_back(std::min(model.upper_bound(k), 24));
    beta.push_back(model.beta_per_sm(k));
    tau.push_back(static_cast<double>(k.config.threads_per_block()));
    smem.push_back(static_cast<double>(k.config.smem_per_block()));
  }
  double best = -1.0;
  std::vector<int> x(static_cast<std::size_t>(n), 0);
  std::function<void(int)> rec = [&](int i) {
    if (i == n) {
      double threads = 0, sm = 0, obj = 0;
      int total = 0;
      for (int j = 0; j < n; ++j) {
        threads += x[static_cast<std::size_t>(j)] * tau[static_cast<std::size_t>(j)] * beta[static_cast<std::size_t>(j)];
        sm += x[static_cast<std::size_t>(j)] * smem[static_cast<std::size_t>(j)] * beta[static_cast<std::size_t>(j)];
        obj += x[static_cast<std::size_t>(j)] * tau[static_cast<std::size_t>(j)] * beta[static_cast<std::size_t>(j)];
        total += x[static_cast<std::size_t>(j)];
      }
      if (threads > props.max_threads_per_sm ||
          sm > static_cast<double>(props.shared_mem_per_sm) || total < 1 ||
          total > props.max_concurrent_kernels) {
        return;
      }
      best = std::max(best, obj);
      return;
    }
    for (int v = 0; v <= ub[static_cast<std::size_t>(i)]; ++v) {
      x[static_cast<std::size_t>(i)] = v;
      rec(i + 1);
    }
  };
  rec(0);

  // The MILP searched the full box (bounds may exceed 24); it must do at
  // least as well as the clipped brute force. When even the brute force
  // found nothing feasible, the model must have used its serial fallback.
  if (best < 0.0) {
    EXPECT_EQ(d.stream_count, 1);
  } else {
    EXPECT_GE(d.objective + 1e-6, best) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ModelOptimality,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- duration-weighted alternative model -------------------------------------------

TEST(DurationWeighted, SatisfiesSameConstraints) {
  const auto props = gpusim::DeviceTable::p100();
  std::vector<KernelStats> kernels = {
      kernel("long", 8, 256, 60.0),
      kernel("short", 4, 128, 2.0),
  };
  const ConcurrencyDecision d =
      glp4nn::analyze_duration_weighted(props, "s", kernels);
  AnalyticalModel base(props);
  double threads = 0;
  int total = 0;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    EXPECT_LE(d.per_kernel[i].count, base.upper_bound(kernels[i]));
    threads += static_cast<double>(d.per_kernel[i].count) *
               base.beta_per_sm(kernels[i]) *
               kernels[i].config.threads_per_block();
    total += d.per_kernel[i].count;
  }
  EXPECT_LE(threads, props.max_threads_per_sm);
  EXPECT_GE(total, 1);
  EXPECT_EQ(d.stream_count, total);
}

TEST(DurationWeighted, FavoursTheDominantKernel) {
  // With τ budget for only a few instances, the weighted objective spends
  // it on the long kernel rather than splitting by raw thread count.
  const auto props = gpusim::DeviceTable::p100();
  std::vector<KernelStats> kernels = {
      kernel("long", 200, 512, 100.0),   // heavy AND long
      kernel("short", 200, 512, 6.0),    // same footprint, short
  };
  const ConcurrencyDecision d =
      glp4nn::analyze_duration_weighted(props, "s", kernels);
  EXPECT_GE(d.per_kernel[0].count, d.per_kernel[1].count);
  EXPECT_GT(d.per_kernel[0].count, 0);
}

TEST(DurationWeighted, PluggableViaKernelAnalyzer) {
  KernelAnalyzer analyzer(gpusim::DeviceTable::p100());
  analyzer.set_model(glp4nn::analyze_duration_weighted);
  ScopeProfile profile;
  profile.scope = "s";
  profile.kernels = {kernel("a", 4, 128, 20.0)};
  EXPECT_GE(analyzer.decide(profile).stream_count, 1);
}

// --- analyzer cache ----------------------------------------------------------------

TEST(KernelAnalyzer, CachesDecisionsPerScope) {
  KernelAnalyzer analyzer(gpusim::DeviceTable::p100());
  ScopeProfile profile;
  profile.scope = "conv1/fwd";
  profile.kernels = {kernel("a", 4, 128, 20.0)};

  EXPECT_FALSE(analyzer.has_decision("conv1/fwd"));
  const ConcurrencyDecision& d1 = analyzer.decide(profile);
  EXPECT_TRUE(analyzer.has_decision("conv1/fwd"));
  const double t_a = analyzer.total_analysis_ms();

  const ConcurrencyDecision& d2 = analyzer.decide(profile);
  EXPECT_EQ(&d1, &d2);  // same cached object
  EXPECT_EQ(analyzer.total_analysis_ms(), t_a);  // no re-analysis
}

TEST(KernelAnalyzer, InvalidateForcesReanalysis) {
  KernelAnalyzer analyzer(gpusim::DeviceTable::p100());
  ScopeProfile profile;
  profile.scope = "s";
  profile.kernels = {kernel("a", 4, 128, 20.0)};
  analyzer.decide(profile);
  analyzer.invalidate();
  EXPECT_FALSE(analyzer.has_decision("s"));
}

TEST(KernelAnalyzer, CustomModelHookOverridesDefault) {
  KernelAnalyzer analyzer(gpusim::DeviceTable::p100());
  analyzer.set_model([](const gpusim::DeviceProps&, const std::string& scope,
                        const std::vector<KernelStats>&) {
    ConcurrencyDecision d;
    d.scope = scope;
    d.stream_count = 42;
    return d;
  });
  ScopeProfile profile;
  profile.scope = "s";
  profile.kernels = {kernel("a", 4, 128, 20.0)};
  EXPECT_EQ(analyzer.decide(profile).stream_count, 42);
}

TEST(KernelAnalyzer, DecisionsMapExposed) {
  KernelAnalyzer analyzer(gpusim::DeviceTable::p100());
  ScopeProfile p1, p2;
  p1.scope = "a";
  p1.kernels = {kernel("x", 4, 128, 20.0)};
  p2.scope = "b";
  p2.kernels = {kernel("y", 4, 128, 30.0)};
  analyzer.decide(p1);
  analyzer.decide(p2);
  EXPECT_EQ(analyzer.decisions().size(), 2u);
  EXPECT_NE(analyzer.decision("a"), nullptr);
  EXPECT_EQ(analyzer.decision("zzz"), nullptr);
}

}  // namespace
