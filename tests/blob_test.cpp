#include <cmath>
#include <set>
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "minicaffe/blob.hpp"
#include "minicaffe/datasets.hpp"
#include "minicaffe/filler.hpp"

namespace {

using mc::Blob;

struct BlobTest : ::testing::Test {
  BlobTest() : ctx(gpusim::DeviceTable::p100()) {}
  scuda::Context ctx;
};

TEST_F(BlobTest, ShapeAndCount) {
  Blob b(ctx, {2, 3, 4, 5});
  EXPECT_EQ(b.count(), 120u);
  EXPECT_EQ(b.num(), 2);
  EXPECT_EQ(b.channels(), 3);
  EXPECT_EQ(b.height(), 4);
  EXPECT_EQ(b.width(), 5);
  EXPECT_EQ(b.sample_size(), 60u);
  EXPECT_EQ(b.num_axes(), 4);
}

TEST_F(BlobTest, MissingAxesDefaultToOne) {
  Blob b(ctx, {7, 9});
  EXPECT_EQ(b.height(), 1);
  EXPECT_EQ(b.width(), 1);
  EXPECT_EQ(b.sample_size(), 9u);
}

TEST_F(BlobTest, ReshapeGrowsStorage) {
  Blob b(ctx, {4});
  b.mutable_data()[3] = 1.0f;
  b.reshape({16});
  EXPECT_EQ(b.count(), 16u);
  b.mutable_data()[15] = 2.0f;  // must not crash
}

TEST_F(BlobTest, DiffIsLazy) {
  Blob b(ctx, {1000});
  const std::size_t before = ctx.bytes_allocated();
  EXPECT_FALSE(b.has_diff());
  b.mutable_diff();
  EXPECT_TRUE(b.has_diff());
  EXPECT_GT(ctx.bytes_allocated(), before);
}

TEST_F(BlobTest, ShapeAccessorValidatesAxis) {
  Blob b(ctx, {2, 3});
  EXPECT_EQ(b.shape(1), 3);
  EXPECT_THROW(b.shape(5), glp::InvalidArgument);
  EXPECT_THROW(b.shape(-1), glp::InvalidArgument);
}

TEST_F(BlobTest, RejectsNegativeDims) {
  Blob b(ctx);
  EXPECT_THROW(b.reshape({2, -1}), glp::InvalidArgument);
}

TEST_F(BlobTest, ShapeString) {
  Blob b(ctx, {2, 3, 4, 4});
  EXPECT_EQ(b.shape_string(), "2x3x4x4 (96)");
}

TEST_F(BlobTest, ReleasesMemoryOnDestruction) {
  const std::size_t before = ctx.bytes_allocated();
  {
    Blob b(ctx, {1 << 16});
    b.mutable_diff();
    EXPECT_GT(ctx.bytes_allocated(), before);
  }
  EXPECT_EQ(ctx.bytes_allocated(), before);
}

// --- fillers ----------------------------------------------------------------------

TEST_F(BlobTest, ConstantFiller) {
  Blob b(ctx, {32});
  glp::Rng rng(1);
  mc::fill_blob(mc::FillerSpec::constant(2.5f), rng, b);
  for (std::size_t i = 0; i < b.count(); ++i) EXPECT_EQ(b.data()[i], 2.5f);
}

TEST_F(BlobTest, UniformFillerRespectsBounds) {
  Blob b(ctx, {1024});
  glp::Rng rng(2);
  mc::fill_blob(mc::FillerSpec::uniform(-0.25f, 0.75f), rng, b);
  for (std::size_t i = 0; i < b.count(); ++i) {
    EXPECT_GE(b.data()[i], -0.25f);
    EXPECT_LT(b.data()[i], 0.75f);
  }
}

TEST_F(BlobTest, XavierScalesWithFanIn) {
  Blob small(ctx, {10, 4});
  Blob large(ctx, {10, 400});
  glp::Rng rng(3);
  mc::fill_blob(mc::FillerSpec::xavier(), rng, small);
  mc::fill_blob(mc::FillerSpec::xavier(), rng, large);
  auto max_abs = [](const Blob& b) {
    float m = 0;
    for (std::size_t i = 0; i < b.count(); ++i) m = std::max(m, std::abs(b.data()[i]));
    return m;
  };
  EXPECT_GT(max_abs(small), max_abs(large));
  EXPECT_LE(max_abs(large), std::sqrt(3.0f / 400.0f));
}

TEST_F(BlobTest, GaussianFillerIsDeterministic) {
  Blob a(ctx, {64}), b(ctx, {64});
  glp::Rng r1(9), r2(9);
  mc::fill_blob(mc::FillerSpec::gaussian(0.1f), r1, a);
  mc::fill_blob(mc::FillerSpec::gaussian(0.1f), r2, b);
  for (std::size_t i = 0; i < a.count(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

// --- datasets -------------------------------------------------------------------------

TEST(Datasets, Table4Shapes) {
  const auto mnist = mc::DatasetSpec::mnist();
  EXPECT_EQ(mnist.train_size, 60000);
  EXPECT_EQ(mnist.height, 28);
  EXPECT_EQ(mnist.channels, 1);
  EXPECT_EQ(mnist.num_classes, 10);

  const auto cifar = mc::DatasetSpec::cifar10();
  EXPECT_EQ(cifar.train_size, 50000);
  EXPECT_EQ(cifar.height, 32);
  EXPECT_EQ(cifar.channels, 3);

  const auto imagenet = mc::DatasetSpec::imagenet();
  EXPECT_EQ(imagenet.train_size, 1200000);
  EXPECT_EQ(imagenet.height, 256);
  EXPECT_EQ(imagenet.num_classes, 1000);

  EXPECT_EQ(mc::DatasetSpec::imagenet_crop227().height, 227);
}

TEST(Datasets, SamplesAreDeterministic) {
  mc::SyntheticDataset a(mc::DatasetSpec::mnist(), 42);
  mc::SyntheticDataset b(mc::DatasetSpec::mnist(), 42);
  std::vector<float> sa(a.spec().sample_size()), sb(sa.size());
  a.fill_sample(1234, sa.data());
  b.fill_sample(1234, sb.data());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.label_of(1234), b.label_of(1234));
}

TEST(Datasets, DifferentSeedsDiffer) {
  mc::SyntheticDataset a(mc::DatasetSpec::mnist(), 1);
  mc::SyntheticDataset b(mc::DatasetSpec::mnist(), 2);
  std::vector<float> sa(a.spec().sample_size()), sb(sa.size());
  a.fill_sample(0, sa.data());
  b.fill_sample(0, sb.data());
  EXPECT_NE(sa, sb);
}

TEST(Datasets, LabelsCoverAllClasses) {
  mc::SyntheticDataset d(mc::DatasetSpec::cifar10(), 5);
  std::set<int> seen;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const int l = d.label_of(i);
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
    seen.insert(l);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Datasets, BatchWrapsAroundEpoch) {
  mc::DatasetSpec spec = mc::DatasetSpec::mnist();
  spec.train_size = 10;
  mc::SyntheticDataset d(spec, 7);
  std::vector<float> images(4 * spec.sample_size());
  std::vector<float> labels(4);
  d.fill_batch(8, 4, images.data(), labels.data());  // indices 8,9,0,1
  std::vector<float> direct(spec.sample_size());
  d.fill_sample(0, direct.data());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(images[2 * spec.sample_size() + i], direct[i]);
  }
}

TEST(Datasets, SamplesOfSameClassCorrelate) {
  // Prototype structure: same-class samples must be closer than
  // cross-class samples on average — this is what makes the data learnable.
  mc::SyntheticDataset d(mc::DatasetSpec::cifar10(), 3);
  std::uint64_t i = 0, j = 1;
  while (d.label_of(j) != d.label_of(i)) ++j;
  std::uint64_t k = 1;
  while (d.label_of(k) == d.label_of(i)) ++k;
  std::vector<float> si(d.spec().sample_size()), sj(si.size()), sk(si.size());
  d.fill_sample(i, si.data());
  d.fill_sample(j, sj.data());
  d.fill_sample(k, sk.data());
  auto dist = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double s = 0;
    for (std::size_t t = 0; t < a.size(); ++t) s += (a[t] - b[t]) * (a[t] - b[t]);
    return s;
  };
  EXPECT_LT(dist(si, sj), dist(si, sk));
}

}  // namespace
