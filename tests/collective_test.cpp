// Collective engine suite: every algorithm's scheduled execution must be
// bit-identical to its host oracle (the shared wave program replayed by
// reference_collective_allreduce), across device counts, non-divisible
// and degenerate element counts, fp16 wire, pipelining, and faulted
// comm-lane creation. Plus the cost model's selection behaviour, the
// fp16 loss-trajectory tolerance contract, and the pipelining win the
// BENCH_fleet floors quantify.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/wire.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/trace_export.hpp"
#include "simcuda/fleet.hpp"
#include "testing/fleet_differential.hpp"
#include "testing/race_checker.hpp"

namespace {

using comm::CollectiveAlgo;
using comm::CollectiveChoice;
using comm::CollectiveCostModel;
using comm::CollectiveOptions;
using comm::CollectiveProgram;
using comm::WireFormat;
using gpusim::LinkTopology;

scuda::FleetOptions fleet_options(LinkTopology topo) {
  scuda::FleetOptions f;
  f.topology = topo;
  f.link = topo == LinkTopology::kNvlinkRing ? gpusim::LinkProps::nvlink()
                                             : gpusim::LinkProps::pcie();
  return f;
}

/// Deterministic, device- and index-dependent values with exact binary
/// representations (multiples of 1/8 in [-125, 125]) so fp32 chains stay
/// interesting without drifting into rounding noise.
float fill_value(int d, std::size_t k) {
  const std::uint32_t h = (static_cast<std::uint32_t>(d + 1) * 2654435761u) ^
                          (static_cast<std::uint32_t>(k) * 40503u + 0x9e37u);
  return static_cast<float>(static_cast<int>(h % 2001) - 1000) * 0.125f;
}

bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// Run one scheduled reduce and require bit-equality with the oracle
/// replay of the engine's own program, a clean link-contract audit, and
/// no zero-byte transfers.
void check_reduce_bit_exact(scuda::Fleet& fleet, comm::CollectiveEngine& engine,
                            std::size_t count) {
  const int n = fleet.size();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<std::vector<float>> mine(nn, std::vector<float>(count));
  std::vector<std::vector<float>> want(nn, std::vector<float>(count));
  std::vector<float*> ptrs(nn), optrs(nn);
  for (std::size_t d = 0; d < nn; ++d) {
    for (std::size_t k = 0; k < count; ++k) {
      mine[d][k] = want[d][k] = fill_value(static_cast<int>(d), k);
    }
    ptrs[d] = mine[d].data();
    optrs[d] = want[d].data();
  }

  const std::vector<gpusim::SimTime> ready(nn, 0.0);
  const std::vector<gpusim::EventId> done =
      engine.reduce(ptrs, count, ready, /*numeric=*/true);
  ASSERT_EQ(done.size(), nn);
  fleet.synchronize_all();

  comm::reference_collective_allreduce(engine.program_for(count), optrs, count,
                                       engine.options().wire);
  for (std::size_t d = 0; d < nn; ++d) {
    for (std::size_t k = 0; k < count; ++k) {
      ASSERT_TRUE(same_bits(mine[d][k], want[d][k]))
          << comm::to_string(engine.algo_for(count)) << " n=" << n
          << " count=" << count << " device " << d << " elem " << k << ": got "
          << mine[d][k] << " want " << want[d][k];
    }
  }

  for (const gpusim::TransferRecord& r : engine.transfers()) {
    EXPECT_GT(r.bytes, 0u) << "zero-byte transfer " << r.id;
  }
  const glpfuzz::FleetTransferReport report =
      glpfuzz::check_fleet_transfers(engine.transfers(), fleet.links().props());
  EXPECT_TRUE(report.clean()) << report.to_string();
}

void expect_scheduled_matches_oracle(int n, LinkTopology topo,
                                     const CollectiveOptions& copts,
                                     std::size_t count) {
  scuda::Fleet fleet = scuda::Fleet::homogeneous(
      n, gpusim::DeviceTable::p100(), fleet_options(topo));
  comm::CollectiveEngine engine(fleet, copts);
  check_reduce_bit_exact(fleet, engine, count);
}

CollectiveOptions forced(CollectiveChoice c, WireFormat w = WireFormat::kFp32) {
  CollectiveOptions o;
  o.collective = c;
  o.wire = w;
  return o;
}

TEST(CollectiveOracle, RingScheduledBitExactAcrossCounts) {
  for (const int n : {2, 3, 4, 8}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{1000}}) {
      expect_scheduled_matches_oracle(n, LinkTopology::kNvlinkRing,
                                      forced(CollectiveChoice::kRing), count);
    }
  }
}

TEST(CollectiveOracle, TreeScheduledBitExactAcrossCounts) {
  for (const int n : {2, 3, 4, 8}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{1000}}) {
      expect_scheduled_matches_oracle(n, LinkTopology::kPcieHost,
                                      forced(CollectiveChoice::kTree), count);
    }
  }
}

TEST(CollectiveOracle, HierScheduledBitExactAcrossCounts) {
  for (const int n : {4, 6, 8, 9}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{5}, std::size_t{1000}}) {
      expect_scheduled_matches_oracle(n, LinkTopology::kPcieHost,
                                      forced(CollectiveChoice::kHier), count);
    }
  }
}

TEST(CollectiveOracle, PipelinedProgramsStayBitExact) {
  // 64-byte pieces split a 100-element bucket into many overlapping
  // sub-programs; the oracle replays the identical merged program.
  for (const CollectiveChoice c : {CollectiveChoice::kRing,
                                   CollectiveChoice::kTree,
                                   CollectiveChoice::kHier}) {
    CollectiveOptions o = forced(c);
    o.pipeline_chunk_bytes = 64;
    expect_scheduled_matches_oracle(4, LinkTopology::kPcieHost, o, 100);
  }
}

TEST(CollectiveOracle, CountSmallerThanDevicesHasNoEmptySegments) {
  // 3 elements across 8 devices: most ring segments are empty and must
  // simply not be emitted, not sent as zero-byte messages.
  expect_scheduled_matches_oracle(8, LinkTopology::kNvlinkRing,
                                  forced(CollectiveChoice::kRing), 3);
  expect_scheduled_matches_oracle(8, LinkTopology::kPcieHost,
                                  forced(CollectiveChoice::kHier), 3);
}

TEST(CollectiveOracle, Fp16WireBitExactAgainstFp16Oracle) {
  for (const CollectiveChoice c : {CollectiveChoice::kRing,
                                   CollectiveChoice::kTree,
                                   CollectiveChoice::kHier}) {
    expect_scheduled_matches_oracle(4, LinkTopology::kPcieHost,
                                    forced(c, WireFormat::kFp16), 1000);
  }
  expect_scheduled_matches_oracle(3, LinkTopology::kNvlinkRing,
                                  forced(CollectiveChoice::kRing,
                                         WireFormat::kFp16),
                                  257);
}

TEST(CollectiveEngine, ZeroCountBucketIssuesNoTransfers) {
  scuda::Fleet fleet = scuda::Fleet::homogeneous(
      4, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kNvlinkRing));
  comm::CollectiveEngine engine(fleet, {});
  std::vector<float*> ptrs(4, nullptr);
  const std::vector<gpusim::SimTime> ready(4, 0.0);
  const auto done = engine.reduce(ptrs, 0, ready, /*numeric=*/true);
  EXPECT_EQ(done.size(), 4u);
  fleet.synchronize_all();
  EXPECT_TRUE(engine.transfers().empty());
}

TEST(CollectiveEngine, SingleDeviceFleetIsIdle) {
  scuda::Fleet fleet =
      scuda::Fleet::homogeneous(1, gpusim::DeviceTable::p100(), {});
  comm::CollectiveEngine engine(fleet, {});
  std::vector<float> grad(64);
  for (std::size_t k = 0; k < grad.size(); ++k) grad[k] = fill_value(0, k);
  const std::vector<float> before = grad;
  std::vector<float*> ptrs{grad.data()};
  const auto done =
      engine.reduce(ptrs, grad.size(), {0.0}, /*numeric=*/true);
  EXPECT_EQ(done.size(), 1u);
  fleet.synchronize_all();
  EXPECT_TRUE(engine.transfers().empty());
  for (std::size_t k = 0; k < grad.size(); ++k) {
    EXPECT_TRUE(same_bits(grad[k], before[k])) << k;
  }
}

TEST(CollectiveEngine, FaultedLaneCreationFallsBackPerAlgorithm) {
  for (const CollectiveChoice c : {CollectiveChoice::kRing,
                                   CollectiveChoice::kTree,
                                   CollectiveChoice::kHier}) {
    scuda::Fleet fleet = scuda::Fleet::homogeneous(
        4, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kPcieHost));
    scuda::FaultConfig faults;
    faults.stream_create_failure_rate = 1.0;
    faults.seed = 7;
    fleet.device(1).faults().arm(faults);
    comm::CollectiveEngine engine(fleet, forced(c));
    fleet.device(1).faults().arm({});  // creation-time faults only
    EXPECT_TRUE(engine.fallback(1)) << comm::to_string(c);
    EXPECT_FALSE(engine.fallback(0));
    check_reduce_bit_exact(fleet, engine, 321);
  }
}

TEST(CollectiveCostModel, FeasibilityFollowsTopology) {
  EXPECT_TRUE(CollectiveCostModel::feasible(CollectiveAlgo::kRing, 4,
                                            LinkTopology::kNvlinkRing));
  EXPECT_FALSE(CollectiveCostModel::feasible(CollectiveAlgo::kTree, 4,
                                             LinkTopology::kNvlinkRing));
  EXPECT_FALSE(CollectiveCostModel::feasible(CollectiveAlgo::kHier, 8,
                                             LinkTopology::kNvlinkRing));
  EXPECT_TRUE(CollectiveCostModel::feasible(CollectiveAlgo::kTree, 4,
                                            LinkTopology::kPcieHost));
  EXPECT_TRUE(CollectiveCostModel::feasible(CollectiveAlgo::kHier, 8,
                                            LinkTopology::kPcieHost));
  // hier needs a composite count >= 4.
  EXPECT_FALSE(CollectiveCostModel::feasible(CollectiveAlgo::kHier, 5,
                                             LinkTopology::kPcieHost));
  EXPECT_FALSE(CollectiveCostModel::feasible(CollectiveAlgo::kHier, 2,
                                             LinkTopology::kPcieHost));

  EXPECT_EQ(CollectiveCostModel::hier_group(4), 2);
  EXPECT_EQ(CollectiveCostModel::hier_group(6), 2);
  EXPECT_EQ(CollectiveCostModel::hier_group(8), 2);
  EXPECT_EQ(CollectiveCostModel::hier_group(9), 3);
  EXPECT_EQ(CollectiveCostModel::hier_group(15), 3);
  EXPECT_EQ(CollectiveCostModel::hier_group(5), 0);
  EXPECT_EQ(CollectiveCostModel::hier_group(7), 0);
  EXPECT_EQ(CollectiveCostModel::hier_group(3), 0);
}

TEST(CollectiveCostModel, TreeBeatsRingOnSharedPcieChannel) {
  const CollectiveCostModel cost{4, LinkTopology::kPcieHost,
                                 gpusim::LinkProps::pcie()};
  const std::size_t count = 64 * 1024;
  EXPECT_LT(cost.predict_ns(CollectiveAlgo::kTree, count, WireFormat::kFp32),
            cost.predict_ns(CollectiveAlgo::kRing, count, WireFormat::kFp32));
  EXPECT_EQ(cost.choose(count, WireFormat::kFp32), CollectiveAlgo::kTree);

  const CollectiveCostModel cost8{8, LinkTopology::kPcieHost,
                                  gpusim::LinkProps::pcie()};
  EXPECT_LT(cost8.predict_ns(CollectiveAlgo::kHier, count, WireFormat::kFp32),
            cost8.predict_ns(CollectiveAlgo::kRing, count, WireFormat::kFp32));
}

TEST(CollectiveCostModel, AutoPicksRingOnNvlink) {
  scuda::Fleet fleet = scuda::Fleet::homogeneous(
      4, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kNvlinkRing));
  comm::CollectiveEngine engine(fleet, {});  // kAuto
  EXPECT_EQ(engine.algo_for(4096), CollectiveAlgo::kRing);

  scuda::Fleet pfleet = scuda::Fleet::homogeneous(
      4, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kPcieHost));
  comm::CollectiveEngine pengine(pfleet, {});
  EXPECT_NE(pengine.algo_for(4096), CollectiveAlgo::kRing);
}

TEST(CollectiveCostModel, InfeasibleExplicitChoiceDegradesToBestFeasible) {
  // tree forced on the NVLink ring: no non-neighbour channels, so the
  // plan degrades to the cost model's pick instead of CHECK-failing.
  scuda::Fleet fleet = scuda::Fleet::homogeneous(
      4, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kNvlinkRing));
  comm::CollectiveEngine engine(fleet, forced(CollectiveChoice::kTree));
  EXPECT_EQ(engine.algo_for(4096), CollectiveAlgo::kRing);
  // hier forced on a prime PCIe fleet: same degradation.
  scuda::Fleet p5 = scuda::Fleet::homogeneous(
      5, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kPcieHost));
  comm::CollectiveEngine e5(p5, forced(CollectiveChoice::kHier));
  EXPECT_NE(e5.algo_for(4096), CollectiveAlgo::kHier);
}

TEST(CollectiveOracle, SumOfOnesCoversEveryElementExactly) {
  // All-ones all-reduce must leave exactly n everywhere — a full
  // coverage check over non-divisible and tiny counts for every
  // algorithm and rank count.
  for (const CollectiveAlgo algo : {CollectiveAlgo::kRing,
                                    CollectiveAlgo::kTree,
                                    CollectiveAlgo::kHier}) {
    for (int n = 2; n <= 9; ++n) {
      if (algo == CollectiveAlgo::kHier &&
          CollectiveCostModel::hier_group(n) == 0) {
        continue;
      }
      for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                      std::size_t{5}, std::size_t{97}}) {
        const CollectiveProgram prog =
            comm::build_collective_program(algo, n, count);
        std::vector<std::vector<float>> grads(
            static_cast<std::size_t>(n), std::vector<float>(count, 1.0f));
        std::vector<float*> ptrs;
        for (auto& g : grads) ptrs.push_back(g.data());
        comm::reference_collective_allreduce(prog, ptrs, count,
                                             WireFormat::kFp32);
        for (int d = 0; d < n; ++d) {
          for (std::size_t k = 0; k < count; ++k) {
            ASSERT_EQ(grads[static_cast<std::size_t>(d)][k],
                      static_cast<float>(n))
                << comm::to_string(algo) << " n=" << n << " count=" << count
                << " d=" << d << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(Fp16Wire, RoundTripIsIdempotent) {
  const float samples[] = {0.0f,     -0.0f,   1.0f,      -2.5f,
                           3.14159f, 65504.f, 1.0e-5f,   -7.77e-4f,
                           123.456f, 1.0e8f,  -1.0e-30f, 0.333333f};
  for (const float x : samples) {
    const float q = comm::quantize_fp16(x);
    EXPECT_TRUE(same_bits(comm::quantize_fp16(q), q)) << x;
    EXPECT_TRUE(
        same_bits(comm::float16_to_float32(comm::float32_to_float16(q)), q))
        << x;
  }
}

TEST(Fp16Wire, LossTrajectoryStaysWithinTolerance) {
  // The fp16 convergence contract: same fleet case trained with fp32 and
  // fp16 wire formats stays on essentially the same loss trajectory.
  // Each run is independently validated bit-exact against its own wire
  // format's oracle by run_fleet_differential.
  const glpfuzz::FuzzCase c = glpfuzz::make_fleet_case(11);
  glpfuzz::FleetDiffOptions fp32_opts;
  fp32_opts.devices = 4;
  fp32_opts.topology = LinkTopology::kPcieHost;
  glpfuzz::FleetDiffOptions fp16_opts = fp32_opts;
  fp16_opts.collective.wire = WireFormat::kFp16;

  const glpfuzz::FleetDiffResult a = glpfuzz::run_fleet_differential(c, fp32_opts);
  const glpfuzz::FleetDiffResult b = glpfuzz::run_fleet_differential(c, fp16_opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  ASSERT_EQ(a.fleet_losses.size(), b.fleet_losses.size());
  ASSERT_FALSE(a.fleet_losses.empty());
  for (std::size_t i = 0; i < a.fleet_losses.size(); ++i) {
    const float fa = a.fleet_losses[i], fb = b.fleet_losses[i];
    EXPECT_LE(std::abs(fa - fb), 0.05f * std::max(1.0f, std::abs(fa)))
        << "iteration " << i << ": fp32 " << fa << " vs fp16 " << fb;
  }
}

TEST(CollectivePipelining, ChunkPipelineBeatsWholeBucketOnNvlink) {
  // Same bucket, same ring program shape; the pipelined run overlaps
  // wave k+1 of piece j with wave k of piece j+1 and must finish the
  // reduction strictly earlier in simulated time.
  const std::size_t count = std::size_t{1} << 20;  // 4 MiB of fp32
  auto makespan = [&](std::size_t pipeline_chunk_bytes) {
    scuda::Fleet fleet = scuda::Fleet::homogeneous(
        4, gpusim::DeviceTable::p100(),
        fleet_options(LinkTopology::kNvlinkRing));
    CollectiveOptions o = forced(CollectiveChoice::kRing);
    o.pipeline_chunk_bytes = pipeline_chunk_bytes;
    comm::CollectiveEngine engine(fleet, o);
    std::vector<float*> ptrs(4, nullptr);
    const std::vector<gpusim::SimTime> ready(4, 0.0);
    engine.reduce(ptrs, count, ready, /*numeric=*/false);
    fleet.synchronize_all();
    return fleet.max_device_now();
  };
  const double pipelined = makespan(256 << 10);
  const double whole = makespan(0);
  EXPECT_LT(pipelined, whole);
}

TEST(FleetTrace, MergedChromeTraceHasPerDeviceRowsAndPeerSpans) {
  scuda::Fleet fleet = scuda::Fleet::homogeneous(
      2, gpusim::DeviceTable::p100(), fleet_options(LinkTopology::kNvlinkRing));
  for (int d = 0; d < 2; ++d) {
    fleet.device(d).device().timeline().set_enabled(true);
  }
  comm::CollectiveEngine engine(fleet, forced(CollectiveChoice::kRing));
  std::vector<std::vector<float>> grads(2, std::vector<float>(256, 1.0f));
  std::vector<float*> ptrs{grads[0].data(), grads[1].data()};
  engine.reduce(ptrs, 256, {0.0, 0.0}, /*numeric=*/true);
  fleet.synchronize_all();

  const std::string trace = gpusim::to_chrome_trace_fleet(
      {&fleet.device(0).device().timeline(), &fleet.device(1).device().timeline()},
      {"device 0 (P100)", "device 1 (P100)"});
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("device 1 (P100)"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("memcpy peer->"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"memcpy_peer\""), std::string::npos);
}

}  // namespace
