#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"

namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  glp::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ReseedResetsSequence) {
  glp::Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, DifferentSeedsDiffer) {
  glp::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  glp::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  glp::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-2.5f, 7.25f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 7.25f);
  }
}

TEST(Rng, NextBelowIsInRangeAndCoversAll) {
  glp::Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  glp::Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScalesMeanAndStd) {
  glp::Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

// --- strings -------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = glp::split("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleDelims) {
  const auto parts = glp::split("a b\tc", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(glp::split("", ",").empty()); }

TEST(Strings, Trim) {
  EXPECT_EQ(glp::trim("  hello \t\n"), "hello");
  EXPECT_EQ(glp::trim("x"), "x");
  EXPECT_EQ(glp::trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(glp::starts_with("conv1/fwd/im2col", "conv1/fwd"));
  EXPECT_FALSE(glp::starts_with("conv1", "conv10"));
}

TEST(Strings, Strformat) {
  EXPECT_EQ(glp::strformat("%d-%s-%.1f", 3, "x", 2.5), "3-x-2.5");
  EXPECT_EQ(glp::strformat("%s", ""), "");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(glp::human_bytes(512), "512.0 B");
  EXPECT_EQ(glp::human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(glp::human_bytes(3u << 20), "3.0 MiB");
}

// --- check macros -----------------------------------------------------------

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(GLP_REQUIRE(false, "boom " << 42), glp::InvalidArgument);
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(GLP_CHECK(1 == 2), glp::InternalError);
}

TEST(Check, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(GLP_CHECK(true));
  EXPECT_NO_THROW(GLP_REQUIRE(true, "fine"));
}

TEST(Check, MessageContainsExpressionAndDetail) {
  try {
    GLP_REQUIRE(2 + 2 == 5, "math is broken: " << 5);
    FAIL() << "should have thrown";
  } catch (const glp::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("math is broken: 5"), std::string::npos);
  }
}

// --- parallel_for -------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  glp::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SmallRangeRunsInline) {
  int calls = 0;
  glp::parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  glp::parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, DeterministicSum) {
  // Static partitioning: per-partition sums combined in index order must
  // be identical across runs.
  const std::size_t n = 1 << 18;
  std::vector<double> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = std::sin(static_cast<double>(i));
  auto run = [&] {
    std::vector<double> out(n);
    glp::parallel_for(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = input[i] * 3.0 + 1.0;
        },
        1);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_EQ(run(), run());
}

TEST(ParallelFor, ManySequentialDispatches) {
  // Regression guard for pool wake/sleep races: thousands of short jobs.
  std::atomic<long> total{0};
  for (int round = 0; round < 2000; ++round) {
    glp::parallel_for(
        0, 4096,
        [&](std::size_t lo, std::size_t hi) {
          total.fetch_add(static_cast<long>(hi - lo), std::memory_order_relaxed);
        },
        1);
  }
  EXPECT_EQ(total.load(), 2000L * 4096L);
}

TEST(ParallelFor, ChunkBoundariesFollowGrain) {
  // The determinism contract: chunks start at multiples of the grain and
  // never exceed it, independent of the worker count.
  glp::set_parallel_workers(4);
  const std::size_t n = 10000, grain = 128;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  glp::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        const std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      grain);
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), (n + grain - 1) / grain);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, i * grain);
    EXPECT_EQ(chunks[i].second, std::min(n, (i + 1) * grain));
  }
  glp::set_parallel_workers(1);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // The pool is not reentrant: an inner parallel_for from a worker must
  // degrade to a single inline call instead of deadlocking.
  glp::set_parallel_workers(4);
  std::atomic<int> inner_calls{0};
  glp::parallel_for(
      0, 8,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          glp::parallel_for(
              0, 100000,
              [&](std::size_t ilo, std::size_t ihi) {
                EXPECT_EQ(ilo, 0u);
                EXPECT_EQ(ihi, 100000u);
                inner_calls.fetch_add(1, std::memory_order_relaxed);
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(inner_calls.load(), 8);
  glp::set_parallel_workers(1);
}

TEST(ParallelWorkers, AtLeastOne) { EXPECT_GE(glp::parallel_workers(), 1); }

TEST(ParallelWorkers, SetRoundTrips) {
  const int before = glp::parallel_workers();
  glp::set_parallel_workers(3);
  EXPECT_EQ(glp::parallel_workers(), 3);
  // The resized pool must actually execute work.
  std::atomic<long> total{0};
  glp::parallel_for(
      0, 4096,
      [&](std::size_t lo, std::size_t hi) {
        total.fetch_add(static_cast<long>(hi - lo), std::memory_order_relaxed);
      },
      1);
  EXPECT_EQ(total.load(), 4096L);
  glp::set_parallel_workers(0);  // clamps to 1
  EXPECT_EQ(glp::parallel_workers(), 1);
  glp::set_parallel_workers(before);
}

// --- timer ---------------------------------------------------------------------

TEST(WallTimer, MeasuresElapsedTime) {
  glp::WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.elapsed_us(), 0.0);
  EXPECT_GE(t.elapsed_ms() * 1000.0, t.elapsed_us() * 0.5);
}

TEST(WallTimer, ResetRestarts) {
  glp::WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double before = t.elapsed_us();
  t.reset();
  EXPECT_LE(t.elapsed_us(), before + 1e6);
}

// --- Flags (the shared glp4nn_* CLI parser) ----------------------------------

glp::Flags::Status parse_argv(glp::Flags& flags,
                              std::vector<const char*> argv,
                              std::ostringstream& out,
                              std::ostringstream& err) {
  argv.insert(argv.begin(), "prog");
  return flags.parse(static_cast<int>(argv.size()),
                     const_cast<char* const*>(argv.data()), out, err);
}

TEST(Flags, ParsesEveryKindAndBothValueForms) {
  bool sw = false;
  int i = 1;
  double d = 2.0;
  unsigned long long u = 3;
  std::string s = "default";
  glp::Flags flags("t", "test");
  flags.flag("switch", &sw, "a switch")
      .opt("int", &i, "an int")
      .opt("double", &d, "a double")
      .opt("u64", &u, "a u64")
      .opt("str", &s, "a string");

  std::ostringstream out, err;
  const auto st = parse_argv(
      flags, {"--switch", "--int", "42", "--double=2.5", "--u64", "9", "--str=x"},
      out, err);
  EXPECT_EQ(st, glp::Flags::Status::kOk);
  EXPECT_TRUE(sw);
  EXPECT_EQ(i, 42);
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(u, 9ull);
  EXPECT_EQ(s, "x");
  EXPECT_TRUE(err.str().empty());
}

TEST(Flags, UntouchedTargetsKeepTheirDefaults) {
  int i = 7;
  std::string s = "keep";
  glp::Flags flags("t", "test");
  flags.opt("int", &i, "an int").opt("str", &s, "a string");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags, {"--int", "8"}, out, err),
            glp::Flags::Status::kOk);
  EXPECT_EQ(i, 8);
  EXPECT_EQ(s, "keep");
}

TEST(Flags, HelpPrintsUsageWithDefaults) {
  int i = 123;
  glp::Flags flags("mytool", "does things");
  flags.opt("iters", &i, "iteration count");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags, {"--help"}, out, err),
            glp::Flags::Status::kHelp);
  EXPECT_NE(out.str().find("mytool"), std::string::npos);
  EXPECT_NE(out.str().find("--iters"), std::string::npos);
  EXPECT_NE(out.str().find("123"), std::string::npos);  // current default shown
  EXPECT_TRUE(err.str().empty());
}

TEST(Flags, RejectsUnknownFlagWithUsageOnStderr) {
  glp::Flags flags("t", "test");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags, {"--bogus"}, out, err),
            glp::Flags::Status::kError);
  EXPECT_NE(err.str().find("--bogus"), std::string::npos);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Flags, RejectsBadAndMissingValues) {
  int i = 0;
  glp::Flags flags("t", "test");
  flags.opt("int", &i, "an int");
  {
    std::ostringstream out, err;
    EXPECT_EQ(parse_argv(flags, {"--int", "12abc"}, out, err),
              glp::Flags::Status::kError);  // trailing junk: full-consume check
  }
  {
    std::ostringstream out, err;
    EXPECT_EQ(parse_argv(flags, {"--int"}, out, err),
              glp::Flags::Status::kError);  // value missing entirely
  }
}

TEST(Flags, ListOptionAppendsAcrossOccurrencesAndSplitsCommas) {
  std::vector<std::string> gens;
  glp::Flags flags("t", "test");
  flags.opt_list("device-gen", &gens, "device generations");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags,
                       {"--device-gen=P100,TitanXP", "--device-gen", "K40C"},
                       out, err),
            glp::Flags::Status::kOk);
  EXPECT_EQ(gens, (std::vector<std::string>{"P100", "TitanXP", "K40C"}));
}

TEST(Flags, ListOptionFirstOccurrenceDropsPreloadedDefaults) {
  std::vector<std::string> gens = {"default-a", "default-b"};
  glp::Flags flags("t", "test");
  flags.opt_list("device-gen", &gens, "device generations");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags, {"--device-gen=P100"}, out, err),
            glp::Flags::Status::kOk);
  EXPECT_EQ(gens, std::vector<std::string>{"P100"});
}

TEST(Flags, ListOptionKeepsDefaultsWhenAbsent) {
  std::vector<std::string> gens = {"keep"};
  int i = 0;
  glp::Flags flags("t", "test");
  flags.opt_list("device-gen", &gens, "device generations").opt("int", &i, "x");
  std::ostringstream out, err;
  EXPECT_EQ(parse_argv(flags, {"--int", "1"}, out, err),
            glp::Flags::Status::kOk);
  EXPECT_EQ(gens, std::vector<std::string>{"keep"});
}

TEST(Flags, ListOptionRejectsEmptyElements) {
  std::vector<std::string> gens;
  glp::Flags flags("t", "test");
  flags.opt_list("device-gen", &gens, "device generations");
  for (const char* bad : {"--device-gen=", "--device-gen=a,,b",
                          "--device-gen=a,", "--device-gen=,a"}) {
    std::vector<std::string> reset;
    gens = reset;
    std::ostringstream out, err;
    EXPECT_EQ(parse_argv(flags, {bad}, out, err), glp::Flags::Status::kError)
        << bad;
  }
}

}  // namespace
