// Bit-determinism of the host math kernels across thread counts.
//
// The GLP4NN convergence-invariance contract requires numerics to be
// independent of how work is scheduled. For the host kernels that means:
// the same input must produce bit-identical output whether the pool has
// 1, 2, or many workers (chunk and tile boundaries are functions of the
// problem shape only). These tests sweep glp::set_parallel_workers and
// compare results bitwise against the single-worker run.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "kernels/cpu_math.hpp"

namespace {

namespace cpu = kern::cpu;

const int kWorkerSweep[] = {1, 2, 4};

std::vector<float> random_vec(std::size_t n, unsigned seed) {
  glp::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.uniform(-1, 1);
  return v;
}

/// Run `fn` (which writes its output into the vector it returns) at each
/// worker count and require bitwise equality with the 1-worker result.
template <typename F>
void expect_bitwise_invariant(const F& fn) {
  const std::vector<float> baseline = [&] {
    glp::set_parallel_workers(1);
    return fn();
  }();
  for (int workers : kWorkerSweep) {
    glp::set_parallel_workers(workers);
    const std::vector<float> out = fn();
    ASSERT_EQ(out.size(), baseline.size());
    ASSERT_EQ(std::memcmp(out.data(), baseline.data(),
                          baseline.size() * sizeof(float)),
              0)
        << "outputs differ bitwise at " << workers << " workers";
  }
  glp::set_parallel_workers(1);
}

TEST(Determinism, GemmTiledParallel) {
  // Big enough to cross both the tiled and the parallel thresholds and
  // to span several MC x NC tiles (including ragged edge tiles).
  const int m = 200, n = 300, k = 150;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, 11);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, 12);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      expect_bitwise_invariant([&] {
        std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
        cpu::gemm(ta, tb, m, n, k, 1.0f, a.data(), ta ? m : k, b.data(),
                  tb ? k : n, 0.0f, c.data(), n);
        return c;
      });
    }
  }
}

TEST(Determinism, GemmSingleRowParallelizesOverColumns) {
  // The m=1 fully-connected shape: work is spread over column chunks, so
  // this exercises the skinny-m path's worker-count invariance.
  const int n = 4096, k = 300;
  const auto a = random_vec(k, 21);
  const auto b = random_vec(static_cast<std::size_t>(n) * k, 22);
  expect_bitwise_invariant([&] {
    std::vector<float> c(n, 0.0f);
    cpu::gemm(false, true, 1, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f,
              c.data(), n);
    return c;
  });
}

TEST(Determinism, GemmAccumulatingBeta) {
  const int m = 96, n = 160, k = 64;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, 31);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, 32);
  const auto c0 = random_vec(static_cast<std::size_t>(m) * n, 33);
  expect_bitwise_invariant([&] {
    std::vector<float> c = c0;
    cpu::gemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 0.75f,
              c.data(), n);
    return c;
  });
}

TEST(Determinism, Im2colAndCol2im) {
  const int c = 8, h = 33, w = 29, kh = 3, kw = 5, pad = 2, stride = 2;
  const int oh = cpu::conv_out_size(h, kh, pad, stride);
  const int ow = cpu::conv_out_size(w, kw, pad, stride);
  const auto im = random_vec(static_cast<std::size_t>(c) * h * w, 41);
  const std::size_t col_size = static_cast<std::size_t>(c) * kh * kw * oh * ow;

  expect_bitwise_invariant([&] {
    std::vector<float> col(col_size, -1.0f);
    cpu::im2col(im.data(), c, h, w, kh, kw, pad, pad, stride, stride,
                col.data());
    return col;
  });

  std::vector<float> col(col_size);
  glp::Rng rng(42);
  for (float& x : col) x = rng.uniform(-1, 1);
  expect_bitwise_invariant([&] {
    std::vector<float> grad(static_cast<std::size_t>(c) * h * w, 0.0f);
    cpu::col2im(col.data(), c, h, w, kh, kw, pad, pad, stride, stride,
                grad.data());
    return grad;
  });
}

TEST(Determinism, Pooling) {
  const int c = 24, h = 40, w = 40, kernel = 3, stride = 2, pad = 1;
  const int oh = cpu::conv_out_size(h, kernel, pad, stride);
  const int ow = cpu::conv_out_size(w, kernel, pad, stride);
  const auto in = random_vec(static_cast<std::size_t>(c) * h * w, 51);

  expect_bitwise_invariant([&] {
    std::vector<float> out(static_cast<std::size_t>(c) * oh * ow, 0.0f);
    std::vector<int> mask(out.size());
    cpu::max_pool_forward(in.data(), c, h, w, kernel, stride, pad, oh, ow,
                          out.data(), mask.data());
    return out;
  });
  expect_bitwise_invariant([&] {
    std::vector<float> out(static_cast<std::size_t>(c) * oh * ow, 0.0f);
    cpu::ave_pool_forward(in.data(), c, h, w, kernel, stride, pad, oh, ow,
                          out.data());
    return out;
  });
}

TEST(Determinism, ElementwiseAndReductions) {
  const std::size_t count = 1u << 17;  // crosses the elementwise grain
  const auto x = random_vec(count, 61);
  const auto dy = random_vec(count, 62);

  expect_bitwise_invariant([&] {
    std::vector<float> y(count);
    cpu::relu_forward(count, x.data(), y.data(), 0.1f);
    return y;
  });
  expect_bitwise_invariant([&] {
    std::vector<float> y(count);
    cpu::sigmoid_forward(count, x.data(), y.data());
    return y;
  });
  expect_bitwise_invariant([&] {
    std::vector<float> y = dy;
    cpu::axpy(count, 0.37f, x.data(), y.data());
    return y;
  });
  // Per-channel reductions (serial accumulation order inside one chunk).
  const int num = 4, channels = 32, spatial = 1024;
  expect_bitwise_invariant([&] {
    std::vector<float> mean(channels, 0.0f);
    cpu::channel_mean(num, channels, spatial, x.data(), mean.data());
    return mean;
  });
}

TEST(Determinism, SoftmaxRows) {
  const int rows = 512, classes = 257;
  const auto in = random_vec(static_cast<std::size_t>(rows) * classes, 71);
  expect_bitwise_invariant([&] {
    std::vector<float> prob(static_cast<std::size_t>(rows) * classes);
    cpu::softmax_forward(rows, classes, in.data(), prob.data());
    return prob;
  });
}

}  // namespace
