#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "kernels/cpu_math.hpp"

namespace {

namespace cpu = kern::cpu;

// Naive reference gemm for cross-checking.
void ref_gemm(bool ta, bool tb, int m, int n, int k, float alpha, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

struct GemmCase {
  bool ta, tb;
  int m, n, k;
  float alpha, beta;
};

class GemmVsReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsReference, Matches) {
  const GemmCase& gc = GetParam();
  glp::Rng rng(99);
  const int lda = gc.ta ? gc.m : gc.k;
  const int ldb = gc.tb ? gc.k : gc.n;
  std::vector<float> a(static_cast<std::size_t>(gc.ta ? gc.k : gc.m) * lda);
  std::vector<float> b(static_cast<std::size_t>(gc.tb ? gc.n : gc.k) * ldb);
  std::vector<float> c(static_cast<std::size_t>(gc.m) * gc.n);
  for (float& v : a) v = rng.uniform(-1, 1);
  for (float& v : b) v = rng.uniform(-1, 1);
  for (float& v : c) v = rng.uniform(-1, 1);
  std::vector<float> expect = c;

  cpu::gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), lda, b.data(),
            ldb, gc.beta, c.data(), gc.n);
  ref_gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), lda, b.data(),
           ldb, gc.beta, expect.data(), gc.n);

  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expect[i], 1e-3f * (std::abs(expect[i]) + 1.0f))
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsReference,
    ::testing::Values(GemmCase{false, false, 3, 4, 5, 1.0f, 0.0f},
                      GemmCase{false, true, 3, 4, 5, 1.0f, 0.0f},
                      GemmCase{true, false, 3, 4, 5, 1.0f, 0.0f},
                      GemmCase{true, true, 3, 4, 5, 1.0f, 0.0f},
                      GemmCase{false, false, 1, 1, 1, 2.0f, 3.0f},
                      GemmCase{false, false, 17, 23, 31, 0.5f, 1.0f},
                      GemmCase{false, true, 16, 2, 800, 1.0f, 1.0f},
                      GemmCase{true, false, 20, 576, 25, 1.0f, 0.0f},
                      GemmCase{false, false, 64, 1, 128, 1.0f, 1.0f},
                      GemmCase{false, false, 128, 130, 64, 1.0f, 0.0f},
                      GemmCase{false, false, 0, 4, 4, 1.0f, 0.0f},
                      GemmCase{false, false, 4, 4, 0, 1.0f, 0.5f}));

// Exhaustive sweep: every transpose combination crossed with edge and
// non-trivial sizes (0, 1, prime, microtile-sized) and the alpha/beta
// special cases the kernel dispatches on (0 skips the product / the C
// read, 1 skips the scale).
TEST(Gemm, ExhaustiveOracle) {
  const int sizes[] = {0, 1, 3, 17, 64};
  const float scales[] = {0.0f, 1.0f, 0.5f};
  glp::Rng rng(1234);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int m : sizes) {
        for (int n : sizes) {
          for (int k : sizes) {
            const int lda = std::max(1, ta ? m : k);
            const int ldb = std::max(1, tb ? k : n);
            const int ldc = std::max(1, n);
            std::vector<float> a(static_cast<std::size_t>(std::max(1, ta ? k : m)) * lda);
            std::vector<float> b(static_cast<std::size_t>(std::max(1, tb ? n : k)) * ldb);
            std::vector<float> c0(static_cast<std::size_t>(std::max(1, m)) * ldc);
            for (float& v : a) v = rng.uniform(-1, 1);
            for (float& v : b) v = rng.uniform(-1, 1);
            for (float& v : c0) v = rng.uniform(-1, 1);
            for (float alpha : scales) {
              for (float beta : scales) {
                std::vector<float> c = c0, expect = c0;
                cpu::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                          beta, c.data(), ldc);
                ref_gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                         beta, expect.data(), ldc);
                for (std::size_t i = 0; i < c.size(); ++i) {
                  ASSERT_NEAR(c[i], expect[i], 1e-3f * (std::abs(expect[i]) + 1.0f))
                      << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
                      << " k=" << k << " alpha=" << alpha << " beta=" << beta
                      << " at " << i;
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST(Gemm, ParallelPathMatchesSerial) {
  // Cross the parallel threshold and check determinism + correctness.
  glp::Rng rng(7);
  const int m = 128, n = 128, k = 64;
  std::vector<float> a(static_cast<std::size_t>(m) * k), b(static_cast<std::size_t>(k) * n);
  for (float& v : a) v = rng.uniform(-1, 1);
  for (float& v : b) v = rng.uniform(-1, 1);
  std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0f), c2 = c1;
  cpu::gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c1.data(), n);
  cpu::gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c2.data(), n);
  EXPECT_EQ(c1, c2);  // bitwise deterministic
  std::vector<float> expect(c1.size(), 0.0f);
  ref_gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, expect.data(), n);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    ASSERT_NEAR(c1[i], expect[i], 1e-3f);
  }
}

// --- vector ops -----------------------------------------------------------------

TEST(VectorOps, Axpy) {
  std::vector<float> x = {1, 2, 3}, y = {10, 20, 30};
  cpu::axpy(3, 2.0f, x.data(), y.data());
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(VectorOps, ScalAndFill) {
  std::vector<float> x = {1, 2, 3};
  cpu::scal(3, -1.0f, x.data());
  EXPECT_EQ(x, (std::vector<float>{-1, -2, -3}));
  cpu::fill(3, 7.0f, x.data());
  EXPECT_EQ(x, (std::vector<float>{7, 7, 7}));
}

TEST(VectorOps, SumAndSquaredDistance) {
  std::vector<float> x = {1, 2, 3}, y = {2, 2, 5};
  EXPECT_DOUBLE_EQ(cpu::sum(3, x.data()), 6.0);
  EXPECT_DOUBLE_EQ(cpu::squared_distance(3, x.data(), y.data()), 5.0);
}

TEST(VectorOps, ReduceLanesAccumulatesInOrder) {
  // dst += lane0 + lane1 in ascending lane order.
  std::vector<float> src = {1, 2, /*lane1*/ 10, 20};
  std::vector<float> dst = {100, 200};
  cpu::reduce_lanes(2, 2, src.data(), dst.data());
  EXPECT_EQ(dst, (std::vector<float>{111, 222}));
}

// --- im2col / col2im -------------------------------------------------------------

TEST(Im2col, IdentityFor1x1Kernel) {
  std::vector<float> im = {1, 2, 3, 4};
  std::vector<float> col(4, 0.0f);
  cpu::im2col(im.data(), 1, 2, 2, 1, 1, 0, 0, 1, 1, col.data());
  EXPECT_EQ(col, im);
}

TEST(Im2col, KnownSmallCase) {
  // 1x3x3 image, 2x2 kernel, stride 1, no pad → 4 rows x 4 cols.
  std::vector<float> im = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(16, -1.0f);
  cpu::im2col(im.data(), 1, 3, 3, 2, 2, 0, 0, 1, 1, col.data());
  // Row 0 = kernel offset (0,0): top-left of each window.
  EXPECT_EQ(std::vector<float>(col.begin(), col.begin() + 4),
            (std::vector<float>{1, 2, 4, 5}));
  // Row 3 = kernel offset (1,1): bottom-right of each window.
  EXPECT_EQ(std::vector<float>(col.begin() + 12, col.end()),
            (std::vector<float>{5, 6, 8, 9}));
}

TEST(Im2col, PaddingProducesZeros) {
  std::vector<float> im = {5};
  // 1x1 image, 3x3 kernel, pad 1 → 1 output pixel, 9 rows.
  std::vector<float> col(9, -1.0f);
  cpu::im2col(im.data(), 1, 1, 1, 3, 3, 1, 1, 1, 1, col.data());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(col[static_cast<std::size_t>(i)], i == 4 ? 5.0f : 0.0f);
  }
}

TEST(Col2im, AdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for any x, y — the defining property
  // of the gradient scatter.
  glp::Rng rng(11);
  const int C = 2, H = 5, W = 4, K = 3, pad = 1, stride = 2;
  const int out_h = cpu::conv_out_size(H, K, pad, stride);
  const int out_w = cpu::conv_out_size(W, K, pad, stride);
  const std::size_t im_size = static_cast<std::size_t>(C) * H * W;
  const std::size_t col_size = static_cast<std::size_t>(C) * K * K * out_h * out_w;

  std::vector<float> x(im_size), y(col_size), col(col_size, 0.0f), back(im_size, 0.0f);
  for (float& v : x) v = rng.uniform(-1, 1);
  for (float& v : y) v = rng.uniform(-1, 1);

  cpu::im2col(x.data(), C, H, W, K, K, pad, pad, stride, stride, col.data());
  cpu::col2im(y.data(), C, H, W, K, K, pad, pad, stride, stride, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (std::size_t i = 0; i < im_size; ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(ConvOutSize, MatchesFormula) {
  EXPECT_EQ(cpu::conv_out_size(227, 11, 0, 4), 55);  // CaffeNet conv1
  EXPECT_EQ(cpu::conv_out_size(32, 5, 2, 1), 32);    // CIFAR10 conv1
  EXPECT_EQ(cpu::conv_out_size(28, 5, 0, 1), 24);    // Siamese conv1
}

// --- bias --------------------------------------------------------------------------

TEST(AddBias, PerChannel) {
  std::vector<float> out = {0, 0, 0, 0};
  std::vector<float> bias = {1, 2};
  cpu::add_bias(2, 2, bias.data(), out.data());
  EXPECT_EQ(out, (std::vector<float>{1, 1, 2, 2}));
}

// --- pooling -----------------------------------------------------------------------

TEST(MaxPool, ForwardSelectsMaximaAndMask) {
  // 1x4x4 plane, 2x2 kernel stride 2.
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::vector<float> out(4);
  std::vector<int> mask(4);
  cpu::max_pool_forward(in.data(), 1, 4, 4, 2, 2, 0, 2, 2, out.data(), mask.data());
  EXPECT_EQ(out, (std::vector<float>{6, 8, 14, 16}));
  EXPECT_EQ(mask, (std::vector<int>{5, 7, 13, 15}));
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  std::vector<float> grad_out = {1, 2, 3, 4};
  std::vector<int> mask = {5, 7, 13, 15};
  std::vector<float> grad_in(16, 0.0f);
  cpu::max_pool_backward(grad_out.data(), mask.data(), 1, 2, 2, 4, 4,
                         grad_in.data());
  EXPECT_EQ(grad_in[5], 1.0f);
  EXPECT_EQ(grad_in[7], 2.0f);
  EXPECT_EQ(grad_in[13], 3.0f);
  EXPECT_EQ(grad_in[15], 4.0f);
  EXPECT_EQ(grad_in[0], 0.0f);
}

TEST(AvePool, ForwardAverages) {
  std::vector<float> in = {2, 4, 6, 8};
  std::vector<float> out(1);
  cpu::ave_pool_forward(in.data(), 1, 2, 2, 2, 2, 0, 1, 1, out.data());
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(AvePool, BackwardSpreadsEvenly) {
  std::vector<float> grad_out = {4.0f};
  std::vector<float> grad_in(4, 0.0f);
  cpu::ave_pool_backward(grad_out.data(), 1, 2, 2, 2, 2, 0, 1, 1, grad_in.data());
  for (float g : grad_in) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(MaxPool, CeilModeWindowClamping) {
  // 3x3 plane, 2x2 kernel stride 2, ceil out = 2: last window clipped.
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> out(4);
  std::vector<int> mask(4);
  cpu::max_pool_forward(in.data(), 1, 3, 3, 2, 2, 0, 2, 2, out.data(), mask.data());
  EXPECT_EQ(out, (std::vector<float>{5, 6, 8, 9}));
}

// --- activations ---------------------------------------------------------------------

TEST(Relu, ForwardAndSlope) {
  std::vector<float> in = {-2, -1, 0, 1, 2};
  std::vector<float> out(5);
  cpu::relu_forward(5, in.data(), out.data(), 0.0f);
  EXPECT_EQ(out, (std::vector<float>{0, 0, 0, 1, 2}));
  cpu::relu_forward(5, in.data(), out.data(), 0.1f);
  EXPECT_FLOAT_EQ(out[0], -0.2f);
}

TEST(Relu, BackwardMasksBySign) {
  std::vector<float> in = {-1, 2}, og = {5, 7}, ig(2);
  cpu::relu_backward(2, in.data(), og.data(), ig.data(), 0.0f);
  EXPECT_EQ(ig, (std::vector<float>{0, 7}));
}

TEST(Sigmoid, ForwardValuesAndBackwardIdentity) {
  std::vector<float> in = {0.0f}, out(1);
  cpu::sigmoid_forward(1, in.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  std::vector<float> og = {1.0f}, ig(1);
  cpu::sigmoid_backward(1, out.data(), og.data(), ig.data());
  EXPECT_FLOAT_EQ(ig[0], 0.25f);  // y(1-y) at y=0.5
}

TEST(Tanh, ForwardBackward) {
  std::vector<float> in = {0.0f, 100.0f}, out(2);
  cpu::tanh_forward(2, in.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  std::vector<float> og = {2.0f, 2.0f}, ig(2);
  cpu::tanh_backward(2, out.data(), og.data(), ig.data());
  EXPECT_FLOAT_EQ(ig[0], 2.0f);
  EXPECT_NEAR(ig[1], 0.0f, 1e-5);
}

// --- LRN -----------------------------------------------------------------------------

TEST(Lrn, NormalisesAcrossChannels) {
  // 3 channels, 1 pixel, local_size 3, k=1: s_c = 1 + α/3 Σ x².
  std::vector<float> in = {1, 2, 3};
  std::vector<float> scale(3), out(3);
  cpu::lrn_forward(in.data(), 3, 1, 1, 3, 3.0f, 0.75f, 1.0f, scale.data(), out.data());
  EXPECT_NEAR(scale[0], 1.0f + 1.0f * (1 + 4), 1e-5);       // c=0 window {0,1}
  EXPECT_NEAR(scale[1], 1.0f + 1.0f * (1 + 4 + 9), 1e-5);   // full window
  EXPECT_NEAR(out[1], 2.0f * std::pow(15.0f, -0.75f), 1e-5);
}

TEST(Lrn, TrivialWhenAlphaZero) {
  std::vector<float> in = {1, 2, 3, 4};
  std::vector<float> scale(4), out(4);
  cpu::lrn_forward(in.data(), 2, 1, 2, 3, 0.0f, 0.75f, 1.0f, scale.data(), out.data());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)], in[static_cast<std::size_t>(i)]);
}

// --- softmax / loss --------------------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  glp::Rng rng(5);
  const int rows = 7, classes = 11;
  std::vector<float> in(static_cast<std::size_t>(rows) * classes), prob(in.size());
  for (float& v : in) v = rng.uniform(-5, 5);
  cpu::softmax_forward(rows, classes, in.data(), prob.data());
  for (int r = 0; r < rows; ++r) {
    double s = 0.0;
    for (int j = 0; j < classes; ++j) {
      const float p = prob[static_cast<std::size_t>(r) * classes + j];
      EXPECT_GT(p, 0.0f);
      s += p;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToRowShift) {
  std::vector<float> a = {1, 2, 3}, b = {101, 102, 103};
  std::vector<float> pa(3), pb(3);
  cpu::softmax_forward(1, 3, a.data(), pa.data());
  cpu::softmax_forward(1, 3, b.data(), pb.data());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(pa[static_cast<std::size_t>(i)], pb[static_cast<std::size_t>(i)], 1e-6);
}

TEST(SoftmaxLoss, PerfectPredictionNearZero) {
  std::vector<float> prob = {0.999f, 0.0005f, 0.0005f};
  std::vector<float> label = {0};
  EXPECT_NEAR(cpu::softmax_loss(1, 3, prob.data(), label.data()), 0.0f, 2e-3);
}

TEST(SoftmaxLoss, UniformIsLogClasses) {
  std::vector<float> prob(10, 0.1f);
  std::vector<float> label = {4};
  EXPECT_NEAR(cpu::softmax_loss(1, 10, prob.data(), label.data()),
              std::log(10.0f), 1e-5);
}

TEST(SoftmaxLoss, RejectsOutOfRangeLabel) {
  std::vector<float> prob = {0.5f, 0.5f};
  std::vector<float> label = {7};
  EXPECT_THROW(cpu::softmax_loss(1, 2, prob.data(), label.data()),
               glp::InvalidArgument);
}

TEST(SoftmaxLossBackward, GradientIsProbMinusOneHot) {
  std::vector<float> prob = {0.2f, 0.3f, 0.5f};
  std::vector<float> label = {2};
  std::vector<float> grad(3);
  cpu::softmax_loss_backward(1, 3, prob.data(), label.data(), 1.0f, grad.data());
  EXPECT_FLOAT_EQ(grad[0], 0.2f);
  EXPECT_FLOAT_EQ(grad[1], 0.3f);
  EXPECT_FLOAT_EQ(grad[2], -0.5f);
}

TEST(Accuracy, CountsArgmaxHits) {
  std::vector<float> scores = {0.9f, 0.1f, /*row1*/ 0.2f, 0.8f};
  std::vector<float> labels = {0, 0};
  EXPECT_FLOAT_EQ(cpu::accuracy(2, 2, scores.data(), labels.data()), 0.5f);
}

// --- dropout -----------------------------------------------------------------------------

TEST(Dropout, AppliesMaskAndScale) {
  std::vector<float> in = {1, 2, 3, 4}, mask = {1, 0, 1, 0}, out(4);
  cpu::dropout_forward(4, in.data(), mask.data(), 2.0f, out.data());
  EXPECT_EQ(out, (std::vector<float>{2, 0, 6, 0}));
}

}  // namespace
