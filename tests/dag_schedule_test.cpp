// DAG-schedule property tests (ISSUE 6): over the branchy fuzz corpus and
// hand-built nets,
//   * the op order NetDag issues is a valid topological order of its own
//     dependency DAG (forward and backward);
//   * no op's kernel ever starts before every producer op's kernel ended
//     on the recorded timeline (the event-wait protocol actually holds);
//   * fusion never crosses a DAG edge: a ReLU is absorbed as a GEMM
//     epilogue only when the producer is its sole dependency, and a
//     coalesced chain member depends only on its chain predecessor;
//   * the three-way DAG differential (DAG vs serial AND DAG vs chain-only)
//     passes on sampled corpus cases.

#include <gtest/gtest.h>

#include <vector>

#include "core/task_graph.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/net_dag.hpp"
#include "test_helpers.hpp"
#include "testing/differential_runner.hpp"
#include "testing/net_generator.hpp"
#include "testing/race_checker.hpp"

namespace {

std::vector<std::vector<int>> dep_lists(const std::vector<mc::NetDag::Op>& ops) {
  std::vector<std::vector<int>> deps;
  deps.reserve(ops.size());
  for (const mc::NetDag::Op& op : ops) deps.push_back(op.deps);
  return deps;
}

std::vector<int> identity_order(std::size_t n) {
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  return order;
}

std::vector<glpfuzz::ScheduledOp> to_checker_ops(
    const std::vector<mc::NetDag::ScheduledOp>& in) {
  std::vector<glpfuzz::ScheduledOp> out;
  out.reserve(in.size());
  for (const mc::NetDag::ScheduledOp& op : in) {
    out.push_back(glpfuzz::ScheduledOp{op.prefix, op.stream, op.deps});
  }
  return out;
}

glpfuzz::FuzzCase dag_case(std::uint64_t seed) {
  glpfuzz::NetGenOptions gen;
  gen.dag_corpus = true;
  return glpfuzz::make_case(seed, gen);
}

TEST(DagSchedule, IssueOrderIsTopologicalOverTheCorpus) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GLP_SCOPED_SEED(seed);
    const glpfuzz::FuzzCase c = dag_case(seed);
    glptest::GlpEnv glp(c.device, c.options);
    glp.ec.dag_schedule = true;
    mc::Net net(c.net, glp.ec);
    ASSERT_NE(net.dag(), nullptr);

    const auto& fwd = net.dag()->forward_ops();
    const auto& bwd = net.dag()->backward_ops();
    ASSERT_FALSE(fwd.empty());
    EXPECT_TRUE(glp4nn::is_topological_order(dep_lists(fwd),
                                             identity_order(fwd.size())));
    EXPECT_TRUE(glp4nn::is_topological_order(dep_lists(bwd),
                                             identity_order(bwd.size())));

    // Deps always reference earlier ops, so completing in issue order must
    // be a legal ReadySet walk, and no op can sit below its dependencies'
    // wavefront.
    glp4nn::ReadySet ready(dep_lists(fwd));
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      ASSERT_TRUE(ready.is_ready(static_cast<int>(i)));
      ready.complete(static_cast<int>(i));
    }
    EXPECT_TRUE(ready.all_complete());
    const std::vector<int> waves = glp4nn::wave_levels(dep_lists(fwd));
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      for (int d : fwd[i].deps) {
        EXPECT_LT(waves[static_cast<std::size_t>(d)], waves[i]);
      }
    }
  }
}

TEST(DagSchedule, FusionNeverCrossesADagEdge) {
  bool saw_epilogue = false, saw_chain = false;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GLP_SCOPED_SEED(seed);
    const glpfuzz::FuzzCase c = dag_case(seed);
    glptest::GlpEnv glp(c.device, c.options);
    glp.ec.dag_schedule = true;
    mc::Net net(c.net, glp.ec);
    ASSERT_NE(net.dag(), nullptr);

    const auto& ops = net.dag()->forward_ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const mc::NetDag::Op& op = ops[i];
      if (op.absorbed) {
        saw_epilogue = true;
        // An absorbed ReLU's ONLY dependency is the producing GEMM — any
        // other reader of the pre-activation blob would have added a WAR
        // edge and blocked the fusion.
        ASSERT_EQ(op.deps.size(), 1u) << op.name;
        EXPECT_EQ(op.deps[0], op.absorbed_into) << op.name;
        const mc::NetDag::Op& prod = ops[static_cast<std::size_t>(op.absorbed_into)];
        EXPECT_TRUE(prod.type == "Convolution" || prod.type == "InnerProduct")
            << prod.type;
        EXPECT_EQ(net.dag()->relu_epilogues().count(prod.name), 1u);
      }
      if (op.fused_head >= 0 && op.fused_head != static_cast<int>(i)) {
        saw_chain = true;
        // A coalesced chain member depends only on its immediate chain
        // predecessor; a cross-edge (another producer feeding into the
        // middle of the chain) would have broken the run.
        ASSERT_EQ(op.deps.size(), 1u) << op.name;
        EXPECT_EQ(op.deps[0], static_cast<int>(i) - 1) << op.name;
        EXPECT_EQ(ops[i - 1].fused_head, op.fused_head) << op.name;
      }
    }
  }
  // The corpus is built to trigger both mechanisms.
  EXPECT_TRUE(saw_epilogue);
  EXPECT_TRUE(saw_chain);
}

TEST(DagSchedule, PreActivationReaderBlocksEpilogueFusion) {
  // conv1's top is read by pool1 *before* relu1 rewrites it in place, so
  // relu1 carries a WAR edge on pool1 and must NOT be folded into conv1's
  // GEMM (the epilogue would destroy the pre-activation values pool1 reads
  // — with DAG overlap the two could even run concurrently).
  mc::NetSpec spec;
  spec.name = "preact_reader";
  auto add = [&](const char* type, const char* name,
                 std::vector<std::string> bottoms,
                 std::vector<std::string> tops) -> mc::LayerSpec& {
    mc::LayerSpec l;
    l.type = type;
    l.name = name;
    l.bottoms = std::move(bottoms);
    l.tops = std::move(tops);
    spec.layers.push_back(std::move(l));
    return spec.layers.back();
  };
  mc::LayerSpec& data = add("Data", "data", {}, {"data", "label"});
  data.params.dataset.name = "random";
  data.params.dataset.num_classes = 3;
  data.params.dataset.channels = 1;
  data.params.dataset.height = 8;
  data.params.dataset.width = 8;
  data.params.dataset.train_size = 32;
  data.params.batch_size = 4;
  mc::LayerSpec& conv = add("Convolution", "conv1", {"data"}, {"conv1"});
  conv.params.num_output = 4;
  conv.params.kernel_size = 3;
  conv.params.pad = 1;
  mc::LayerSpec& pool = add("Pooling", "pool1", {"conv1"}, {"pool1"});
  pool.params.pool = mc::PoolMethod::kMax;
  pool.params.kernel_size = 2;
  pool.params.stride = 2;
  add("ReLU", "relu1", {"conv1"}, {"conv1"});  // in-place, after pool1
  mc::LayerSpec& ip = add("InnerProduct", "ip1", {"conv1"}, {"ip1"});
  ip.params.num_output = 3;
  add("SoftmaxWithLoss", "loss", {"ip1", "label"}, {"loss"});

  glptest::GlpEnv glp;
  glp.ec.dag_schedule = true;
  mc::Net net(spec, glp.ec);
  ASSERT_NE(net.dag(), nullptr);

  EXPECT_EQ(net.dag()->relu_epilogues().count("conv1"), 0u);
  bool found_relu = false;
  for (const mc::NetDag::Op& op : net.dag()->forward_ops()) {
    if (op.name != "relu1") continue;
    found_relu = true;
    EXPECT_FALSE(op.absorbed);
    EXPECT_EQ(op.deps.size(), 2u);  // RAW on conv1 + WAR on pool1
  }
  EXPECT_TRUE(found_relu);

  // The blocked fusion must not change numerics either.
  net.forward();
  net.backward();
  glp.sync();
}

TEST(DagSchedule, NoOpLaunchesBeforeItsProducersOnTheTimeline) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GLP_SCOPED_SEED(seed);
    const glpfuzz::FuzzCase c = dag_case(seed);
    glptest::GlpEnv glp(c.device, c.options);
    glp.ec.dag_schedule = true;
    mc::Net net(c.net, glp.ec);
    ASSERT_NE(net.dag(), nullptr);

    // Warm-up pass so scope profiling + stream-count analysis settle,
    // then check one clean pass at a time on an emptied timeline.
    net.forward();
    net.backward();
    glp.sync();

    gpusim::Timeline& tl = glp.ctx.device().timeline();
    tl.set_enabled(true);
    tl.clear();
    net.forward();
    glp.sync();
    const glpfuzz::OpScheduleReport fwd = glpfuzz::check_op_schedule(
        tl, to_checker_ops(net.dag()->forward_schedule()));
    EXPECT_TRUE(fwd.clean()) << fwd.to_string();
    EXPECT_GT(fwd.ops_matched, 0u);
    EXPECT_GT(fwd.edges_checked, 0u);

    tl.clear();
    net.backward();
    glp.sync();
    const glpfuzz::OpScheduleReport bwd = glpfuzz::check_op_schedule(
        tl, to_checker_ops(net.dag()->backward_schedule()));
    EXPECT_TRUE(bwd.clean()) << bwd.to_string();
    EXPECT_GT(bwd.edges_checked, 0u);
  }
}

TEST(DagSchedule, InceptionBranchesOverlapOnAConcurrentDevice) {
  gpusim::DeviceProps device = gpusim::DeviceTable::p100();
  device.max_concurrent_kernels = 32;
  glp4nn::SchedulerOptions options;
  options.fixed_streams = 4;
  glptest::GlpEnv glp(device, options);
  glp.ec.dag_schedule = true;
  mc::Net net(mc::models::googlenet_tail(8), glp.ec);
  ASSERT_NE(net.dag(), nullptr);

  net.forward();
  net.backward();
  glp.sync();

  gpusim::Timeline& tl = glp.ctx.device().timeline();
  tl.set_enabled(true);
  tl.clear();
  net.forward();
  glp.sync();
  const glpfuzz::OpScheduleReport fwd = glpfuzz::check_op_schedule(
      tl, to_checker_ops(net.dag()->forward_schedule()));
  EXPECT_TRUE(fwd.clean()) << fwd.to_string();
  // The four inception branches are mutually independent; with four
  // streams at least two op spans must actually overlap.
  EXPECT_GE(fwd.peak_op_concurrency, 2);
}

TEST(DagSchedule, DagDifferentialPassesOnSampledCorpus) {
  glpfuzz::DiffOptions diff;
  diff.faults.launch_failure_rate = 0.05;  // exercise fault reroutes too
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    GLP_SCOPED_SEED(seed);
    const glpfuzz::DagDiffResult r =
        glpfuzz::run_dag_differential(dag_case(seed), diff);
    EXPECT_TRUE(r.ok) << r.failure;
    EXPECT_TRUE(r.forward_schedule.clean()) << r.forward_schedule.to_string();
    EXPECT_TRUE(r.backward_schedule.clean()) << r.backward_schedule.to_string();
  }
}

}  // namespace
