#include <gtest/gtest.h>

#include "gpusim/device_props.hpp"

namespace {

using gpusim::Architecture;
using gpusim::DeviceProps;
using gpusim::DeviceTable;

// --- Table 3: hardware profile of the three evaluation GPUs -------------------

TEST(Table3, K40C) {
  const DeviceProps d = DeviceTable::k40c();
  EXPECT_EQ(d.arch, Architecture::kKepler);
  EXPECT_EQ(d.sm_count, 15);
  EXPECT_EQ(d.cores_per_sm, 192);  // 15 x 192 cores
  EXPECT_NEAR(d.clock_ghz, 0.745, 1e-9);
  EXPECT_EQ(d.mem_bytes, 12ull << 30);
  EXPECT_NEAR(d.mem_bandwidth_gbs, 288.0, 1e-9);
  EXPECT_EQ(d.shared_mem_per_sm, 48u * 1024u);
}

TEST(Table3, P100) {
  const DeviceProps d = DeviceTable::p100();
  EXPECT_EQ(d.arch, Architecture::kPascal);
  EXPECT_EQ(d.sm_count, 56);
  EXPECT_EQ(d.cores_per_sm, 64);  // 56 x 64 cores
  EXPECT_NEAR(d.clock_ghz, 1.189, 1e-9);
  EXPECT_NEAR(d.mem_bandwidth_gbs, 549.0, 1e-9);
  EXPECT_EQ(d.shared_mem_per_sm, 64u * 1024u);
}

TEST(Table3, TitanXP) {
  const DeviceProps d = DeviceTable::titan_xp();
  EXPECT_EQ(d.arch, Architecture::kPascal);
  EXPECT_EQ(d.sm_count, 30);
  EXPECT_EQ(d.cores_per_sm, 128);  // 30 x 128 cores
  EXPECT_NEAR(d.clock_ghz, 1.455, 1e-9);
  EXPECT_NEAR(d.mem_bandwidth_gbs, 547.7, 1e-9);
  EXPECT_EQ(d.shared_mem_per_sm, 48u * 1024u);
}

// --- Table 1: architecture feature overview -----------------------------------

struct Table1Row {
  const char* name;
  bool streams;
  bool dynamic_parallelism;
  int max_concurrent;
  bool unified_memory;
  bool tensor_cores;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, FeatureFlagsMatchPaper) {
  const Table1Row& row = GetParam();
  const auto props = DeviceTable::by_name(row.name);
  ASSERT_TRUE(props.has_value()) << row.name;
  EXPECT_EQ(props->supports_streams, row.streams);
  EXPECT_EQ(props->dynamic_parallelism, row.dynamic_parallelism);
  EXPECT_EQ(props->max_concurrent_kernels, row.max_concurrent);
  EXPECT_EQ(props->unified_memory, row.unified_memory);
  EXPECT_EQ(props->tensor_cores, row.tensor_cores);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1,
    ::testing::Values(Table1Row{"Fermi", true, false, 16, false, false},
                      Table1Row{"Kepler", true, true, 32, false, false},
                      Table1Row{"Maxwell", true, true, 16, false, false},
                      Table1Row{"Pascal", true, true, 128, true, false},
                      Table1Row{"Volta", true, true, 128, true, true}),
    [](const auto& info) { return std::string(info.param.name); });

// --- derived quantities ---------------------------------------------------------

class AllDevices : public ::testing::TestWithParam<DeviceProps> {};

TEST_P(AllDevices, DerivedQuantitiesConsistent) {
  const DeviceProps& d = GetParam();
  EXPECT_EQ(d.total_lanes(), d.sm_count * d.cores_per_sm);
  EXPECT_NEAR(d.peak_flops_per_ns(),
              d.total_lanes() * d.clock_ghz * 2.0, 1e-9);
  EXPECT_EQ(d.max_warps_per_sm(), d.max_threads_per_sm / d.warp_size);
  EXPECT_EQ(d.warp_size, 32);
  EXPECT_GT(d.kernel_launch_overhead_us, 0.0);
  EXPECT_GT(d.pcie_bandwidth_gbs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Catalogue, AllDevices,
                         ::testing::ValuesIn(DeviceTable::all()),
                         [](const auto& info) { return info.param.name; });

// --- lookup ----------------------------------------------------------------------

TEST(DeviceLookup, CaseAndSeparatorInsensitive) {
  EXPECT_TRUE(DeviceTable::by_name("k40c").has_value());
  EXPECT_TRUE(DeviceTable::by_name("K40C").has_value());
  EXPECT_TRUE(DeviceTable::by_name("Titan XP").has_value());
  EXPECT_TRUE(DeviceTable::by_name("titan_xp").has_value());
  EXPECT_TRUE(DeviceTable::by_name("p100").has_value());
}

TEST(DeviceLookup, UnknownReturnsNullopt) {
  EXPECT_FALSE(DeviceTable::by_name("h100").has_value());
  EXPECT_FALSE(DeviceTable::by_name("").has_value());
}

TEST(DeviceLookup, EvaluationGpusFirstInCatalogue) {
  const auto all = DeviceTable::all();
  ASSERT_GE(all.size(), 3u);
  EXPECT_EQ(all[0].name, "K40C");
  EXPECT_EQ(all[1].name, "P100");
  EXPECT_EQ(all[2].name, "TitanXP");
}

TEST(ArchitectureNames, RoundTrip) {
  EXPECT_STREQ(gpusim::to_string(Architecture::kKepler), "Kepler");
  EXPECT_STREQ(gpusim::to_string(Architecture::kVolta), "Volta");
}

}  // namespace
