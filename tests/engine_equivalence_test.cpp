// Golden event-for-event equivalence suite for the engine hot-path
// overhaul: the optimized SimDevice must be indistinguishable from the
// ReferenceEngine seam — identical kernel/copy records (every timestamp
// bit-for-bit), identical training results, identical serving replays —
// on fuzzed programs, fault-injected programs, and targeted regressions
// for the incremental structures (admission index, residency memo,
// release horizon).

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/engine.hpp"
#include "gpusim/timeline.hpp"
#include "testing/differential_runner.hpp"
#include "testing/net_generator.hpp"
#include "testing/serving_differential.hpp"

namespace {

using gpusim::EngineKind;

// --- full-stack differentials -----------------------------------------------

TEST(EngineEquivalence, FuzzCorpusSubsetBitExact) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const glpfuzz::FuzzCase c = glpfuzz::make_case(seed, {});
    const glpfuzz::EngineDiffResult r = glpfuzz::run_engine_differential(c);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    EXPECT_GT(r.kernels_compared, 0u) << "seed " << seed;
  }
}

TEST(EngineEquivalence, FaultedCasesBitExact) {
  glpfuzz::DiffOptions opts;
  opts.faults.launch_failure_rate = 0.05;
  opts.faults.stream_create_failure_rate = 0.02;
  for (std::uint64_t seed = 40; seed <= 45; ++seed) {
    const glpfuzz::FuzzCase c = glpfuzz::make_case(seed, {});
    const glpfuzz::EngineDiffResult r = glpfuzz::run_engine_differential(c, opts);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

TEST(EngineEquivalence, ServingReplaysBitExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const glpfuzz::ServeCase c = glpfuzz::make_serving_case(seed);
    const glpfuzz::ServeEngineDiffResult r =
        glpfuzz::run_serving_engine_differential(c);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    EXPECT_GT(r.kernels_compared, 0u) << "seed " << seed;
  }
}

// --- direct-API programs -----------------------------------------------------

gpusim::LaunchConfig cfg(unsigned grid, unsigned block, int regs = 32,
                         std::size_t smem = 0) {
  gpusim::LaunchConfig c;
  c.grid = {grid, 1, 1};
  c.block = {block, 1, 1};
  c.regs_per_thread = regs;
  c.smem_static_bytes = smem;
  return c;
}

gpusim::KernelCost cost(double flops) {
  gpusim::KernelCost c;
  c.flops = flops;
  c.bytes = flops / 16.0;
  return c;
}

/// Drive both engines with the same deterministic pseudo-random program
/// and require bit-identical timelines.
void expect_program_equivalent(
    const std::function<void(gpusim::DeviceEngine&)>& program) {
  gpusim::Timeline timelines[2];
  const EngineKind kinds[2] = {EngineKind::kOptimized, EngineKind::kReference};
  for (int i = 0; i < 2; ++i) {
    auto dev = gpusim::make_device_engine(gpusim::DeviceTable::k40c(), kinds[i]);
    dev->timeline().set_enabled(true);
    program(*dev);
    dev->synchronize();
    timelines[i] = dev->timeline();
  }
  EXPECT_EQ(glpfuzz::compare_timelines(timelines[0], timelines[1]), "");
  EXPECT_GT(timelines[0].kernels().size(), 0u);
}

TEST(EngineEquivalence, RandomDirectApiProgram) {
  expect_program_equivalent([](gpusim::DeviceEngine& dev) {
    // xorshift so the op mix is machine-independent.
    std::uint64_t state = 0x243f6a8885a308d3ull;
    const auto rnd = [&state](std::uint64_t bound) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state % bound;
    };
    std::vector<gpusim::StreamId> streams{gpusim::kDefaultStream};
    for (int s = 0; s < 5; ++s) {
      streams.push_back(dev.create_stream(static_cast<int>(rnd(3))));
    }
    std::vector<gpusim::EventId> events;
    for (int op = 0; op < 400; ++op) {
      const gpusim::StreamId s = streams[rnd(streams.size())];
      switch (rnd(6)) {
        case 0:
        case 1:
        case 2:
          dev.launch_kernel(s, "k", cfg(8 + rnd(64), 64u << rnd(3)),
                            cost(1e5 + 1e4 * rnd(50)), {});
          break;
        case 3:
          dev.memcpy_async(s, 1024 + rnd(1 << 16), rnd(2) == 0, {});
          break;
        case 4:
          events.push_back(dev.record_event(s));
          break;
        default:
          if (!events.empty()) {
            dev.wait_event(s, events[rnd(events.size())]);
          }
          break;
      }
      if (rnd(50) == 0) dev.synchronize();
      if (rnd(40) == 0 && !events.empty()) {
        dev.synchronize_event(events[rnd(events.size())]);
      }
    }
  });
}

// Regression: several streams sharing one priority level. The reference
// drains by std::map order refined by a stable_sort on priority; the
// optimized engine must reproduce that (priority desc, id asc) order from
// its persistent admission index, including the equal-priority ties.
TEST(EngineEquivalence, AdmissionOrderTiesUnderEqualPriorities) {
  expect_program_equivalent([](gpusim::DeviceEngine& dev) {
    std::vector<gpusim::StreamId> low, high;
    for (int s = 0; s < 4; ++s) low.push_back(dev.create_stream(0));
    for (int s = 0; s < 4; ++s) high.push_back(dev.create_stream(1));
    // More kernels than the device can hold resident: admission order
    // decides which queue wins each freed slot, so any order divergence
    // changes the timeline.
    for (int round = 0; round < 30; ++round) {
      for (const gpusim::StreamId s : low) {
        dev.launch_kernel(s, "low", cfg(32, 128), cost(5e5), {});
      }
      for (const gpusim::StreamId s : high) {
        dev.launch_kernel(s, "high", cfg(32, 128), cost(5e5), {});
      }
    }
    dev.synchronize();
    // Interleave creation so the index must insert between existing
    // priority groups, not just append.
    const gpusim::StreamId mid = dev.create_stream(1);
    const gpusim::StreamId late_low = dev.create_stream(0);
    for (int round = 0; round < 10; ++round) {
      dev.launch_kernel(mid, "mid", cfg(16, 128), cost(3e5), {});
      dev.launch_kernel(late_low, "late", cfg(16, 128), cost(3e5), {});
      dev.launch_kernel(low[0], "low0", cfg(16, 128), cost(3e5), {});
    }
  });
}

// Regression: stream destruction mid-program. The optimized engine's
// admission index and release horizon must drop the stream, and the
// residency-rate memo must keep answering correctly for resident sets
// formed before and after the destroy.
TEST(EngineEquivalence, StreamDestroyInvalidation) {
  expect_program_equivalent([](gpusim::DeviceEngine& dev) {
    for (int wave = 0; wave < 4; ++wave) {
      std::vector<gpusim::StreamId> pool;
      for (int s = 0; s < 3; ++s) pool.push_back(dev.create_stream(s));
      for (int round = 0; round < 8; ++round) {
        for (const gpusim::StreamId s : pool) {
          // Same configs each wave: the rate memo sees repeat signatures
          // across destroys and must replay identical rates.
          dev.launch_kernel(s, "wave", cfg(24, 256, 40, 4096), cost(4e5), {});
        }
      }
      // Destroy one stream while its siblings still hold queued work.
      dev.destroy_stream(pool[1]);
      for (int round = 0; round < 4; ++round) {
        dev.launch_kernel(pool[0], "tail", cfg(24, 256, 40, 4096), cost(4e5), {});
      }
      dev.synchronize();
      dev.destroy_stream(pool[0]);
      dev.destroy_stream(pool[2]);
    }
  });
}

// Regression: host callbacks that create streams and submit work while
// the engine is mid-drain (the reason the drain order is snapshotted).
TEST(EngineEquivalence, HostCallbackReentrancy) {
  expect_program_equivalent([](gpusim::DeviceEngine& dev) {
    const gpusim::StreamId s1 = dev.create_stream(1);
    for (int i = 0; i < 6; ++i) {
      dev.launch_kernel(s1, "pre", cfg(16, 128), cost(2e5), {});
      gpusim::DeviceEngine* d = &dev;
      dev.host_callback(s1, [d] {
        const gpusim::StreamId fresh = d->create_stream(2);
        d->launch_kernel(fresh, "from_cb", cfg(8, 64), cost(1e5), {});
        d->launch_kernel(gpusim::kDefaultStream, "cb_default", cfg(8, 64),
                         cost(1e5), {});
      });
    }
  });
}

// Events recorded and waited across streams, with wait ops queued before
// the record drains (release horizon + event table interplay).
TEST(EngineEquivalence, CrossStreamEventChains) {
  expect_program_equivalent([](gpusim::DeviceEngine& dev) {
    const gpusim::StreamId a = dev.create_stream(0);
    const gpusim::StreamId b = dev.create_stream(0);
    for (int i = 0; i < 20; ++i) {
      dev.launch_kernel(a, "producer", cfg(32, 256), cost(8e5), {});
      const gpusim::EventId ev = dev.record_event(a);
      dev.wait_event(b, ev);
      dev.launch_kernel(b, "consumer", cfg(32, 256), cost(8e5), {});
      const gpusim::EventId back = dev.record_event(b);
      dev.wait_event(a, back);
      if (i % 5 == 0) {
        EXPECT_EQ(dev.event_complete(ev), dev.event_complete(ev));
        dev.synchronize_event(ev);
      }
    }
  });
}

// --- timeline ring (bounded growth satellite) --------------------------------

TEST(TimelineRing, DropsOldestAndStaysChronological) {
  gpusim::Timeline tl;
  tl.set_enabled(true);
  tl.set_max_records(4);
  for (int i = 0; i < 10; ++i) {
    gpusim::KernelRecord r;
    r.correlation_id = static_cast<std::uint64_t>(i);
    r.end_ns = 100.0 * i;
    tl.add_kernel(r);
  }
  ASSERT_EQ(tl.kernels().size(), 4u);
  EXPECT_EQ(tl.dropped_kernels(), 6u);
  EXPECT_EQ(tl.dropped_records(), 6u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tl.kernels()[i].correlation_id, 6u + i) << i;
  }
}

TEST(TimelineRing, UnboundedByDefaultAndClearResets) {
  gpusim::Timeline tl;
  tl.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    gpusim::CopyRecord r;
    r.correlation_id = static_cast<std::uint64_t>(i);
    tl.add_copy(r);
  }
  EXPECT_EQ(tl.copies().size(), 100u);
  EXPECT_EQ(tl.dropped_records(), 0u);
  tl.set_max_records(10);
  EXPECT_EQ(tl.copies().size(), 10u);
  EXPECT_EQ(tl.copies().front().correlation_id, 90u);
  tl.clear();
  EXPECT_EQ(tl.copies().size(), 0u);
  EXPECT_EQ(tl.dropped_records(), 0u);
}

TEST(TimelineRing, EngineRunsWithBoundedTimeline) {
  auto dev = gpusim::make_device_engine(gpusim::DeviceTable::k40c(),
                                        EngineKind::kOptimized);
  dev->timeline().set_enabled(true);
  dev->timeline().set_max_records(8);
  const gpusim::StreamId s = dev->create_stream(0);
  for (int i = 0; i < 32; ++i) {
    dev->launch_kernel(s, "ring", cfg(8, 64), cost(1e5), {});
  }
  dev->synchronize();
  EXPECT_EQ(dev->timeline().kernels().size(), 8u);
  EXPECT_EQ(dev->timeline().dropped_kernels(), 24u);
  // The survivors are the most recent completions, in order.
  for (std::size_t i = 1; i < dev->timeline().kernels().size(); ++i) {
    EXPECT_LE(dev->timeline().kernels()[i - 1].end_ns,
              dev->timeline().kernels()[i].end_ns);
  }
}

}  // namespace
