// Property tests of the GPU simulator: random op streams must always
// respect the CUDA ordering rules (stream FIFO, event edges, legacy
// default-stream barriers), conserve resources in the timeline, and be
// deterministic.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include <map>

#include "gpusim/engine.hpp"

namespace {

using gpusim::kDefaultStream;
using gpusim::SimDevice;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  return c;
}

struct OpLog {
  int id;
  gpusim::StreamId stream;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, OrderingRulesAlwaysHold) {
  glp::Rng rng(GetParam());
  const auto devices = gpusim::DeviceTable::all();
  SimDevice dev(devices[rng.next_below(devices.size())]);

  std::vector<gpusim::StreamId> streams = {kDefaultStream};
  const int extra = 1 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < extra; ++i) streams.push_back(dev.create_stream());

  // Build a random program and record, per op, the constraints that must
  // hold on the execution order.
  struct Submitted {
    int id;
    gpusim::StreamId stream;
    bool is_default;
  };
  std::vector<Submitted> program;
  std::vector<std::pair<int, int>> must_precede;  // (earlier id, later id)
  std::map<gpusim::StreamId, int> last_in_stream;
  std::map<int, gpusim::EventId> events;  // id of op the event follows
  int last_default = -1;

  std::vector<int> execution;  // filled at sim time by the functors

  const int n_ops = 10 + static_cast<int>(rng.next_below(40));
  for (int id = 0; id < n_ops; ++id) {
    const gpusim::StreamId stream =
        streams[rng.next_below(streams.size())];
    const bool is_default = stream == kDefaultStream;

    // Occasionally make this op wait for an earlier op's event.
    if (!events.empty() && rng.next_below(4) == 0) {
      auto it = events.begin();
      std::advance(it, static_cast<long>(rng.next_below(events.size())));
      dev.wait_event(stream, it->second);
      must_precede.emplace_back(it->first, id);
    }

    dev.launch_kernel(stream, "op" + std::to_string(id),
                      cfg(1 + static_cast<unsigned>(rng.next_below(40)),
                          32u << rng.next_below(5)),
                      {1e5 + static_cast<double>(rng.next_below(100)) * 1e5,
                       1e4},
                      [&execution, id] { execution.push_back(id); });

    // Constraints this launch creates.
    if (last_in_stream.count(stream)) {
      must_precede.emplace_back(last_in_stream[stream], id);
    }
    if (is_default) {
      // Barrier: everything submitted earlier precedes it.
      for (const Submitted& prior : program) {
        must_precede.emplace_back(prior.id, id);
      }
      last_default = id;
    } else if (last_default >= 0) {
      must_precede.emplace_back(last_default, id);
    }
    last_in_stream[stream] = id;
    program.push_back({id, stream, is_default});

    // Occasionally record an event after this op.
    if (rng.next_below(3) == 0) {
      events[id] = dev.record_event(stream);
    }
  }
  dev.synchronize();

  ASSERT_EQ(execution.size(), static_cast<std::size_t>(n_ops));
  std::vector<int> position(static_cast<std::size_t>(n_ops));
  for (int pos = 0; pos < n_ops; ++pos) {
    position[static_cast<std::size_t>(execution[static_cast<std::size_t>(pos)])] = pos;
  }
  for (const auto& [before, after] : must_precede) {
    EXPECT_LT(position[static_cast<std::size_t>(before)],
              position[static_cast<std::size_t>(after)])
        << "op " << after << " ran before op " << before << " (seed "
        << GetParam() << ")";
  }
}

TEST_P(EngineFuzz, TimelineConservesResources) {
  glp::Rng rng(GetParam());
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  std::vector<gpusim::StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(dev.create_stream());
  const int n = 20 + static_cast<int>(rng.next_below(30));
  for (int i = 0; i < n; ++i) {
    dev.launch_kernel(streams[rng.next_below(streams.size())], "k",
                      cfg(1 + static_cast<unsigned>(rng.next_below(100)), 256),
                      {1e6 * (1 + static_cast<double>(rng.next_below(20))), 1e5},
                      {});
  }
  dev.synchronize();

  // Busy lane-time never exceeds lanes x active time; the recorded spans
  // cover the simulated makespan.
  const auto& stats = dev.stats();
  EXPECT_LE(stats.busy_lane_ns,
            stats.active_ns * dev.props().total_lanes() * (1.0 + 1e-9));
  const auto& recs = dev.timeline().kernels();
  ASSERT_EQ(recs.size(), static_cast<std::size_t>(n));
  double min_start = recs[0].start_ns, max_end = recs[0].end_ns;
  for (const auto& r : recs) {
    EXPECT_GE(r.end_ns, r.start_ns);
    EXPECT_GE(r.start_ns, r.submit_ns - 1e-6);  // nothing starts pre-launch
    min_start = std::min(min_start, r.start_ns);
    max_end = std::max(max_end, r.end_ns);
  }
  EXPECT_LE(max_end, dev.device_now() + 1e-6);
  EXPECT_GE(min_start, 0.0);
}

TEST_P(EngineFuzz, ReplayIsBitIdentical) {
  auto run = [&](std::uint64_t seed) {
    glp::Rng rng(seed);
    SimDevice dev(gpusim::DeviceTable::k40c());
    std::vector<gpusim::StreamId> streams = {kDefaultStream};
    for (int i = 0; i < 3; ++i) streams.push_back(dev.create_stream());
    for (int i = 0; i < 25; ++i) {
      dev.launch_kernel(streams[rng.next_below(streams.size())], "k",
                        cfg(1 + static_cast<unsigned>(rng.next_below(64)),
                            32u << rng.next_below(5)),
                        {1e5 * (1 + static_cast<double>(rng.next_below(50))), 1e4},
                        {});
    }
    dev.synchronize();
    return dev.device_now();
  };
  const double a = run(GetParam());
  const double b = run(GetParam());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Random, EngineFuzz,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
