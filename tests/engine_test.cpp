#include <gtest/gtest.h>

#include "common/check.hpp"

#include "gpusim/engine.hpp"

namespace {

using gpusim::Dim3;
using gpusim::KernelCost;
using gpusim::kDefaultStream;
using gpusim::LaunchConfig;
using gpusim::SimDevice;

LaunchConfig cfg(unsigned blocks, unsigned threads, std::size_t smem = 0) {
  LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  c.smem_static_bytes = smem;
  return c;
}

KernelCost flops(double f) { return KernelCost{f, f}; }

// --- basic execution --------------------------------------------------------------

TEST(Engine, KernelRunsWorkFunctorOnce) {
  SimDevice dev(gpusim::DeviceTable::p100());
  int runs = 0;
  dev.launch_kernel(kDefaultStream, "k", cfg(10, 256), flops(1e6), [&] { ++runs; });
  EXPECT_EQ(runs, 0);  // asynchronous
  dev.synchronize();
  EXPECT_EQ(runs, 1);
}

TEST(Engine, TimeAdvancesWithWork) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.launch_kernel(kDefaultStream, "k", cfg(100, 256), flops(1e9), {});
  dev.synchronize();
  EXPECT_GT(dev.device_now(), 0.0);
  EXPECT_GE(dev.host_now(), dev.device_now());
}

TEST(Engine, SameStreamKernelsRunInOrder) {
  SimDevice dev(gpusim::DeviceTable::p100());
  std::vector<int> order;
  const auto s = dev.create_stream();
  for (int i = 0; i < 8; ++i) {
    dev.launch_kernel(s, "k" + std::to_string(i), cfg(4, 128), flops(1e5),
                      [&order, i] { order.push_back(i); });
  }
  dev.synchronize();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, SameStreamKernelsNeverOverlapInTimeline) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  const auto s = dev.create_stream();
  for (int i = 0; i < 5; ++i) {
    dev.launch_kernel(s, "k", cfg(50, 256), flops(1e7), {});
  }
  dev.synchronize();
  const auto& recs = dev.timeline().kernels();
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].start_ns, recs[i - 1].end_ns - 1e-6);
  }
}

TEST(Engine, DifferentStreamsOverlap) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  // Two small kernels that underutilise the device.
  dev.launch_kernel(s1, "a", cfg(8, 256), flops(5e7), {});
  dev.launch_kernel(s2, "b", cfg(8, 256), flops(5e7), {});
  dev.synchronize();
  const auto& recs = dev.timeline().kernels();
  ASSERT_EQ(recs.size(), 2u);
  const double overlap = std::min(recs[0].end_ns, recs[1].end_ns) -
                         std::max(recs[0].start_ns, recs[1].start_ns);
  EXPECT_GT(overlap, 0.0);
}

TEST(Engine, ConcurrencySpeedsUpUnderutilisedKernels) {
  // N small kernels serial vs across N streams: concurrent must be faster.
  auto run = [](bool concurrent) {
    SimDevice dev(gpusim::DeviceTable::p100());
    std::vector<gpusim::StreamId> streams;
    for (int i = 0; i < 8; ++i) {
      streams.push_back(concurrent ? dev.create_stream() : kDefaultStream);
    }
    for (int i = 0; i < 32; ++i) {
      dev.launch_kernel(streams[static_cast<std::size_t>(i % 8)], "k",
                        cfg(6, 256), flops(4e7), {});
    }
    dev.synchronize();
    return dev.device_now();
  };
  const double serial = run(false);
  const double conc = run(true);
  EXPECT_LT(conc, serial * 0.55) << "expected ≥ ~2x speedup from overlap";
}

TEST(Engine, SaturatedKernelGainsNothingFromStreams) {
  // Kernels that already fill the device cannot speed up.
  auto run = [](bool concurrent) {
    SimDevice dev(gpusim::DeviceTable::p100());
    const auto s1 = concurrent ? dev.create_stream() : kDefaultStream;
    const auto s2 = concurrent ? dev.create_stream() : kDefaultStream;
    dev.launch_kernel(s1, "a", cfg(512, 1024), flops(1e10), {});
    dev.launch_kernel(s2, "b", cfg(512, 1024), flops(1e10), {});
    dev.synchronize();
    return dev.device_now();
  };
  EXPECT_NEAR(run(true) / run(false), 1.0, 0.05);
}

// --- default stream semantics ---------------------------------------------------

TEST(Engine, DefaultStreamBarriersOtherStreams) {
  SimDevice dev(gpusim::DeviceTable::p100());
  std::vector<std::string> order;
  const auto s = dev.create_stream();
  dev.launch_kernel(s, "before", cfg(4, 128), flops(1e6),
                    [&] { order.push_back("before"); });
  dev.launch_kernel(kDefaultStream, "legacy", cfg(4, 128), flops(1e6),
                    [&] { order.push_back("legacy"); });
  dev.launch_kernel(s, "after", cfg(4, 128), flops(1e6),
                    [&] { order.push_back("after"); });
  dev.synchronize();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "before");
  EXPECT_EQ(order[1], "legacy");
  EXPECT_EQ(order[2], "after");
}

TEST(Engine, DefaultStreamRecordActsAsAsyncBarrier) {
  SimDevice dev(gpusim::DeviceTable::p100());
  std::vector<std::string> order;
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  dev.launch_kernel(s1, "w1", cfg(8, 256), flops(1e8),
                    [&] { order.push_back("w1"); });
  dev.record_event(kDefaultStream);  // barrier
  dev.launch_kernel(s2, "w2", cfg(8, 256), flops(1e6),
                    [&] { order.push_back("w2"); });
  dev.synchronize();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "w1");  // w2 must wait for the barrier despite being shorter
}

// --- events ------------------------------------------------------------------------

TEST(Engine, EventCompletesAfterPriorStreamWork) {
  SimDevice dev(gpusim::DeviceTable::p100());
  const auto s = dev.create_stream();
  bool ran = false;
  dev.launch_kernel(s, "k", cfg(4, 128), flops(1e7), [&] { ran = true; });
  const auto ev = dev.record_event(s);
  EXPECT_FALSE(dev.event_complete(ev));
  dev.synchronize_event(ev);
  EXPECT_TRUE(dev.event_complete(ev));
  EXPECT_TRUE(ran);
}

TEST(Engine, WaitEventOrdersAcrossStreams) {
  SimDevice dev(gpusim::DeviceTable::p100());
  std::vector<std::string> order;
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  dev.launch_kernel(s1, "slow", cfg(8, 256), flops(1e9),
                    [&] { order.push_back("slow"); });
  const auto ev = dev.record_event(s1);
  dev.wait_event(s2, ev);
  dev.launch_kernel(s2, "fast", cfg(2, 64), flops(1e3),
                    [&] { order.push_back("fast"); });
  dev.synchronize();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "slow");
}

TEST(Engine, WaitOnUnknownEventThrows) {
  SimDevice dev(gpusim::DeviceTable::p100());
  const auto s = dev.create_stream();
  EXPECT_THROW(dev.wait_event(s, 12345), glp::InvalidArgument);
  EXPECT_THROW(dev.synchronize_event(999), glp::InvalidArgument);
}

// --- streams -------------------------------------------------------------------------

TEST(Engine, StreamLifecycle) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_EQ(dev.stream_count(), 1);  // default
  const auto s = dev.create_stream();
  EXPECT_EQ(dev.stream_count(), 2);
  EXPECT_TRUE(dev.stream_idle(s));
  dev.launch_kernel(s, "k", cfg(4, 128), flops(1e6), {});
  EXPECT_FALSE(dev.stream_idle(s));
  dev.destroy_stream(s);  // synchronises internally
  EXPECT_EQ(dev.stream_count(), 1);
}

TEST(Engine, CannotDestroyDefaultStream) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_THROW(dev.destroy_stream(kDefaultStream), glp::InvalidArgument);
}

TEST(Engine, SubmitToUnknownStreamThrows) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_THROW(dev.launch_kernel(99, "k", cfg(1, 32), flops(1), {}),
               glp::InvalidArgument);
}

// --- launch validation ------------------------------------------------------------

TEST(Engine, RejectsOversizedBlocks) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_THROW(dev.launch_kernel(kDefaultStream, "k", cfg(1, 2048), flops(1), {}),
               glp::InvalidArgument);
}

TEST(Engine, RejectsEmptyGrid) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_THROW(dev.launch_kernel(kDefaultStream, "k", cfg(0, 128), flops(1), {}),
               glp::InvalidArgument);
}

TEST(Engine, RejectsExcessSharedMemory) {
  SimDevice dev(gpusim::DeviceTable::p100());
  EXPECT_THROW(
      dev.launch_kernel(kDefaultStream, "k", cfg(1, 128, 128 * 1024), flops(1), {}),
      glp::InvalidArgument);
}

// --- host clock / launch overhead ---------------------------------------------------

TEST(Engine, LaunchOverheadAdvancesHostClock) {
  auto props = gpusim::DeviceTable::p100();
  SimDevice dev(props);
  const double before = dev.host_now();
  for (int i = 0; i < 10; ++i) {
    dev.launch_kernel(kDefaultStream, "k", cfg(1, 32), flops(1e3), {});
  }
  EXPECT_NEAR(dev.host_now() - before,
              10 * props.kernel_launch_overhead_us * 1000.0, 1e-6);
}

TEST(Engine, HostAdvanceMovesHostOnly) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.host_advance(5000.0);
  EXPECT_GE(dev.host_now(), 5000.0);
  EXPECT_EQ(dev.device_now(), 0.0);
}

TEST(Engine, ShortKernelsSerialisedByLaunchGap) {
  // Kernels shorter than T_launch cannot overlap even on many streams —
  // the paper's explanation for the ~2 ms layer regressions (§4.2.1).
  auto props = gpusim::DeviceTable::p100();
  SimDevice dev(props);
  dev.timeline().set_enabled(true);
  std::vector<gpusim::StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(dev.create_stream());
  for (int i = 0; i < 8; ++i) {
    // ~1.3 us of compute vs 5 us launch overhead.
    dev.launch_kernel(streams[static_cast<std::size_t>(i % 4)], "tiny",
                      cfg(1, 64), {2e5, 100.0}, {});
  }
  dev.synchronize();
  const auto& recs = dev.timeline().kernels();
  int overlapping = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    for (std::size_t j = i + 1; j < recs.size(); ++j) {
      const double ov = std::min(recs[i].end_ns, recs[j].end_ns) -
                        std::max(recs[i].start_ns, recs[j].start_ns);
      if (ov > 1.0) ++overlapping;
    }
  }
  EXPECT_EQ(overlapping, 0);
}

// --- copies -------------------------------------------------------------------------

TEST(Engine, CopyTimingMatchesBandwidth) {
  auto props = gpusim::DeviceTable::p100();
  SimDevice dev(props);
  dev.timeline().set_enabled(true);
  dev.memcpy_async(kDefaultStream, 12 << 20, true, {});
  dev.synchronize();
  const auto& recs = dev.timeline().copies();
  ASSERT_EQ(recs.size(), 1u);
  const double expect_ns = static_cast<double>(12 << 20) / props.pcie_bandwidth_gbs;
  EXPECT_NEAR(recs[0].end_ns - recs[0].start_ns, expect_ns, 1.0);
}

TEST(Engine, CopyEnginesSerialisePerDirection) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  dev.memcpy_async(s1, 1 << 20, true, {});
  dev.memcpy_async(s2, 1 << 20, true, {});
  dev.synchronize();
  const auto& recs = dev.timeline().copies();
  ASSERT_EQ(recs.size(), 2u);
  const double ov = std::min(recs[0].end_ns, recs[1].end_ns) -
                    std::max(recs[0].start_ns, recs[1].start_ns);
  EXPECT_LE(ov, 1e-6);
}

TEST(Engine, OppositeDirectionCopiesOverlap) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  dev.memcpy_async(s1, 4 << 20, true, {});
  dev.memcpy_async(s2, 4 << 20, false, {});
  dev.synchronize();
  const auto& recs = dev.timeline().copies();
  ASSERT_EQ(recs.size(), 2u);
  const double ov = std::min(recs[0].end_ns, recs[1].end_ns) -
                    std::max(recs[0].start_ns, recs[1].start_ns);
  EXPECT_GT(ov, 0.0);
}

// --- concurrency degree -------------------------------------------------------------

TEST(Engine, ConcurrencyDegreeCapsResidentKernels) {
  auto props = gpusim::DeviceTable::p100();
  props.max_concurrent_kernels = 2;
  SimDevice dev(props);
  dev.timeline().set_enabled(true);
  std::vector<gpusim::StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(dev.create_stream());
  for (int i = 0; i < 4; ++i) {
    dev.launch_kernel(streams[static_cast<std::size_t>(i)], "k", cfg(2, 128),
                      flops(1e8), {});
  }
  dev.synchronize();
  // With C=2, at most two kernels may overlap at any instant.
  const auto& recs = dev.timeline().kernels();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    int concurrent = 0;
    const double mid = (recs[i].start_ns + recs[i].end_ns) / 2.0;
    for (const auto& r : recs) {
      if (r.start_ns <= mid && mid < r.end_ns) ++concurrent;
    }
    EXPECT_LE(concurrent, 2);
  }
}

// --- roofline ------------------------------------------------------------------------

TEST(Engine, RooflineComputeVsMemoryBound) {
  SimDevice p100(gpusim::DeviceTable::p100());
  const LaunchConfig c = cfg(100, 256);
  // Compute-heavy: flops dominate.
  const double w1 = p100.work_thread_cycles(c, {1e9, 1e3});
  EXPECT_NEAR(w1, 5e8, 1.0);
  // Memory-heavy: bytes dominate; scaled by lanes*clock/bandwidth.
  const double w2 = p100.work_thread_cycles(c, {1e3, 1e9});
  EXPECT_GT(w2, 5e8);
}

TEST(Engine, RooflineDependsOnDevice) {
  SimDevice k40(gpusim::DeviceTable::k40c());
  SimDevice p100(gpusim::DeviceTable::p100());
  const LaunchConfig c = cfg(100, 256);
  const KernelCost cost{1e8, 4e7};
  // Same kernel, different devices → different durations when run alone.
  auto time_on = [&](SimDevice& dev) {
    dev.launch_kernel(kDefaultStream, "k", c, cost, {});
    dev.synchronize();
    return dev.device_now();
  };
  EXPECT_GT(time_on(k40), time_on(p100));
}

// --- stats ---------------------------------------------------------------------------

TEST(Engine, UtilisationStatsConserveWork) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.launch_kernel(kDefaultStream, "k", cfg(200, 256), flops(1e9), {});
  dev.synchronize();
  const auto& s = dev.stats();
  EXPECT_EQ(s.kernels_launched, 1u);
  EXPECT_GT(s.busy_lane_ns, 0.0);
  // Busy lane-time can never exceed lanes × active time.
  EXPECT_LE(s.busy_lane_ns,
            s.active_ns * dev.props().total_lanes() + 1e-6);
  EXPECT_LE(s.mean_utilization(dev.props().total_lanes()), 1.0 + 1e-9);
}

TEST(Engine, ResetStatsClears) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.launch_kernel(kDefaultStream, "k", cfg(4, 128), flops(1e6), {});
  dev.synchronize();
  dev.reset_stats();
  EXPECT_EQ(dev.stats().kernels_launched, 0u);
  EXPECT_EQ(dev.stats().busy_lane_ns, 0.0);
}

// --- callbacks / timeline -------------------------------------------------------------

TEST(Engine, KernelCallbackSeesRecordFields) {
  SimDevice dev(gpusim::DeviceTable::p100());
  gpusim::KernelRecord seen;
  dev.set_kernel_callback([&](const gpusim::KernelRecord& r) { seen = r; });
  const auto s = dev.create_stream();
  const auto corr = dev.launch_kernel(s, "my_kernel", cfg(7, 192, 1024), flops(1e6), {});
  dev.synchronize();
  EXPECT_EQ(seen.correlation_id, corr);
  EXPECT_EQ(seen.name, "my_kernel");
  EXPECT_EQ(seen.stream, s);
  EXPECT_EQ(seen.config.grid.x, 7u);
  EXPECT_EQ(seen.config.block.x, 192u);
  EXPECT_EQ(seen.config.smem_static_bytes, 1024u);
  EXPECT_GT(seen.end_ns, seen.start_ns);
}

TEST(Engine, TimelineDisabledByDefault) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.launch_kernel(kDefaultStream, "k", cfg(1, 32), flops(1e3), {});
  dev.synchronize();
  EXPECT_TRUE(dev.timeline().kernels().empty());
}

TEST(Engine, RegisterPenaltySlowsSpillingKernels) {
  auto run = [](bool penalty) {
    SimDevice dev(gpusim::DeviceTable::p100());
    dev.set_register_penalty_enabled(penalty);
    LaunchConfig c = cfg(200, 1024);
    c.regs_per_thread = 200;  // 2 blocks/SM x 1024 x 200 >> 64K regs
    dev.launch_kernel(kDefaultStream, "fat", c, flops(1e9), {});
    dev.synchronize();
    return dev.device_now();
  };
  EXPECT_GT(run(true), run(false) * 1.2);
}

TEST(Engine, HighPriorityStreamsAdmitFirstUnderSaturation) {
  // C = 1: kernels execute strictly one at a time, so the admission order
  // under saturation is observable through the functor order.
  auto props = gpusim::DeviceTable::p100();
  props.max_concurrent_kernels = 1;
  SimDevice dev(props);
  const auto low = dev.create_stream(/*priority=*/0);
  const auto high = dev.create_stream(/*priority=*/5);
  EXPECT_EQ(dev.stream_priority(high), 5);
  EXPECT_EQ(dev.stream_priority(kDefaultStream), 0);

  std::vector<char> order;
  // Low-priority work submitted first; both become ready while the device
  // is saturated by the first kernel.
  dev.launch_kernel(low, "l0", cfg(4, 128), flops(1e8), [&] { order.push_back('l'); });
  dev.launch_kernel(low, "l1", cfg(4, 128), flops(1e6), [&] { order.push_back('l'); });
  dev.launch_kernel(high, "h0", cfg(4, 128), flops(1e6), [&] { order.push_back('h'); });
  dev.synchronize();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'l');  // was already running
  EXPECT_EQ(order[1], 'h');  // jumped the queue at the free slot
  EXPECT_EQ(order[2], 'l');
}

TEST(Engine, HeavyOversubscriptionCompletes) {
  // Regression: packed-out kernels (rate 0) whose start-latency residue
  // shrank below one ulp of the clock used to spin the event loop forever.
  SimDevice dev(gpusim::DeviceTable::titan_xp());
  std::vector<gpusim::StreamId> streams;
  for (int i = 0; i < 32; ++i) streams.push_back(dev.create_stream());
  for (int i = 0; i < 320; ++i) {
    dev.launch_kernel(streams[static_cast<std::size_t>(i % 32)], "big",
                      cfg(96, 256, 16 * 1024), flops(3e8), {});
  }
  dev.synchronize();
  EXPECT_GT(dev.device_now(), 0.0);
}

TEST(Engine, HostCallbackRunsInStreamOrder) {
  SimDevice dev(gpusim::DeviceTable::p100());
  const auto s = dev.create_stream();
  std::vector<int> order;
  dev.launch_kernel(s, "k", cfg(8, 256), flops(1e7), [&] { order.push_back(0); });
  dev.host_callback(s, [&] { order.push_back(1); });
  dev.launch_kernel(s, "k2", cfg(8, 256), flops(1e5), [&] { order.push_back(2); });
  dev.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, DeterministicReplay) {
  auto run = [] {
    SimDevice dev(gpusim::DeviceTable::titan_xp());
    std::vector<gpusim::StreamId> streams;
    for (int i = 0; i < 3; ++i) streams.push_back(dev.create_stream());
    for (int i = 0; i < 30; ++i) {
      dev.launch_kernel(streams[static_cast<std::size_t>(i % 3)], "k",
                        cfg(5 + (i % 7), 128), flops(1e6 * (1 + i % 5)), {});
    }
    dev.synchronize();
    return dev.device_now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
