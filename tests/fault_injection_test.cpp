// Fault-injection coverage: every fault site (kernel launch, stream
// creation, profiler capture) has a targeted test proving the scheduler
// degrades gracefully — training completes with correct results instead
// of crashing or silently corrupting parameters.

#include <gtest/gtest.h>

#include "core/glp4nn.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/fault_injection.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using glptest::GlpEnv;

std::vector<float> train_params(mc::ExecContext& ec, mc::NetSpec spec,
                                int iters) {
  mc::Net net(std::move(spec), ec);
  mc::SgdSolver solver(net, {});
  solver.step(iters);
  ec.ctx->device().synchronize();
  std::vector<float> out;
  for (const auto& p : net.learnable_params()) {
    out.insert(out.end(), p->data(), p->data() + p->count());
  }
  return out;
}

// --- injector unit behaviour ----------------------------------------------

TEST(FaultInjector, DisarmedByDefaultAndConsumesNothing) {
  scuda::FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.should_fail_launch());
  EXPECT_FALSE(injector.should_fail_stream_create());
  EXPECT_FALSE(injector.should_drop_capture());
  EXPECT_EQ(injector.total_faults(), 0u);
}

TEST(FaultInjector, RejectsOutOfRangeRates) {
  scuda::FaultInjector injector;
  scuda::FaultConfig bad;
  bad.launch_failure_rate = 1.5;
  EXPECT_THROW(injector.arm(bad), glp::Error);
  bad.launch_failure_rate = -0.1;
  EXPECT_THROW(injector.arm(bad), glp::Error);
}

TEST(FaultInjector, CountersTrackEachSite) {
  scuda::FaultInjector injector;
  scuda::FaultConfig config;
  config.launch_failure_rate = 1.0;
  config.stream_create_failure_rate = 1.0;
  config.capture_loss_rate = 1.0;
  injector.arm(config);
  EXPECT_TRUE(injector.should_fail_launch());
  EXPECT_TRUE(injector.should_fail_launch());
  EXPECT_TRUE(injector.should_fail_stream_create());
  EXPECT_TRUE(injector.should_drop_capture());
  EXPECT_EQ(injector.launch_faults(), 2u);
  EXPECT_EQ(injector.stream_create_faults(), 1u);
  EXPECT_EQ(injector.capture_records_dropped(), 1u);
  EXPECT_EQ(injector.total_faults(), 4u);
  injector.disarm();
  EXPECT_FALSE(injector.should_fail_launch());
}

TEST(FaultInjector, DeterministicGivenSeed) {
  scuda::FaultConfig config;
  config.launch_failure_rate = 0.5;
  config.seed = glptest::test_seed(77);
  GLP_SCOPED_SEED(config.seed);
  auto draw = [&config] {
    scuda::FaultInjector injector;
    injector.arm(config);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(injector.should_fail_launch());
    return out;
  };
  EXPECT_EQ(draw(), draw());
}

// --- stream-creation faults -----------------------------------------------

TEST(FaultSites, StreamCreateThrowsWhenInjected) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  scuda::FaultConfig config;
  config.stream_create_failure_rate = 1.0;
  ctx.faults().arm(config);
  EXPECT_THROW(scuda::Stream::create(ctx), scuda::StreamCreateFailed);
  EXPECT_GE(ctx.faults().stream_create_faults(), 1u);
}

TEST(SchedulerDegradation, StreamCreateFailureFallsBackToSerial) {
  // Every stream creation fails → the scheduler must pin each dispatch
  // scope to the default stream and keep training, bit-identical to the
  // serial baseline (batch 16 ≤ 32 → bit-exact contract applies).
  Env serial;
  const auto want = train_params(serial.ec, mc::models::lenet(16), 3);

  glp4nn::SchedulerOptions opts;
  opts.fixed_streams = 4;  // forces an acquire on the first scope
  GlpEnv glp(gpusim::DeviceTable::p100(), opts);
  scuda::FaultConfig config;
  config.stream_create_failure_rate = 1.0;
  glp.ctx.faults().arm(config);
  const auto got = train_params(glp.ec, mc::models::lenet(16), 3);

  glp4nn::RuntimeScheduler& sched = glp.engine.scheduler_for(glp.ctx);
  EXPECT_GT(sched.serial_fallback_count(), 0u);
  EXPECT_TRUE(sched.scope_serialized("conv1/fwd"));
  EXPECT_EQ(sched.stream_count("conv1/fwd"), 1);
  EXPECT_EQ(glptest::max_abs_diff(want, got), 0.0);
}

// --- kernel-launch faults -------------------------------------------------

TEST(SchedulerDegradation, LaunchFailureReroutesToDefaultStream) {
  glp4nn::SchedulerOptions opts;
  opts.fixed_streams = 4;
  GlpEnv glp(gpusim::DeviceTable::p100(), opts);
  scuda::FaultConfig config;
  config.launch_failure_rate = 1.0;  // every launch is refused
  glp.ctx.faults().arm(config);
  glp.ctx.device().timeline().set_enabled(true);
  train_params(glp.ec, mc::models::lenet(8), 1);

  EXPECT_GT(glp.ctx.faults().launch_faults(), 0u);
  ASSERT_FALSE(glp.ctx.device().timeline().kernels().empty());
  for (const gpusim::KernelRecord& k : glp.ctx.device().timeline().kernels()) {
    EXPECT_EQ(k.stream, gpusim::kDefaultStream) << k.name;
  }
}

TEST(SchedulerDegradation, LaunchFailurePreservesBitExactTraining) {
  // Partial launch-failure rate: some per-sample kernels land on the
  // default stream, the rest on their pool streams. The legacy default
  // stream is a two-sided barrier, so global submission order — and
  // therefore every float — is unchanged.
  Env serial;
  const auto want = train_params(serial.ec, mc::models::lenet(16), 3);

  GlpEnv glp;
  scuda::FaultConfig config;
  config.launch_failure_rate = 0.3;
  config.seed = glptest::test_seed(0xfa17);
  GLP_SCOPED_SEED(config.seed);
  glp.ctx.faults().arm(config);
  const auto got = train_params(glp.ec, mc::models::lenet(16), 3);

  EXPECT_GT(glp.ctx.faults().launch_faults(), 0u);
  EXPECT_EQ(glptest::max_abs_diff(want, got), 0.0);
}

// --- profiler-capture faults ----------------------------------------------

TEST(SchedulerDegradation, CaptureLossSerializesScopeAfterBoundedRetries) {
  // Every profiler record is lost → scopes can never be decided. The
  // scheduler must retry a bounded number of times and then serialise
  // the scope rather than profile forever.
  Env serial;
  const int iters = glp4nn::RuntimeScheduler::kMaxProfileAttempts + 2;
  const auto want = train_params(serial.ec, mc::models::lenet(16), iters);

  GlpEnv glp;
  scuda::FaultConfig config;
  config.capture_loss_rate = 1.0;
  glp.ctx.faults().arm(config);
  const auto got = train_params(glp.ec, mc::models::lenet(16), iters);

  glp4nn::RuntimeScheduler& sched = glp.engine.scheduler_for(glp.ctx);
  EXPECT_GT(sched.serial_fallback_count(), 0u);
  EXPECT_TRUE(sched.scope_serialized("conv1/fwd"));
  EXPECT_GT(glp.ctx.faults().capture_records_dropped(), 0u);
  EXPECT_EQ(glptest::max_abs_diff(want, got), 0.0);
}

TEST(SchedulerDegradation, PartialCaptureLossStillDecidesScopes) {
  // Half the records drop; the remaining capture is enough to decide.
  // Training must stay bit-identical (profiling only reads timings).
  Env serial;
  const auto want = train_params(serial.ec, mc::models::lenet(16), 3);

  GlpEnv glp;
  scuda::FaultConfig config;
  config.capture_loss_rate = 0.5;
  config.seed = glptest::test_seed(0xcafe);
  GLP_SCOPED_SEED(config.seed);
  glp.ctx.faults().arm(config);
  const auto got = train_params(glp.ec, mc::models::lenet(16), 3);

  EXPECT_GT(glp.ctx.faults().capture_records_dropped(), 0u);
  EXPECT_EQ(glptest::max_abs_diff(want, got), 0.0);
}

}  // namespace
