// Fleet tests: the interconnect model's exact processor-sharing
// contention (halving on a shared PCIe channel, non-interference of
// disjoint NVLink links), the transfer race-checker (clean audits and
// synthetic capacity/conservation/profile violations), the engine
// semantics the fleet drivers lean on (non-blocking streams escaping the
// default-stream barrier, comm-driver events releasing at their issue
// time — identically on both engines), multi-device data-parallel
// training held bit-identical to the single-device reference (both
// engines, both link kinds, with and without overlap, clean and under
// injected faults), and replica-group routing in the sharded fleet
// server (placement containment, determinism, health-aware failover).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "gpusim/engine.hpp"
#include "gpusim/interconnect.hpp"
#include "serving/fleet_server.hpp"
#include "serving/model_zoo.hpp"
#include "serving/trace_gen.hpp"
#include "simcuda/fleet.hpp"
#include "test_helpers.hpp"
#include "testing/fleet_differential.hpp"
#include "testing/race_checker.hpp"

namespace {

using gpusim::kDefaultStream;
using gpusim::LinkModel;
using gpusim::LinkProps;
using gpusim::LinkTopology;
using gpusim::SimTime;
using gpusim::TransferRecord;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  return c;
}

gpusim::KernelCost flops(double f) { return gpusim::KernelCost{f, f}; }

// --- interconnect model ----------------------------------------------------

TEST(LinkModel, SoloTransferRunsAtFullBandwidth) {
  LinkModel links(2, LinkTopology::kPcieHost, LinkProps::pcie());
  links.begin(0, 1, 120000, 0.0);
  links.finalize_all();
  const auto recs = links.take_completed();
  ASSERT_EQ(recs.size(), 1u);
  // 5 us latency, then 120000 B at 12 B/ns.
  EXPECT_DOUBLE_EQ(recs[0].start_ns, 5000.0);
  EXPECT_DOUBLE_EQ(recs[0].end_ns, 15000.0);
  ASSERT_EQ(recs[0].segments.size(), 1u);
  EXPECT_DOUBLE_EQ(recs[0].segments[0].rate, 12.0);
}

TEST(LinkModel, ConcurrentTransfersOnSharedPcieChannelHalveExactly) {
  LinkModel links(4, LinkTopology::kPcieHost, LinkProps::pcie());
  EXPECT_EQ(links.channel_count(), 1);
  EXPECT_EQ(links.channel_for(0, 1), links.channel_for(2, 3));
  links.begin(0, 1, 120000, 0.0);
  links.begin(2, 3, 120000, 0.0);
  links.finalize_all();
  const auto recs = links.take_completed();
  ASSERT_EQ(recs.size(), 2u);
  for (const TransferRecord& r : recs) {
    // Both share the one host channel for their whole lifetime, so each
    // progresses at exactly B/2 = 6 bytes/ns: end = 5000 + 120000/6.
    EXPECT_DOUBLE_EQ(r.start_ns, 5000.0);
    EXPECT_DOUBLE_EQ(r.end_ns, 25000.0);
    ASSERT_EQ(r.segments.size(), 1u);
    EXPECT_DOUBLE_EQ(r.segments[0].rate, 6.0);
  }
}

TEST(LinkModel, DisjointNvlinkLinksDoNotInterfere) {
  LinkModel links(4, LinkTopology::kNvlinkRing, LinkProps::nvlink());
  EXPECT_NE(links.channel_for(0, 1), links.channel_for(2, 3));
  EXPECT_NE(links.channel_for(0, 1), links.channel_for(1, 0));  // directed
  links.begin(0, 1, 60000, 0.0);
  links.begin(2, 3, 60000, 0.0);
  links.finalize_all();
  const auto recs = links.take_completed();
  ASSERT_EQ(recs.size(), 2u);
  for (const TransferRecord& r : recs) {
    // Dedicated directed link: full 60 B/ns as if alone.
    EXPECT_DOUBLE_EQ(r.start_ns, 1000.0);
    EXPECT_DOUBLE_EQ(r.end_ns, 2000.0);
  }
}

TEST(LinkModel, SameNvlinkLinkQueuesFifo) {
  LinkModel links(4, LinkTopology::kNvlinkRing, LinkProps::nvlink());
  links.begin(0, 1, 60000, 0.0);
  links.begin(0, 1, 60000, 0.0);
  links.finalize_all();
  const auto recs = links.take_completed();
  ASSERT_EQ(recs.size(), 2u);
  // One message in flight per directed pair: the first runs alone at
  // the full 60 B/ns; the second streams right behind it, its latency
  // hidden behind the queue wait.
  EXPECT_DOUBLE_EQ(recs[0].start_ns, 1000.0);
  EXPECT_DOUBLE_EQ(recs[0].end_ns, 2000.0);
  EXPECT_DOUBLE_EQ(recs[1].start_ns, 2000.0);
  EXPECT_DOUBLE_EQ(recs[1].end_ns, 3000.0);
}

// --- transfer race checker -------------------------------------------------

TEST(FleetTransfers, CleanAuditOfContendedModelOutput) {
  LinkModel links(4, LinkTopology::kPcieHost, LinkProps::pcie());
  // Staggered arrivals so the PS profiles have several rate segments.
  links.begin(0, 1, 120000, 0.0);
  links.begin(1, 2, 60000, 2000.0);
  links.begin(2, 3, 30000, 9000.0);
  links.finalize_all();
  const auto report =
      glpfuzz::check_fleet_transfers(links.take_completed(), LinkProps::pcie());
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.transfers_checked, 3u);
  EXPECT_LE(report.peak_channel_rate, LinkProps::pcie().bandwidth_gbps + 1e-9);
  EXPECT_EQ(report.channels_used, 1u);
}

TEST(FleetTransfers, FlagsCapacityAndConservationViolations) {
  TransferRecord bad;
  bad.id = 1;
  bad.src = 0;
  bad.dst = 1;
  bad.bytes = 1200;
  bad.request_ns = 0.0;
  bad.start_ns = 5000.0;
  bad.end_ns = 5100.0;
  bad.channel = 0;
  // 24 B/ns on a 12 B/ns channel, and the integral (2400 B) is double
  // the declared byte count: capacity AND conservation must both fire.
  bad.segments = {{5000.0, 5100.0, 24.0}};
  const auto report = glpfuzz::check_fleet_transfers({bad}, LinkProps::pcie());
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.violations.size(), 2u);
}

TEST(FleetTransfers, FlagsGappyRateProfile) {
  TransferRecord bad;
  bad.id = 2;
  bad.src = 1;
  bad.dst = 0;
  bad.bytes = 960;
  bad.request_ns = 0.0;
  bad.start_ns = 5000.0;
  bad.end_ns = 5100.0;
  bad.channel = 0;
  // Conserves bytes but leaves [5040, 5060) uncovered — an active PS
  // transfer always holds a positive share, so gaps are malformed.
  bad.segments = {{5000.0, 5040.0, 12.0}, {5060.0, 5100.0, 12.0}};
  const auto report = glpfuzz::check_fleet_transfers({bad}, LinkProps::pcie());
  EXPECT_FALSE(report.clean());
}

TEST(FleetTransfers, FlagsProfileStoppingShortOfEnd) {
  TransferRecord bad;
  bad.id = 3;
  bad.src = 0;
  bad.dst = 1;
  bad.bytes = 480;
  bad.request_ns = 0.0;
  bad.start_ns = 5000.0;
  bad.end_ns = 5100.0;
  bad.channel = 0;
  bad.segments = {{5000.0, 5040.0, 12.0}};
  const auto report = glpfuzz::check_fleet_transfers({bad}, LinkProps::pcie());
  EXPECT_FALSE(report.clean());
}

// --- engine semantics the fleet drivers depend on --------------------------

TEST(FleetEngine, NonBlockingStreamEscapesDefaultBarrierOnBothEngines) {
  std::map<gpusim::EngineKind, std::pair<SimTime, SimTime>> times;
  for (const auto kind :
       {gpusim::EngineKind::kOptimized, gpusim::EngineKind::kReference}) {
    scuda::Context ctx(gpusim::DeviceTable::p100(), kind);
    auto& dev = ctx.device();
    // Long default-stream kernel, then one link-scheduled peer copy on a
    // non-blocking stream and one on an ordinary (blocking) stream.
    dev.launch_kernel(kDefaultStream, "busy", cfg(64, 256), flops(1e10), {});
    const auto nb = dev.create_stream(0, /*non_blocking=*/true);
    const auto bl = dev.create_stream(0, /*non_blocking=*/false);
    SimTime nb_done = -1.0, bl_done = -1.0;
    dev.memcpy_peer(nb, 64, 1, 1000.0, 2000.0,
                    [&] { nb_done = dev.device_now(); });
    dev.memcpy_peer(bl, 64, 1, 1000.0, 2000.0,
                    [&] { bl_done = dev.device_now(); });
    dev.synchronize();
    // The non-blocking copy keeps its link-granted span; the blocking one
    // is admitted only after the default-stream barrier and completes no
    // earlier than the kernel.
    EXPECT_DOUBLE_EQ(nb_done, 2000.0);
    EXPECT_GT(bl_done, 2000.0);
    times[kind] = {nb_done, bl_done};
  }
  // Bit-identical across engines.
  EXPECT_EQ(times.at(gpusim::EngineKind::kOptimized),
            times.at(gpusim::EngineKind::kReference));
}

TEST(FleetEngine, CommDriverEventReleasesAtIssueTimeOnBothEngines) {
  for (const auto kind :
       {gpusim::EngineKind::kOptimized, gpusim::EngineKind::kReference}) {
    scuda::Context ctx(gpusim::DeviceTable::p100(), kind);
    auto& dev = ctx.device();
    const SimTime host_before = dev.host_now();
    const auto marker = dev.record_event_at(kDefaultStream, 7777.0);
    // Zero host cost: the dispatch thread's clock must not move.
    EXPECT_DOUBLE_EQ(dev.host_now(), host_before);
    dev.synchronize();
    EXPECT_DOUBLE_EQ(dev.event_time(marker), 7777.0);
  }
}

TEST(Fleet, SynchronizeAllDrainsEveryDevice) {
  scuda::Fleet fleet = scuda::Fleet::homogeneous(3, gpusim::DeviceTable::p100());
  ASSERT_EQ(fleet.size(), 3);
  fleet.device(1).device().launch_kernel(kDefaultStream, "k", cfg(32, 256),
                                         flops(1e9), {});
  fleet.synchronize_all();
  EXPECT_GT(fleet.device(1).device().device_now(), 0.0);
  EXPECT_DOUBLE_EQ(fleet.max_device_now(),
                   fleet.device(1).device().device_now());
  for (int d = 0; d < fleet.size(); ++d) {
    EXPECT_TRUE(fleet.device(d).device().stream_idle(kDefaultStream));
  }
}

// --- data-parallel training bit-exactness ----------------------------------

TEST(FleetTraining, TwoDevicesBitExactOnBothEngines) {
  const std::uint64_t seed = glptest::test_seed(3);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_fleet_case(seed);
  for (const auto kind :
       {gpusim::EngineKind::kOptimized, gpusim::EngineKind::kReference}) {
    glpfuzz::FleetDiffOptions opts;
    opts.devices = 2;
    opts.engine = kind;
    const auto r = glpfuzz::run_fleet_differential(c, opts);
    EXPECT_TRUE(r.ok) << r.failure;
    EXPECT_GT(r.params_compared, 0u);
    EXPECT_GT(r.transfers.transfers_checked, 0u);
  }
}

TEST(FleetTraining, FourDevicesOverPcieBitExact) {
  const std::uint64_t seed = glptest::test_seed(4);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_fleet_case(seed);
  glpfuzz::FleetDiffOptions opts;
  opts.devices = 4;
  opts.topology = LinkTopology::kPcieHost;
  const auto r = glpfuzz::run_fleet_differential(c, opts);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.buckets, 0u);
}

TEST(FleetTraining, SerializeThenReduceBaselineAlsoBitExact) {
  const std::uint64_t seed = glptest::test_seed(5);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_fleet_case(seed);
  glpfuzz::FleetDiffOptions opts;
  opts.devices = 2;
  opts.overlap = false;
  const auto r = glpfuzz::run_fleet_differential(c, opts);
  EXPECT_TRUE(r.ok) << r.failure;
}

TEST(FleetTraining, BitExactUnderInjectedFaults) {
  const std::uint64_t seed = glptest::test_seed(8);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_fleet_case(seed);
  glpfuzz::FleetDiffOptions opts;
  opts.devices = 2;
  opts.faults.launch_failure_rate = 0.05;
  opts.faults.stream_create_failure_rate = 0.05;
  opts.faults.capture_loss_rate = 0.05;
  opts.faults.seed = seed;
  const auto r = glpfuzz::run_fleet_differential(c, opts);
  EXPECT_TRUE(r.ok) << r.failure;
}

// --- sharded serving -------------------------------------------------------

std::vector<serving::TenantModel> fleet_tenants() {
  serving::TenantModel a;
  a.name = "tiny_cnn";
  a.spec = serving::tiny_cnn(1);
  serving::TenantModel b;
  b.name = "mlp";
  b.spec = serving::mlp(1);
  return {std::move(a), std::move(b)};
}

std::vector<std::size_t> input_sizes(
    const std::vector<serving::TenantModel>& models) {
  std::vector<std::size_t> sizes;
  for (const auto& m : models) {
    const auto& d = m.spec.layers.front().params.dataset;
    sizes.push_back(static_cast<std::size_t>(d.channels) * d.height * d.width);
  }
  return sizes;
}

std::vector<serving::InferenceRequest> fleet_trace(std::uint64_t seed,
                                                   int requests = 60) {
  serving::TraceSpec ts;
  ts.requests = requests;
  ts.rate_rps = 6000.0;
  ts.tenants = 2;
  ts.seed = seed;
  return serving::make_trace(ts, input_sizes(fleet_tenants()));
}

TEST(FleetServer, RoutesStayInsideReplicaGroups) {
  const std::uint64_t seed = glptest::test_seed(21);
  GLP_SCOPED_SEED(seed);
  const auto trace = fleet_trace(seed);
  scuda::Fleet fleet = scuda::Fleet::homogeneous(3, gpusim::DeviceTable::p100());
  serving::FleetServerOptions opts;
  opts.replicas = 2;
  serving::FleetServer server(fleet, fleet_tenants(), opts);
  const auto records = server.replay(trace);
  EXPECT_EQ(records.size(), trace.size());

  std::map<std::uint64_t, int> tenant_of;
  for (const auto& req : trace) tenant_of[req.id] = req.tenant;
  ASSERT_FALSE(server.last_routes().empty());
  for (const auto& [id, device] : server.last_routes()) {
    const auto& group = server.replica_group(tenant_of.at(id));
    EXPECT_NE(std::find(group.begin(), group.end(), device), group.end())
        << "request " << id << " routed off its replica group";
  }
}

TEST(FleetServer, IdenticalInputsRouteIdentically) {
  const std::uint64_t seed = glptest::test_seed(22);
  GLP_SCOPED_SEED(seed);
  const auto trace = fleet_trace(seed);
  std::vector<std::vector<std::pair<std::uint64_t, int>>> routes;
  for (int run = 0; run < 2; ++run) {
    scuda::Fleet fleet =
        scuda::Fleet::homogeneous(3, gpusim::DeviceTable::p100());
    serving::FleetServerOptions opts;
    opts.replicas = 2;
    // Routing tie-breaks consult warmed service estimates, which include
    // the scheduler's one-time overhead charge; pin it so the two
    // instances warm bit-identical estimates (the default charges
    // *measured* wall time).
    opts.server.scheduler.overhead_charge_ms = 0.05;
    serving::FleetServer server(fleet, fleet_tenants(), opts);
    server.replay(trace);
    routes.push_back(server.last_routes());
  }
  EXPECT_EQ(routes[0], routes[1]);
}

TEST(FleetServer, UnhealthyDeviceReceivesNoTraffic) {
  const std::uint64_t seed = glptest::test_seed(23);
  GLP_SCOPED_SEED(seed);
  const auto trace = fleet_trace(seed);
  scuda::Fleet fleet = scuda::Fleet::homogeneous(3, gpusim::DeviceTable::p100());
  serving::FleetServerOptions opts;
  opts.replicas = 2;
  serving::FleetServer server(fleet, fleet_tenants(), opts);
  server.set_healthy(0, false);
  const auto records = server.replay(trace);
  EXPECT_EQ(records.size(), trace.size());
  for (const auto& [id, device] : server.last_routes()) {
    EXPECT_NE(device, 0) << "request " << id << " routed to unhealthy device";
  }
}

TEST(FleetServer, ThrowsWhenATenantLosesEveryReplica) {
  const std::uint64_t seed = glptest::test_seed(24);
  GLP_SCOPED_SEED(seed);
  const auto trace = fleet_trace(seed, 10);
  scuda::Fleet fleet = scuda::Fleet::homogeneous(2, gpusim::DeviceTable::p100());
  serving::FleetServerOptions opts;
  opts.replicas = 1;
  serving::FleetServer server(fleet, fleet_tenants(), opts);
  // With replicas=1 each tenant lives on exactly one device; killing it
  // leaves that tenant unroutable.
  server.set_healthy(server.replica_group(0).front(), false);
  EXPECT_THROW(server.replay(trace), glp::Error);
}

}  // namespace
