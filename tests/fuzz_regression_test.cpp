// Fixed-seed fuzz corpus: 20 cases through the differential runner on
// every CI run. The seeds are the first 20 of the nightly fuzz sweep
// (`glp4nn_fuzz --cases 200 --seed 1`), so a regression in the scheduler,
// the dispatch policies or the simulator's ordering guarantees fails
// here before the full sweep runs. Failures print the seed; replay with
//
//   glp4nn_fuzz --replay <seed>
// or
//   GLP_TEST_SEED=<seed> ./tests/fuzz_regression_test --gtest_filter='*EnvSeed*'

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "testing/differential_runner.hpp"
#include "testing/net_generator.hpp"

namespace {

class FuzzCorpus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCorpus, SerialAndScheduledTrainingAgree) {
  const std::uint64_t seed = GetParam();
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_case(seed);
  const glpfuzz::DiffResult r = glpfuzz::run_differential(c);
  EXPECT_TRUE(r.ok) << c.summary() << "\n" << r.failure;
  EXPECT_TRUE(r.races.clean()) << r.races.to_string();
  if (r.bit_exact_expected) {
    EXPECT_TRUE(r.bit_exact_observed)
        << c.summary() << ": max param diff " << r.max_param_diff;
  }
}

TEST_P(FuzzCorpus, SurvivesLaunchFaultInjection) {
  // 5% of kernel launches are refused; the launcher re-routes them to
  // the default stream, which must not change a single float.
  const std::uint64_t seed = GetParam();
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_case(seed);
  glpfuzz::DiffOptions opts;
  opts.faults.launch_failure_rate = 0.05;
  const glpfuzz::DiffResult r = glpfuzz::run_differential(c, opts);
  EXPECT_TRUE(r.ok) << c.summary() << "\n" << r.failure;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpus,
                         ::testing::Range<std::uint64_t>(1, 21),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(FuzzRegression, EnvSeedOverrideReplaysOneCase) {
  const std::uint64_t seed = glptest::test_seed(42);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::FuzzCase c = glpfuzz::make_case(seed);
  const glpfuzz::DiffResult r = glpfuzz::run_differential(c);
  EXPECT_TRUE(r.ok) << c.summary() << "\n" << r.failure;
}

TEST(FuzzRegression, GeneratedCasesAreSeedDeterministic) {
  const glpfuzz::FuzzCase a = glpfuzz::make_case(7);
  const glpfuzz::FuzzCase b = glpfuzz::make_case(7);
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.net.layers.size(), b.net.layers.size());
  for (std::size_t i = 0; i < a.net.layers.size(); ++i) {
    EXPECT_EQ(a.net.layers[i].name, b.net.layers[i].name);
    EXPECT_EQ(a.net.layers[i].type, b.net.layers[i].type);
  }
  // Nearby seeds must not produce the same case.
  const glpfuzz::FuzzCase c = glpfuzz::make_case(8);
  EXPECT_NE(a.summary(), c.summary());
}

TEST(FuzzRegression, BitExactContractMatchesDesign) {
  // batch ≤ 32 → always exact; batch > 32 needs strict_repro + RR.
  mc::NetSpec small = glpfuzz::make_case(1).net;  // contains ≥1 conv
  for (auto& layer : small.layers) {
    if (layer.type == "Data") layer.params.batch_size = 16;
  }
  glp4nn::SchedulerOptions opts;
  opts.policy = glp4nn::DispatchPolicy::kBlockCyclic;
  EXPECT_TRUE(glpfuzz::bit_exact_contract(small, opts));

  for (auto& layer : small.layers) {
    if (layer.type == "Data") layer.params.batch_size = 48;
  }
  EXPECT_FALSE(glpfuzz::bit_exact_contract(small, opts));
  opts.strict_repro = true;
  EXPECT_FALSE(glpfuzz::bit_exact_contract(small, opts));  // still BC
  opts.policy = glp4nn::DispatchPolicy::kRoundRobin;
  EXPECT_TRUE(glpfuzz::bit_exact_contract(small, opts));
}

}  // namespace
