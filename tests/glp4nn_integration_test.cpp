// End-to-end properties of GLP4NN-Caffe vs naive-Caffe, the paper's
// §3.3.1 claims: convergence invariance (bit-identical here, stronger
// than the paper's "similar"), network agnosticism (any net runs under
// the scheduler unchanged), and lightweight overhead.

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "minicaffe/models.hpp"
#include "minicaffe/net_parser.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using glptest::GlpEnv;
using mc::Net;
using mc::NetSpec;
using mc::SgdSolver;

std::vector<float> train_and_snapshot(mc::ExecContext& ec, NetSpec spec,
                                      int iters, std::vector<float>* losses) {
  Net net(std::move(spec), ec);
  SgdSolver solver(net, {});
  solver.step(iters, [&](int, float loss) {
    if (losses != nullptr) losses->push_back(loss);
  });
  // Snapshot every learnable parameter.
  std::vector<float> out;
  for (const auto& p : net.learnable_params()) {
    const float* d = p->data();
    out.insert(out.end(), d, d + p->count());
  }
  return out;
}

TEST(ConvergenceInvariance, LenetBitIdenticalSerialVsGlp4nn) {
  // Batch 16 ≤ 32 → every sample owns a gradient slot → bit-identical for
  // any stream layout.
  Env serial;
  std::vector<float> serial_losses;
  const auto serial_w =
      train_and_snapshot(serial.ec, mc::models::lenet(16), 5, &serial_losses);

  GlpEnv glp;
  std::vector<float> glp_losses;
  const auto glp_w =
      train_and_snapshot(glp.ec, mc::models::lenet(16), 5, &glp_losses);

  EXPECT_EQ(serial_losses, glp_losses);
  EXPECT_EQ(glptest::max_abs_diff(serial_w, glp_w), 0.0);
}

TEST(ConvergenceInvariance, StrictReproBitIdenticalWithLargeBatch) {
  // Batch 48 > 32: slots are shared between samples; the strict-repro
  // scheduler restricts pools to divisors of 32 so slot order is
  // stream-stable → still bit-identical.
  Env serial;
  const auto serial_w =
      train_and_snapshot(serial.ec, mc::models::cifar10_quick(48), 3, nullptr);

  glp4nn::SchedulerOptions opts;
  opts.strict_repro = true;
  GlpEnv glp(gpusim::DeviceTable::p100(), opts);
  const auto glp_w =
      train_and_snapshot(glp.ec, mc::models::cifar10_quick(48), 3, nullptr);

  EXPECT_EQ(glptest::max_abs_diff(serial_w, glp_w), 0.0);
}

TEST(ConvergenceInvariance, FreeModeMatchesWithinFloatTolerance) {
  // Without strict-repro the gradient slot summation order can differ →
  // equal up to float reassociation (the paper's actual claim).
  Env serial;
  std::vector<float> serial_losses;
  const auto serial_w = train_and_snapshot(
      serial.ec, mc::models::cifar10_quick(48), 4, &serial_losses);

  GlpEnv glp;
  std::vector<float> glp_losses;
  const auto glp_w = train_and_snapshot(glp.ec, mc::models::cifar10_quick(48),
                                        4, &glp_losses);

  ASSERT_EQ(serial_losses.size(), glp_losses.size());
  for (std::size_t i = 0; i < serial_losses.size(); ++i) {
    EXPECT_NEAR(serial_losses[i], glp_losses[i], 1e-3 + 1e-3 * serial_losses[i]);
  }
  EXPECT_LT(glptest::max_abs_diff(serial_w, glp_w), 1e-2);
}

TEST(ConvergenceInvariance, ForwardPassBitIdenticalAnyStreams) {
  // Forward writes are disjoint per sample → bit-identical regardless of
  // stream count, even without strict mode.
  auto run = [](int streams) {
    Env env(gpusim::DeviceTable::p100(), streams);
    Net net(mc::models::cifar10_quick(40), env.ec);
    net.forward();
    env.sync();
    const mc::Blob* out = net.blob("ip2");
    return glptest::snapshot(out->data(), out->count());
  };
  const auto base = run(1);
  for (int streams : {2, 3, 5, 8}) {
    EXPECT_EQ(glptest::max_abs_diff(base, run(streams)), 0.0) << streams;
  }
}

TEST(ConvergenceInvariance, GoogLeNetDagBitIdenticalUnderBothEngines) {
  // Inter-operator DAG scheduling (branch overlap + fused elementwise
  // chains) must leave training bit-identical to the serial baseline, on
  // the optimized engine AND on ReferenceEngine (batch 8 ≤ 32 → the
  // bit-exact branch of the contract applies unconditionally).
  Env serial;
  std::vector<float> serial_losses;
  const auto serial_w = train_and_snapshot(
      serial.ec, mc::models::googlenet_tail(8), 3, &serial_losses);

  for (const gpusim::EngineKind kind :
       {gpusim::EngineKind::kOptimized, gpusim::EngineKind::kReference}) {
    scuda::Context ctx(gpusim::DeviceTable::p100(), kind);
    glp4nn::Glp4nnEngine engine{glp4nn::SchedulerOptions{}};
    mc::ExecContext ec;
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    ec.dag_schedule = true;
    std::vector<float> dag_losses;
    const auto dag_w = train_and_snapshot(
        ec, mc::models::googlenet_tail(8), 3, &dag_losses);
    EXPECT_EQ(serial_losses, dag_losses)
        << (kind == gpusim::EngineKind::kOptimized ? "optimized" : "reference");
    EXPECT_EQ(glptest::max_abs_diff(serial_w, dag_w), 0.0);
  }
}

TEST(ConvergenceInvariance, DagFusionOffStillBitIdentical) {
  // dag_fusion=false isolates the scheduling change from the fusion pass:
  // plain DAG issue (no epilogues, no coalesced chains) must also match.
  Env serial;
  std::vector<float> serial_losses;
  const auto serial_w = train_and_snapshot(
      serial.ec, mc::models::googlenet_tail(8), 2, &serial_losses);

  GlpEnv glp;
  glp.ec.dag_schedule = true;
  glp.ec.dag_fusion = false;
  std::vector<float> dag_losses;
  const auto dag_w = train_and_snapshot(
      glp.ec, mc::models::googlenet_tail(8), 2, &dag_losses);
  EXPECT_EQ(serial_losses, dag_losses);
  EXPECT_EQ(glptest::max_abs_diff(serial_w, dag_w), 0.0);
}

TEST(Determinism, Glp4nnRunsAreRepeatable) {
  auto run = [] {
    GlpEnv glp;
    std::vector<float> losses;
    train_and_snapshot(glp.ec, mc::models::lenet(16), 4, &losses);
    return losses;
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkAgnostic, AllFourPaperNetworksRunUnderGlp4nn) {
  for (const auto& [name, spec] : mc::models::paper_networks()) {
    GlpEnv glp(gpusim::DeviceTable::p100(), {}, kern::ComputeMode::kTimingOnly);
    Net net(spec, glp.ec);
    net.forward();
    net.backward();
    glp.sync();
    // At least one conv scope was profiled and decided.
    EXPECT_FALSE(glp.engine.analyzer_for(glp.ctx)->decisions().empty()) << name;
  }
}

TEST(NetworkAgnostic, CustomParsedNetworkRunsUnchanged) {
  // A net the framework has never seen, defined via the text format.
  const char* text = R"(
    name: "custom"
    layer { name: "data" type: "Data" top: "data" top: "label"
            dataset: "cifar10" batch_size: 12 }
    layer { name: "c1" type: "Convolution" bottom: "data" top: "c1"
            num_output: 8 kernel_size: 3 pad: 1 }
    layer { name: "t1" type: "TanH" bottom: "c1" top: "c1" }
    layer { name: "p1" type: "Pooling" bottom: "c1" top: "p1"
            pool: AVE kernel_size: 2 stride: 2 }
    layer { name: "ip" type: "InnerProduct" bottom: "p1" top: "ip"
            num_output: 10 }
    layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip" bottom: "label"
            top: "loss" }
  )";
  Env serial;
  GlpEnv glp;
  Net a(mc::parse_net_text(text), serial.ec);
  Net b(mc::parse_net_text(text), glp.ec);
  SgdSolver sa(a, {}), sb(b, {});
  sa.step(3);
  sb.step(3);
  EXPECT_EQ(sa.last_loss(), sb.last_loss());
}

TEST(Speedup, ConvHeavyNetFasterUnderGlp4nnSteadyState) {
  auto iteration_time = [](mc::ExecContext& ec, scuda::Context& ctx) {
    Net net(mc::models::cifar10_quick(100), ec);
    net.forward();
    net.backward();
    ctx.device().synchronize();  // warmup / profiling iteration
    const double t0 = ctx.device().host_now();
    for (int i = 0; i < 2; ++i) {
      net.forward();
      net.backward();
      ctx.device().synchronize();
    }
    return (ctx.device().host_now() - t0) / 2.0;
  };
  Env serial(gpusim::DeviceTable::p100(), 0, kern::ComputeMode::kTimingOnly);
  GlpEnv glp(gpusim::DeviceTable::p100(), {}, kern::ComputeMode::kTimingOnly);
  const double serial_ns = iteration_time(serial.ec, serial.ctx);
  const double glp_ns = iteration_time(glp.ec, glp.ctx);
  EXPECT_LT(glp_ns, serial_ns * 0.8) << "expected ≥1.25x speedup";
}

TEST(Overhead, OneTimeCostsAreTinyVsTraining) {
  // Table 6's claim: T_total / training time < 0.1% — here we assert the
  // structure (one-time, small) rather than the exact ratio.
  GlpEnv glp(gpusim::DeviceTable::p100(), {}, kern::ComputeMode::kTimingOnly);
  Net net(mc::models::cifar10_quick(100), glp.ec);
  net.forward();
  net.backward();
  glp.sync();
  const auto after_first = glp.engine.costs();
  EXPECT_GT(after_first.total_ms(), 0.0);

  for (int i = 0; i < 3; ++i) {
    net.forward();
    net.backward();
    glp.sync();
  }
  const auto after_four = glp.engine.costs();
  // No additional profiling or analysis after the first iteration.
  EXPECT_EQ(after_four.profiling_ms, after_first.profiling_ms);
  EXPECT_EQ(after_four.analysis_ms, after_first.analysis_ms);
}

TEST(Overhead, MemoryBreakdownMatchesFig10Structure) {
  GlpEnv glp(gpusim::DeviceTable::p100(), {}, kern::ComputeMode::kTimingOnly);
  Net net(mc::models::cifar10_quick(50), glp.ec);
  net.forward();
  net.backward();
  glp.sync();
  const auto costs = glp.engine.costs();
  EXPECT_GT(costs.mem_tt_bytes, 0u);
  EXPECT_GT(costs.mem_k_bytes, 0u);
  EXPECT_GT(costs.mem_cupti_bytes, costs.mem_tt_bytes + costs.mem_k_bytes);
  EXPECT_EQ(costs.total_bytes(),
            costs.mem_tt_bytes + costs.mem_k_bytes + costs.mem_cupti_bytes);
}

TEST(MultiGpu, TwoDevicesTrainIndependently) {
  // Fig. 5: GLP4NN supports multiple GPUs sharing a tracker/stream
  // manager with private analyzers/schedulers. Data-parallel replicas on
  // two different devices must both converge and get device-specific
  // stream decisions.
  // NB: devices must outlive the engine (it holds their stream pools).
  scuda::Context gpu_a(gpusim::DeviceTable::p100());
  scuda::Context gpu_b(gpusim::DeviceTable::k40c());
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ec_a, ec_b;
  ec_a.ctx = &gpu_a;
  ec_a.dispatcher = &engine.scheduler_for(gpu_a);
  ec_b.ctx = &gpu_b;
  ec_b.dispatcher = &engine.scheduler_for(gpu_b);

  Net net_a(mc::models::lenet(8), ec_a);
  Net net_b(mc::models::lenet(8), ec_b);
  SgdSolver sa(net_a, {}), sb(net_b, {});
  sa.step(2);
  sb.step(2);
  EXPECT_EQ(sa.last_loss(), sb.last_loss());  // identical data/seeds

  // Device-private analyzers may reach different stream counts.
  const auto* da = engine.analyzer_for(gpu_a);
  const auto* db = engine.analyzer_for(gpu_b);
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_FALSE(da->decisions().empty());
  EXPECT_FALSE(db->decisions().empty());
}

TEST(Glp4nnEngine, CostsAggregateAcrossDevices) {
  scuda::Context a(gpusim::DeviceTable::p100());
  scuda::Context b(gpusim::DeviceTable::titan_xp());
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ea, eb;
  ea.ctx = &a;
  ea.dispatcher = &engine.scheduler_for(a);
  ea.mode = kern::ComputeMode::kTimingOnly;
  eb.ctx = &b;
  eb.dispatcher = &engine.scheduler_for(b);
  eb.mode = kern::ComputeMode::kTimingOnly;
  Net na(mc::models::lenet(8), ea);
  Net nb(mc::models::lenet(8), eb);
  na.forward();
  nb.forward();
  a.device().synchronize();
  b.device().synchronize();
  const auto costs = engine.costs();
  EXPECT_GT(costs.analysis_ms, 0.0);
  EXPECT_GT(costs.mem_cupti_bytes, 2 * scupti::ActivityApi::kRuntimeArenaBytes);
}

}  // namespace
