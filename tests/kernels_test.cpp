#include <gtest/gtest.h>

#include "common/check.hpp"

#include "kernels/blas.hpp"
#include "kernels/nn.hpp"

namespace {

using kern::ComputeMode;
using kern::Launcher;

struct Fixture : ::testing::Test {
  Fixture() : ctx(gpusim::DeviceTable::p100()) {
    launcher.ctx = &ctx;
    launcher.mode = ComputeMode::kNumeric;
    ctx.device().timeline().set_enabled(true);
  }
  scuda::Context ctx;
  Launcher launcher;

  const gpusim::KernelRecord& last_record() {
    ctx.device().synchronize();
    const auto& recs = ctx.device().timeline().kernels();
    EXPECT_FALSE(recs.empty());
    return recs.back();
  }
};

// --- launch heuristics -------------------------------------------------------------

TEST(GemmTile, SelectionBySize) {
  EXPECT_STREQ(kern::select_gemm_tile(256, 256).tag, "128x128");
  EXPECT_STREQ(kern::select_gemm_tile(96, 729).tag, "64x64");
  EXPECT_STREQ(kern::select_gemm_tile(20, 576).tag, "32x32");
  EXPECT_STREQ(kern::select_gemm_tile(1, 1).tag, "32x32");
}

TEST_F(Fixture, SgemmLaunchConfigMatchesTile) {
  std::vector<float> a(96 * 25), b(25 * 729), c(96 * 729);
  kern::sgemm(launcher, false, false, 96, 729, 25, 1.0f, a.data(), 25, b.data(),
              729, 0.0f, c.data(), 729);
  const auto& rec = last_record();
  EXPECT_EQ(rec.name, "sgemm_64x64_nn");
  EXPECT_EQ(rec.config.grid.y, 2u);   // ceil(96/64)
  EXPECT_EQ(rec.config.grid.x, 12u);  // ceil(729/64)
  EXPECT_EQ(rec.config.block.x, 128u);
  EXPECT_EQ(rec.config.regs_per_thread, 90);
  EXPECT_EQ(rec.config.smem_static_bytes, 8u * 1024u);
}

TEST_F(Fixture, Im2colConfigMatchesCaffe) {
  // One thread per (channel, output pixel); 256-thread blocks; 33 regs —
  // the exact configuration quoted in the paper's workflow example.
  std::vector<float> im(3 * 32 * 32), col(3 * 25 * 32 * 32);
  kern::im2col(launcher, im.data(), 3, 32, 32, 5, 5, 2, 2, 1, 1, col.data());
  const auto& rec = last_record();
  EXPECT_EQ(rec.name, "im2col_gpu_kernel");
  EXPECT_EQ(rec.config.block.x, 256u);
  EXPECT_EQ(rec.config.regs_per_thread, 33);
  EXPECT_EQ(rec.config.grid.x, 12u);  // ceil(3*32*32 / 256)
}

TEST_F(Fixture, NamePrefixScopesKernels) {
  Launcher scoped = launcher.with_prefix("conv1/fwd");
  std::vector<float> x(64);
  kern::sfill(scoped, 64, 0.0f, x.data());
  EXPECT_EQ(last_record().name, "conv1/fwd/fill_kernel");
}

TEST_F(Fixture, WithStreamRoutesLaunch) {
  const auto s = ctx.device().create_stream();
  std::vector<float> x(64);
  kern::sfill(launcher.with_stream(s), 64, 1.0f, x.data());
  EXPECT_EQ(last_record().stream, s);
}

// --- numeric vs timing-only --------------------------------------------------------

TEST_F(Fixture, TimingOnlySkipsMath) {
  std::vector<float> x(16, 1.0f);
  Launcher timing = launcher;
  timing.mode = ComputeMode::kTimingOnly;
  kern::sscal(timing, 16, 5.0f, x.data());
  ctx.device().synchronize();
  EXPECT_FLOAT_EQ(x[0], 1.0f);  // untouched
  kern::sscal(launcher, 16, 5.0f, x.data());
  ctx.device().synchronize();
  EXPECT_FLOAT_EQ(x[0], 5.0f);
}

TEST_F(Fixture, TimingOnlyStillSimulatesDuration) {
  Launcher timing = launcher;
  timing.mode = ComputeMode::kTimingOnly;
  std::vector<float> x(1 << 16);
  const double before = ctx.device().device_now();
  kern::sfill(timing, x.size(), 0.0f, x.data());
  ctx.device().synchronize();
  EXPECT_GT(ctx.device().device_now(), before);
}

// --- numeric wrappers ------------------------------------------------------------------

TEST_F(Fixture, SgemmComputes) {
  std::vector<float> a = {1, 2, 3, 4};       // 2x2
  std::vector<float> b = {5, 6, 7, 8};       // 2x2
  std::vector<float> c = {0, 0, 0, 0};
  kern::sgemm(launcher, false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2,
              0.0f, c.data(), 2);
  ctx.device().synchronize();
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST_F(Fixture, SgemvComputesBothTransposes) {
  // A = [[1,2,3],[4,5,6]] (2x3), x3 = [1,1,1], x2 = [1,1].
  std::vector<float> a = {1, 2, 3, 4, 5, 6};
  std::vector<float> x3 = {1, 1, 1}, x2 = {1, 1};
  std::vector<float> y2 = {10, 20}, y3 = {0, 0, 0};
  kern::sgemv(launcher, false, 2, 3, 1.0f, a.data(), 3, x3.data(), 1.0f, y2.data());
  kern::sgemv(launcher, true, 2, 3, 2.0f, a.data(), 3, x2.data(), 0.0f, y3.data());
  ctx.device().synchronize();
  EXPECT_EQ(y2, (std::vector<float>{16, 35}));       // y += A·x
  EXPECT_EQ(y3, (std::vector<float>{10, 14, 18}));   // y = 2·Aᵀ·x
}

TEST_F(Fixture, SaxpySscalSfill) {
  std::vector<float> x = {1, 1}, y = {1, 2};
  kern::saxpy(launcher, 2, 3.0f, x.data(), y.data());
  kern::sscal(launcher, 2, 2.0f, y.data());
  ctx.device().synchronize();
  EXPECT_EQ(y, (std::vector<float>{8, 10}));
  kern::sfill(launcher, 2, 0.5f, y.data());
  ctx.device().synchronize();
  EXPECT_EQ(y, (std::vector<float>{0.5f, 0.5f}));
}

TEST_F(Fixture, SgdUpdateAppliesMomentum) {
  std::vector<float> grad = {1.0f}, hist = {0.5f}, param = {10.0f};
  kern::sgd_update(launcher, 1, 0.1f, 0.9f, grad.data(), hist.data(), param.data());
  ctx.device().synchronize();
  EXPECT_FLOAT_EQ(hist[0], 0.9f * 0.5f + 0.1f * 1.0f);
  EXPECT_FLOAT_EQ(param[0], 10.0f - hist[0]);
}

TEST_F(Fixture, ReduceLanesKernel) {
  std::vector<float> src = {1, 2, 10, 20, 100, 200};
  std::vector<float> dst = {0, 0};
  kern::reduce_lanes(launcher, 3, 2, src.data(), dst.data());
  ctx.device().synchronize();
  EXPECT_EQ(dst, (std::vector<float>{111, 222}));
}

TEST_F(Fixture, CopyAndAddSlab) {
  // 2 rows x 2 cols from a stride-3 source into a stride-4 dest.
  std::vector<float> src = {1, 2, 9, 3, 4, 9};
  std::vector<float> dst(8, 0.0f);
  kern::copy_slab(launcher, 2, 2, src.data(), 3, dst.data(), 4);
  ctx.device().synchronize();
  EXPECT_EQ(dst, (std::vector<float>{1, 2, 0, 0, 3, 4, 0, 0}));
  kern::add_slab(launcher, 2, 2, src.data(), 3, dst.data(), 4);
  ctx.device().synchronize();
  EXPECT_EQ(dst[0], 2.0f);
  EXPECT_EQ(dst[5], 8.0f);
}

// --- dispatchers ----------------------------------------------------------------------

TEST(FixedStreamDispatcher, RoundRobinLanes) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::FixedStreamDispatcher d(ctx, 3);
  EXPECT_EQ(d.max_lanes(), 3);
  d.begin_scope("s", 7);
  const auto l0 = d.task_lane(0);
  const auto l3 = d.task_lane(3);
  const auto l5 = d.task_lane(5);
  EXPECT_EQ(l0.lane, 0);
  EXPECT_EQ(l3.lane, 0);
  EXPECT_EQ(l0.stream, l3.stream);
  EXPECT_EQ(l5.lane, 2);
  d.end_scope();
}

TEST(FixedStreamDispatcher, ScopesMustNotNest) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::FixedStreamDispatcher d(ctx, 2);
  d.begin_scope("a", 1);
  EXPECT_THROW(d.begin_scope("b", 1), glp::InvalidArgument);
  d.end_scope();
  EXPECT_THROW(d.end_scope(), glp::InvalidArgument);
}

TEST(FixedStreamDispatcher, RejectsNonPositivePool) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  EXPECT_THROW(kern::FixedStreamDispatcher(ctx, 0), glp::InvalidArgument);
}

TEST(SerialDispatcher, AlwaysDefaultStream) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::SerialDispatcher d(ctx);
  d.begin_scope("s", 100);
  for (std::size_t i : {0u, 5u, 99u}) {
    EXPECT_EQ(d.task_lane(i).stream, gpusim::kDefaultStream);
    EXPECT_EQ(d.task_lane(i).lane, 0);
  }
  d.end_scope();
  EXPECT_EQ(d.max_lanes(), 1);
}

TEST(FixedStreamDispatcher, EndScopeOrdersLaterDefaultWork) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::FixedStreamDispatcher d(ctx, 2);
  std::vector<int> order;
  gpusim::LaunchConfig cfg;
  cfg.grid = {8, 1, 1};
  cfg.block = {256, 1, 1};
  d.begin_scope("s", 2);
  for (int i = 0; i < 2; ++i) {
    ctx.device().launch_kernel(d.task_lane(static_cast<std::size_t>(i)).stream,
                               "w", cfg, {1e8, 1e7}, [&order] { order.push_back(0); });
  }
  d.end_scope();
  ctx.device().launch_kernel(gpusim::kDefaultStream, "after", cfg, {1e3, 1e3},
                             [&order] { order.push_back(1); });
  ctx.device().synchronize();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 1);  // "after" observed the whole scope
}

}  // namespace
