// Integration: one network touching (nearly) every layer type in the zoo,
// trained under the serial baseline and under GLP4NN — outputs must agree
// bit for bit (batch ≤ 32 ⇒ exact gradient-slot determinism). This is the
// strongest network-agnosticism check in the suite: profiling, analysis
// and concurrent dispatch must cope with a graph the framework authors
// never anticipated.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "minicaffe/net_parser.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"

namespace {

constexpr const char* kKitchenSink = R"(
name: "kitchen_sink"
layer { name: "data" type: "Data" top: "data" top: "label"
        dataset: "cifar10" batch_size: 6 shuffle: true }

# conv trunk with groups + batch norm + scale + prelu
layer { name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
        num_output: 8 kernel_size: 3 pad: 1 group: 1
        weight_filler { type: "gaussian" std: 0.1 } }
layer { name: "bn1" type: "BatchNorm" bottom: "conv1" top: "bn1" }
layer { name: "scale1" type: "Scale" bottom: "bn1" top: "scale1"
        scale_bias_term: true }
layer { name: "prelu1" type: "PReLU" bottom: "scale1" top: "act1" }
layer { name: "pool1" type: "Pooling" bottom: "act1" top: "pool1"
        pool: MAX kernel_size: 2 stride: 2 }

# grouped conv + lrn
layer { name: "conv2" type: "Convolution" bottom: "pool1" top: "conv2"
        num_output: 8 kernel_size: 3 pad: 1 group: 2
        weight_filler { type: "gaussian" std: 0.1 } }
layer { name: "lrn2" type: "LRN" bottom: "conv2" top: "lrn2" local_size: 3 }

# slice into two branches, different activations, eltwise-merge
layer { name: "slice" type: "Slice" bottom: "lrn2" top: "sa" top: "sb" }
layer { name: "act_a" type: "TanH" bottom: "sa" top: "sa" }
layer { name: "act_b" type: "AbsVal" bottom: "sb" top: "ab" }
layer { name: "merge" type: "Eltwise" bottom: "sa" bottom: "ab" top: "merged"
        operation: SUM coeff: 0.7 coeff: 0.3 }

# deconv upsample then pool back down, power + dropout
layer { name: "up" type: "Deconvolution" bottom: "merged" top: "up"
        num_output: 4 kernel_size: 2 stride: 2
        weight_filler { type: "gaussian" std: 0.1 } }
layer { name: "power" type: "Power" bottom: "up" top: "pw"
        power: 1 power_scale: 0.5 power_shift: 0.1 }
layer { name: "pool2" type: "Pooling" bottom: "pw" top: "pool2"
        pool: AVE kernel_size: 4 stride: 4 }
layer { name: "drop" type: "Dropout" bottom: "pool2" top: "pool2"
        dropout_ratio: 0.2 }

# concat with a parallel 1x1 path off the merge
layer { name: "side" type: "Convolution" bottom: "merged" top: "side"
        num_output: 2 kernel_size: 1
        weight_filler { type: "xavier" } }
layer { name: "relu_s" type: "ReLU" bottom: "side" top: "side" }
layer { name: "pool_s" type: "Pooling" bottom: "side" top: "pool_s"
        pool: MAX kernel_size: 2 stride: 2 }
layer { name: "cat" type: "Concat" bottom: "pool2" bottom: "pool_s" top: "cat" }

# heads: flatten -> ip -> softmax loss, plus sigmoid-CE on a reduction
layer { name: "flat" type: "Flatten" bottom: "cat" top: "flat" }
layer { name: "ip1" type: "InnerProduct" bottom: "flat" top: "ip1"
        num_output: 12 weight_filler { type: "xavier" } }
layer { name: "sig" type: "Sigmoid" bottom: "ip1" top: "sig" }
layer { name: "ip2" type: "InnerProduct" bottom: "sig" top: "ip2"
        num_output: 10 weight_filler { type: "xavier" } }
layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip2" bottom: "label"
        top: "loss" }
layer { name: "acc" type: "Accuracy" bottom: "ip2" bottom: "label" top: "acc" }
layer { name: "argmax" type: "ArgMax" bottom: "ip2" top: "argmax" }
)";

std::vector<float> train(bool use_glp4nn, int iters) {
  std::unique_ptr<glptest::Env> env;
  std::unique_ptr<glptest::GlpEnv> glp_env;
  mc::ExecContext* ec = nullptr;
  if (use_glp4nn) {
    glp_env = std::make_unique<glptest::GlpEnv>();
    ec = &glp_env->ec;
  } else {
    env = std::make_unique<glptest::Env>();
    ec = &env->ec;
  }
  mc::Net net(mc::parse_net_text(kKitchenSink), *ec);
  mc::SolverParams p;
  p.base_lr = 0.002f;
  p.momentum = 0.9f;
  mc::SgdSolver solver(net, p);
  std::vector<float> out;
  solver.step(iters, [&](int, float loss) { out.push_back(loss); });
  for (const auto& param : net.learnable_params()) {
    out.insert(out.end(), param->data(), param->data() + param->count());
  }
  return out;
}

TEST(KitchenSink, ParsesBuildsAndTrains) {
  glptest::Env env;
  mc::Net net(mc::parse_net_text(kKitchenSink), env.ec);
  EXPECT_GT(net.learnable_params().size(), 8u);  // convs, bn stats, scale, prelu, ips
  net.forward();
  const float loss = net.total_loss();
  EXPECT_TRUE(std::isfinite(loss));
  net.backward();
  env.sync();
}

TEST(KitchenSink, SerialAndGlp4nnBitIdentical) {
  const auto serial = train(false, 3);
  const auto glp = train(true, 3);
  ASSERT_EQ(serial.size(), glp.size());
  EXPECT_EQ(glptest::max_abs_diff(serial, glp), 0.0);
}

TEST(KitchenSink, SurvivesSerializerRoundTrip) {
  const mc::NetSpec original = mc::parse_net_text(kKitchenSink);
  const mc::NetSpec reparsed = mc::parse_net_text(mc::net_to_text(original));
  ASSERT_EQ(reparsed.layers.size(), original.layers.size());
  // Spot-check the fields the extended serialiser must preserve.
  auto find = [&](const std::string& name) -> const mc::LayerSpec& {
    for (const auto& l : reparsed.layers) {
      if (l.name == name) return l;
    }
    throw glp::InvalidArgument("missing layer " + name);
  };
  EXPECT_EQ(find("conv2").params.group, 2);
  EXPECT_EQ(find("merge").params.eltwise, mc::EltwiseOp::kSum);
  ASSERT_EQ(find("merge").params.eltwise_coeffs.size(), 2u);
  EXPECT_FLOAT_EQ(find("merge").params.eltwise_coeffs[0], 0.7f);
  EXPECT_FLOAT_EQ(find("power").params.power_scale, 0.5f);
  EXPECT_TRUE(find("scale1").params.scale_bias_term);

  // And the round-tripped net still trains identically.
  glptest::Env a, b;
  mc::Net net_a(original, a.ec);
  mc::Net net_b(reparsed, b.ec);
  mc::SgdSolver sa(net_a, {}), sb(net_b, {});
  sa.step(2);
  sb.step(2);
  EXPECT_EQ(sa.last_loss(), sb.last_loss());
}

}  // namespace
