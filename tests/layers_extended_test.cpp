// Tests for the extended layer zoo: Softmax, Eltwise, Power, AbsVal, Exp,
// PReLU, Slice, Flatten, Scale, BatchNorm, ArgMax, Reduction.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "kernels/cpu_math.hpp"
#include "minicaffe/layer.hpp"
#include "minicaffe/layers/structure_layers.hpp"
#include "minicaffe/net_parser.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using glptest::GradientChecker;
using mc::Blob;
using mc::LayerSpec;

LayerSpec spec_of(std::string type, std::vector<std::string> bottoms = {"in"},
                  std::vector<std::string> tops = {"out"}) {
  LayerSpec s;
  s.type = std::move(type);
  s.name = "test";
  s.bottoms = std::move(bottoms);
  s.tops = std::move(tops);
  return s;
}

struct ExtLayerTest : ::testing::Test {
  Env env;
  glp::Rng rng{77};
};

// --- Softmax -----------------------------------------------------------------

TEST_F(ExtLayerTest, SoftmaxForwardRowsSumToOne) {
  auto layer = mc::create_layer(spec_of("Softmax"), env.ec);
  Blob in(env.ctx, {3, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -3, 3);
  layer->forward({&in}, {&out});
  env.sync();
  for (int r = 0; r < 3; ++r) {
    double s = 0;
    for (int j = 0; j < 6; ++j) s += out.data()[r * 6 + j];
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST_F(ExtLayerTest, SoftmaxGradients) {
  auto layer = mc::create_layer(spec_of("Softmax"), env.ec);
  Blob in(env.ctx, {3, 5}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -1, 1);
  GradientChecker checker(1e-2, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
}

// --- Eltwise -----------------------------------------------------------------

TEST_F(ExtLayerTest, EltwiseSumWithCoefficients) {
  LayerSpec s = spec_of("Eltwise", {"a", "b"});
  s.params.eltwise = mc::EltwiseOp::kSum;
  s.params.eltwise_coeffs = {2.0f, -1.0f};
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 3}), b(env.ctx, {2, 3}), out(env.ctx);
  layer->setup({&a, &b}, {&out});
  for (int i = 0; i < 6; ++i) {
    a.mutable_data()[i] = static_cast<float>(i);
    b.mutable_data()[i] = 1.0f;
  }
  layer->forward({&a, &b}, {&out});
  env.sync();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(out.data()[i], 2.0f * i - 1.0f);
}

TEST_F(ExtLayerTest, EltwiseSumGradients) {
  LayerSpec s = spec_of("Eltwise", {"a", "b"});
  s.params.eltwise_coeffs = {0.5f, 2.0f};
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 4}), b(env.ctx, {2, 4}), out(env.ctx);
  layer->setup({&a, &b}, {&out});
  glptest::fill_random(a, rng);
  glptest::fill_random(b, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&a, &b}, {&out}, 0);
  checker.check(env, *layer, {&a, &b}, {&out}, 1);
}

TEST_F(ExtLayerTest, EltwiseProdGradients) {
  LayerSpec s = spec_of("Eltwise", {"a", "b", "c"});
  s.params.eltwise = mc::EltwiseOp::kProd;
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 3}), b(env.ctx, {2, 3}), c(env.ctx, {2, 3}), out(env.ctx);
  layer->setup({&a, &b, &c}, {&out});
  glptest::fill_random(a, rng, 0.5f, 1.5f);
  glptest::fill_random(b, rng, 0.5f, 1.5f);
  glptest::fill_random(c, rng, 0.5f, 1.5f);
  GradientChecker checker;
  checker.check(env, *layer, {&a, &b, &c}, {&out}, 1);
}

TEST_F(ExtLayerTest, EltwiseMaxRoutesGradientToWinner) {
  LayerSpec s = spec_of("Eltwise", {"a", "b"});
  s.params.eltwise = mc::EltwiseOp::kMax;
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {1, 2}), b(env.ctx, {1, 2}), out(env.ctx);
  layer->setup({&a, &b}, {&out});
  a.mutable_data()[0] = 5.0f;
  a.mutable_data()[1] = 0.0f;
  b.mutable_data()[0] = 1.0f;
  b.mutable_data()[1] = 9.0f;
  layer->forward({&a, &b}, {&out});
  env.sync();
  EXPECT_FLOAT_EQ(out.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 9.0f);

  out.mutable_diff()[0] = 1.0f;
  out.mutable_diff()[1] = 1.0f;
  std::fill(a.mutable_diff(), a.mutable_diff() + 2, 0.0f);
  std::fill(b.mutable_diff(), b.mutable_diff() + 2, 0.0f);
  layer->backward({&out}, {true, true}, {&a, &b});
  env.sync();
  EXPECT_FLOAT_EQ(a.diff()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.diff()[1], 0.0f);
  EXPECT_FLOAT_EQ(b.diff()[1], 1.0f);
}

TEST_F(ExtLayerTest, EltwiseRejectsMismatchedCounts) {
  auto layer = mc::create_layer(spec_of("Eltwise", {"a", "b"}), env.ec);
  Blob a(env.ctx, {2, 3}), b(env.ctx, {2, 4}), out(env.ctx);
  EXPECT_THROW(layer->setup({&a, &b}, {&out}), glp::InvalidArgument);
}

// --- Power / AbsVal / Exp -------------------------------------------------------

TEST_F(ExtLayerTest, PowerForwardAndGradients) {
  LayerSpec s = spec_of("Power");
  s.params.power = 2.0f;
  s.params.power_scale = 3.0f;
  s.params.power_shift = 1.0f;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 4}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, 0.1f, 1.0f);
  layer->forward({&in}, {&out});
  env.sync();
  for (std::size_t i = 0; i < in.count(); ++i) {
    const float v = 1.0f + 3.0f * in.data()[i];
    EXPECT_NEAR(out.data()[i], v * v, 1e-4);
  }
  GradientChecker checker(1e-3, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(ExtLayerTest, AbsValGradients) {
  auto layer = mc::create_layer(spec_of("AbsVal"), env.ec);
  Blob in(env.ctx, {3, 5}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  // Keep away from the kink at zero.
  for (std::size_t i = 0; i < in.count(); ++i) {
    if (std::abs(in.data()[i]) < 0.1f) in.mutable_data()[i] += 0.3f;
  }
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(ExtLayerTest, ExpGradients) {
  auto layer = mc::create_layer(spec_of("Exp"), env.ec);
  Blob in(env.ctx, {2, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -1.0f, 1.0f);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

// --- PReLU -----------------------------------------------------------------------

TEST_F(ExtLayerTest, PReLUForwardUsesPerChannelSlopes) {
  auto layer = mc::create_layer(spec_of("PReLU"), env.ec);
  Blob in(env.ctx, {1, 2, 1, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  layer->param_blobs()[0]->mutable_data()[0] = 0.1f;
  layer->param_blobs()[0]->mutable_data()[1] = 0.5f;
  const float vals[] = {-1.0f, 2.0f, -4.0f, 3.0f};
  std::copy(vals, vals + 4, in.mutable_data());
  layer->forward({&in}, {&out});
  env.sync();
  EXPECT_FLOAT_EQ(out.data()[0], -0.1f);
  EXPECT_FLOAT_EQ(out.data()[1], 2.0f);
  EXPECT_FLOAT_EQ(out.data()[2], -2.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 3.0f);
}

TEST_F(ExtLayerTest, PReLUGradients) {
  auto layer = mc::create_layer(spec_of("PReLU"), env.ec);
  Blob in(env.ctx, {2, 3, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  for (std::size_t i = 0; i < in.count(); ++i) {
    if (std::abs(in.data()[i]) < 0.1f) in.mutable_data()[i] += 0.3f;
  }
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, /*param=*/0);
}

// --- Slice / Flatten ---------------------------------------------------------------

TEST_F(ExtLayerTest, SliceSplitsChannelsAtPoints) {
  LayerSpec s = spec_of("Slice", {"in"}, {"t0", "t1", "t2"});
  s.params.slice_points = {1, 3};
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 5, 2, 2}), t0(env.ctx), t1(env.ctx), t2(env.ctx);
  layer->setup({&in}, {&t0, &t1, &t2});
  EXPECT_EQ(t0.channels(), 1);
  EXPECT_EQ(t1.channels(), 2);
  EXPECT_EQ(t2.channels(), 2);
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&t0, &t1, &t2});
  env.sync();
  // t1 sample 1, channel 0 == in sample 1, channel 1.
  EXPECT_EQ(t1.data()[(1 * 2 + 0) * 4 + 3], in.data()[(1 * 5 + 1) * 4 + 3]);
}

TEST_F(ExtLayerTest, SliceEqualPartsAndRoundTripWithBackward) {
  LayerSpec s = spec_of("Slice", {"in"}, {"t0", "t1"});
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 4, 3, 3}), t0(env.ctx), t1(env.ctx);
  layer->setup({&in}, {&t0, &t1});
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&t0, &t1});
  env.sync();
  // Backward of all-ones top diffs → all-ones bottom diff.
  std::fill(t0.mutable_diff(), t0.mutable_diff() + t0.count(), 1.0f);
  std::fill(t1.mutable_diff(), t1.mutable_diff() + t1.count(), 1.0f);
  std::fill(in.mutable_diff(), in.mutable_diff() + in.count(), 0.0f);
  layer->backward({&t0, &t1}, {true}, {&in});
  env.sync();
  for (std::size_t i = 0; i < in.count(); ++i) {
    ASSERT_EQ(in.diff()[i], 1.0f);
  }
}

TEST_F(ExtLayerTest, SliceRejectsBadPoints) {
  LayerSpec s = spec_of("Slice", {"in"}, {"t0", "t1"});
  s.params.slice_points = {7};  // outside 4 channels
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 4, 2, 2}), t0(env.ctx), t1(env.ctx);
  EXPECT_THROW(layer->setup({&in}, {&t0, &t1}), glp::InvalidArgument);
}

TEST_F(ExtLayerTest, FlattenShapesAndGradients) {
  auto layer = mc::create_layer(spec_of("Flatten"), env.ec);
  Blob in(env.ctx, {3, 2, 4, 4}), out(env.ctx);
  layer->setup({&in}, {&out});
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 32}));
  glptest::fill_random(in, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0, -1, 16);
}

// --- Scale / BatchNorm ----------------------------------------------------------------

TEST_F(ExtLayerTest, ScaleForward) {
  LayerSpec s = spec_of("Scale");
  s.params.scale_bias_term = true;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 2, 1, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  ASSERT_EQ(layer->param_blobs().size(), 2u);
  layer->param_blobs()[0]->mutable_data()[0] = 2.0f;
  layer->param_blobs()[0]->mutable_data()[1] = -1.0f;
  layer->param_blobs()[1]->mutable_data()[0] = 0.5f;
  layer->param_blobs()[1]->mutable_data()[1] = 0.0f;
  const float vals[] = {1, 2, 3, 4};
  std::copy(vals, vals + 4, in.mutable_data());
  layer->forward({&in}, {&out});
  env.sync();
  EXPECT_FLOAT_EQ(out.data()[0], 2.5f);
  EXPECT_FLOAT_EQ(out.data()[1], 4.5f);
  EXPECT_FLOAT_EQ(out.data()[2], -3.0f);
  EXPECT_FLOAT_EQ(out.data()[3], -4.0f);
}

TEST_F(ExtLayerTest, ScaleGradients) {
  LayerSpec s = spec_of("Scale");
  s.params.scale_bias_term = true;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 3, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 1);
}

TEST_F(ExtLayerTest, BatchNormNormalisesChannels) {
  auto layer = mc::create_layer(spec_of("BatchNorm"), env.ec);
  Blob in(env.ctx, {4, 2, 3, 3}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -2, 5);
  layer->forward({&in}, {&out});
  env.sync();
  // Per channel: mean ≈ 0, variance ≈ 1 over (N, H, W).
  const int spatial = 9, num = 4, channels = 2;
  for (int c = 0; c < channels; ++c) {
    double sum = 0, sq = 0;
    for (int n = 0; n < num; ++n) {
      for (int i = 0; i < spatial; ++i) {
        const float v = out.data()[(n * channels + c) * spatial + i];
        sum += v;
        sq += v * v;
      }
    }
    const double m = sum / (num * spatial);
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(sq / (num * spatial) - m * m, 1.0, 1e-2);
  }
}

TEST_F(ExtLayerTest, BatchNormGradients) {
  auto layer = mc::create_layer(spec_of("BatchNorm"), env.ec);
  Blob in(env.ctx, {3, 2, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -1, 1);
  GradientChecker checker(1e-2, 3e-2);
  checker.check(env, *layer, {&in}, {&out}, 0, -1, 24);
}

TEST_F(ExtLayerTest, BatchNormGlobalStatsUseMovingAverages) {
  LayerSpec s = spec_of("BatchNorm");
  auto train_layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {4, 2, 2, 2}), out(env.ctx);
  train_layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, 1.0f, 3.0f);
  // A few training passes accumulate moving statistics.
  for (int i = 0; i < 3; ++i) {
    train_layer->forward({&in}, {&out});
    env.sync();
  }
  // Inference layer sharing the same stats blobs.
  LayerSpec g = s;
  g.params.use_global_stats = true;
  auto infer_layer = mc::create_layer(g, env.ec);
  Blob out2(env.ctx);
  infer_layer->setup({&in}, {&out2});
  for (std::size_t i = 0; i < train_layer->param_blobs().size(); ++i) {
    infer_layer->share_param(i, train_layer->param_blobs()[i]);
  }
  infer_layer->forward({&in}, {&out2});
  env.sync();
  // Same input distribution → outputs close to the batch-stat version.
  double max_diff = 0;
  for (std::size_t i = 0; i < out.count(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(out.data()[i]) - out2.data()[i]));
  }
  EXPECT_LT(max_diff, 0.2);
}

// --- ArgMax / Reduction ---------------------------------------------------------------

TEST_F(ExtLayerTest, ArgMaxPicksLargestFeature) {
  auto layer = mc::create_layer(spec_of("ArgMax"), env.ec);
  Blob in(env.ctx, {2, 4}), out(env.ctx);
  layer->setup({&in}, {&out});
  const float vals[] = {0, 3, 1, 2, /*row 1*/ 9, 0, 0, 0};
  std::copy(vals, vals + 8, in.mutable_data());
  layer->forward({&in}, {&out});
  env.sync();
  EXPECT_FLOAT_EQ(out.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 0.0f);
  EXPECT_FALSE(layer->has_backward());
}

TEST_F(ExtLayerTest, ReductionSumAndMean) {
  for (bool mean : {false, true}) {
    LayerSpec s = spec_of("Reduction");
    s.params.reduction_mean = mean;
    auto layer = mc::create_layer(s, env.ec);
    Blob in(env.ctx, {2, 4}), out(env.ctx);
    layer->setup({&in}, {&out});
    for (int i = 0; i < 8; ++i) in.mutable_data()[i] = static_cast<float>(i);
    layer->forward({&in}, {&out});
    env.sync();
    EXPECT_FLOAT_EQ(out.data()[0], mean ? 1.5f : 6.0f);
    EXPECT_FLOAT_EQ(out.data()[1], mean ? 5.5f : 22.0f);
  }
}

TEST_F(ExtLayerTest, ReductionGradients) {
  LayerSpec s = spec_of("Reduction");
  s.params.reduction_mean = true;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {3, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

// --- Deconvolution ---------------------------------------------------------------------

TEST_F(ExtLayerTest, DeconvolutionOutputShapeInvertsConvolution) {
  LayerSpec s = spec_of("Deconvolution");
  s.params.num_output = 3;
  s.params.kernel_size = 4;
  s.params.stride = 2;
  s.params.pad = 1;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 5, 6, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  // stride*(H-1) + k - 2*pad = 2*5 + 4 - 2 = 12 — the classic 2x upsampler.
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 3, 12, 12}));
}

TEST_F(ExtLayerTest, DeconvolutionIsAdjointOfConvolution) {
  // <conv(x), y> == <x, deconv(y)> when deconv uses conv's weights
  // (bias off): transposed convolution is the adjoint map.
  const int kC = 3, kCo = 4, kH = 7, kK = 3;
  LayerSpec cs = spec_of("Convolution");
  cs.params.num_output = kCo;
  cs.params.kernel_size = kK;
  cs.params.stride = 2;
  cs.params.bias_term = false;
  auto conv = mc::create_layer(cs, env.ec);
  Blob x(env.ctx, {1, kC, kH, kH}), conv_out(env.ctx);
  conv->setup({&x}, {&conv_out});

  LayerSpec ds = spec_of("Deconvolution");
  ds.params.num_output = kC;
  ds.params.kernel_size = kK;
  ds.params.stride = 2;
  ds.params.bias_term = false;
  auto deconv = mc::create_layer(ds, env.ec);
  // Deconv input shape = the conv output shape (1, kCo, 3, 3 for kH=7,
  // k=3, stride=2).
  Blob y(env.ctx, {1, kCo, 3, 3}), deconv_out(env.ctx);
  deconv->setup({&y}, {&deconv_out});
  ASSERT_EQ(deconv_out.height(), kH);
  ASSERT_EQ(conv_out.height(), 3);
  // Conv weights are [kCo, kC·k·k]; deconv weights are [channels_in=kCo,
  // kernel_dim=kC·k·k] — identical layout, so they can be copied across.
  ASSERT_EQ(conv->param_blobs()[0]->count(), deconv->param_blobs()[0]->count());
  std::copy(conv->param_blobs()[0]->data(),
            conv->param_blobs()[0]->data() + conv->param_blobs()[0]->count(),
            deconv->param_blobs()[0]->mutable_data());

  glptest::fill_random(x, rng);
  glptest::fill_random(y, rng);
  conv->forward({&x}, {&conv_out});
  deconv->forward({&y}, {&deconv_out});
  env.sync();
  ASSERT_EQ(conv_out.count(), y.count());
  ASSERT_EQ(deconv_out.count(), x.count());
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < y.count(); ++i) {
    lhs += static_cast<double>(conv_out.data()[i]) * y.data()[i];
  }
  for (std::size_t i = 0; i < x.count(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * deconv_out.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0));
}

TEST_F(ExtLayerTest, DeconvolutionGradients) {
  LayerSpec s = spec_of("Deconvolution");
  s.params.num_output = 2;
  s.params.kernel_size = 3;
  s.params.stride = 2;
  s.params.pad = 1;
  s.params.weight_filler = mc::FillerSpec::gaussian(0.2f);
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 3, 4, 4}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker(1e-2, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 1);
}

TEST_F(ExtLayerTest, DeconvolutionRunsUnderConcurrentDispatch) {
  // Per-sample dispatch: forward must be bit-identical serial vs 4 streams.
  auto run = [&](int streams) {
    Env e(gpusim::DeviceTable::p100(), streams);
    LayerSpec s = spec_of("Deconvolution");
    s.params.num_output = 2;
    s.params.kernel_size = 4;
    s.params.stride = 2;
    s.params.pad = 1;
    s.params.weight_filler = mc::FillerSpec::gaussian(0.2f);
    auto layer = mc::create_layer(s, e.ec);
    Blob in(e.ctx, {8, 3, 5, 5}), out(e.ctx);
    layer->setup({&in}, {&out});
    glp::Rng r(5);
    glptest::fill_random(in, r);
    layer->forward({&in}, {&out});
    e.ctx.device().synchronize();
    return glptest::snapshot(out.data(), out.count());
  };
  EXPECT_EQ(glptest::max_abs_diff(run(1), run(4)), 0.0);
}

// --- parser coverage for the new fields -------------------------------------------------

TEST(ExtendedParser, NewLayerKeys) {
  const mc::NetSpec s = mc::parse_net_text(R"(
    layer { name: "e" type: "Eltwise" operation: PROD coeff: 0.5 coeff: 2 }
    layer { name: "p" type: "Power" power: 2 power_scale: 3 power_shift: 1 }
    layer { name: "s" type: "Slice" slice_point: 2 slice_point: 5 }
    layer { name: "bn" type: "BatchNorm" eps: 0.001 use_global_stats: true }
    layer { name: "sc" type: "Scale" scale_bias_term: true }
    layer { name: "r" type: "Reduction" reduction_mean: true }
  )");
  EXPECT_EQ(s.layers[0].params.eltwise, mc::EltwiseOp::kProd);
  EXPECT_EQ(s.layers[0].params.eltwise_coeffs,
            (std::vector<float>{0.5f, 2.0f}));
  EXPECT_FLOAT_EQ(s.layers[1].params.power, 2.0f);
  EXPECT_EQ(s.layers[2].params.slice_points, (std::vector<int>{2, 5}));
  EXPECT_FLOAT_EQ(s.layers[3].params.bn_eps, 0.001f);
  EXPECT_TRUE(s.layers[3].params.use_global_stats);
  EXPECT_TRUE(s.layers[4].params.scale_bias_term);
  EXPECT_TRUE(s.layers[5].params.reduction_mean);
}

}  // namespace
