#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "kernels/cpu_math.hpp"
#include "minicaffe/layer.hpp"
#include "minicaffe/layers/activation_layers.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using glptest::GradientChecker;
using mc::Blob;
using mc::LayerSpec;

LayerSpec spec_of(std::string type, std::string name = "test") {
  LayerSpec s;
  s.type = std::move(type);
  s.name = std::move(name);
  s.bottoms = {"in"};
  s.tops = {"out"};
  return s;
}

struct LayerTest : ::testing::Test {
  Env env;
  glp::Rng rng{2024};
};

// --- Convolution --------------------------------------------------------------------

TEST_F(LayerTest, ConvolutionOutputShape) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 8;
  s.params.kernel_size = 3;
  s.params.pad = 1;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 3, 7, 7}), out(env.ctx);
  layer->setup({&in}, {&out});
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 8, 7, 7}));
  ASSERT_EQ(layer->param_blobs().size(), 2u);
  EXPECT_EQ(layer->param_blobs()[0]->shape(), (std::vector<int>{8, 27}));
  EXPECT_EQ(layer->param_blobs()[1]->shape(), (std::vector<int>{8}));
}

TEST_F(LayerTest, ConvolutionStrideAndPadShapes) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 96;
  s.params.kernel_size = 11;
  s.params.stride = 4;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 3, 227, 227}), out(env.ctx);
  layer->setup({&in}, {&out});
  EXPECT_EQ(out.height(), 55);  // CaffeNet conv1
}

TEST_F(LayerTest, ConvolutionForwardMatchesDirectConvolution) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 2;
  s.params.kernel_size = 3;
  s.params.pad = 1;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 2, 5, 5}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();

  // Direct convolution reference.
  const float* w = layer->param_blobs()[0]->data();
  const float* bias = layer->param_blobs()[1]->data();
  for (int n = 0; n < 2; ++n) {
    for (int co = 0; co < 2; ++co) {
      for (int oh = 0; oh < 5; ++oh) {
        for (int ow = 0; ow < 5; ++ow) {
          double acc = bias[co];
          for (int ci = 0; ci < 2; ++ci) {
            for (int kh = 0; kh < 3; ++kh) {
              for (int kw = 0; kw < 3; ++kw) {
                const int ih = oh - 1 + kh;
                const int iw = ow - 1 + kw;
                if (ih < 0 || ih >= 5 || iw < 0 || iw >= 5) continue;
                const float x =
                    in.data()[((n * 2 + ci) * 5 + ih) * 5 + iw];
                const float ww = w[(co * 2 + ci) * 9 + kh * 3 + kw];
                acc += static_cast<double>(x) * ww;
              }
            }
          }
          const float got = out.data()[((n * 2 + co) * 5 + oh) * 5 + ow];
          ASSERT_NEAR(got, acc, 1e-4) << n << "," << co << "," << oh << "," << ow;
        }
      }
    }
  }
}

TEST_F(LayerTest, ConvolutionGradients) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 3;
  s.params.kernel_size = 3;
  s.params.pad = 1;
  s.params.stride = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 2, 6, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker(1e-2, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, /*bottom=*/0);
  checker.check(env, *layer, {&in}, {&out}, 0, /*param=*/0);
  checker.check(env, *layer, {&in}, {&out}, 0, /*param=*/1);
}

TEST_F(LayerTest, ConvolutionWithoutBias) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 2;
  s.params.kernel_size = 1;
  s.params.bias_term = false;
  s.params.weight_filler = mc::FillerSpec::constant(1.0f);
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 3, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();
  // 1x1 conv with all-ones weights = channel sum.
  for (int i = 0; i < 4; ++i) {
    const float expect = in.data()[i] + in.data()[4 + i] + in.data()[8 + i];
    EXPECT_NEAR(out.data()[i], expect, 1e-5);
  }
}

TEST_F(LayerTest, GroupedConvolutionShapesAndIndependence) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 4;
  s.params.kernel_size = 1;
  s.params.group = 2;
  s.params.weight_filler = mc::FillerSpec::constant(1.0f);
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 4, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  // Weights per group: [2 outputs x 2 input channels x 1 x 1].
  EXPECT_EQ(layer->param_blobs()[0]->shape(), (std::vector<int>{4, 2}));
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();
  // Group 0 outputs depend only on channels 0-1, group 1 on channels 2-3.
  for (int i = 0; i < 4; ++i) {
    const float g0 = in.data()[0 * 4 + i] + in.data()[1 * 4 + i];
    const float g1 = in.data()[2 * 4 + i] + in.data()[3 * 4 + i];
    EXPECT_NEAR(out.data()[0 * 4 + i], g0, 1e-5);
    EXPECT_NEAR(out.data()[3 * 4 + i], g1, 1e-5);
  }
}

TEST_F(LayerTest, GroupedConvolutionGradients) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 4;
  s.params.kernel_size = 3;
  s.params.pad = 1;
  s.params.group = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 4, 5, 5}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker(1e-2, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 1);
}

TEST_F(LayerTest, FusedBiasMatchesUnfusedIncludingGroups) {
  // The fuse_conv_bias extension must be numerically identical to the
  // separate GEMM + bias path, for grouped and ungrouped convolutions.
  for (int group : {1, 2}) {
    auto run = [&](bool fused) {
      Env e;
      e.ec.fuse_conv_bias = fused;
      LayerSpec s = spec_of("Convolution");
      s.params.num_output = 4;
      s.params.kernel_size = 3;
      s.params.pad = 1;
      s.params.group = group;
      s.params.weight_filler = mc::FillerSpec::gaussian(0.2f);
      s.params.bias_filler = mc::FillerSpec::gaussian(0.5f);
      auto layer = mc::create_layer(s, e.ec);
      Blob in(e.ctx, {3, 4, 5, 5}), out(e.ctx);
      layer->setup({&in}, {&out});
      glp::Rng r(31);
      glptest::fill_random(in, r);
      layer->forward({&in}, {&out});
      e.ctx.device().synchronize();
      return glptest::snapshot(out.data(), out.count());
    };
    EXPECT_EQ(glptest::max_abs_diff(run(false), run(true)), 0.0)
        << "group " << group;
  }
}

TEST_F(LayerTest, GroupedConvolutionRejectsNonDivisibleGroups) {
  LayerSpec s = spec_of("Convolution");
  s.params.num_output = 4;
  s.params.kernel_size = 1;
  s.params.group = 3;  // does not divide 4 channels
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 4, 2, 2}), out(env.ctx);
  EXPECT_THROW(layer->setup({&in}, {&out}), glp::InvalidArgument);
}

TEST_F(LayerTest, ConvolutionRejectsBadParams) {
  LayerSpec s = spec_of("Convolution");
  auto layer = mc::create_layer(s, env.ec);  // num_output missing
  Blob in(env.ctx, {1, 1, 4, 4}), out(env.ctx);
  EXPECT_THROW(layer->setup({&in}, {&out}), glp::InvalidArgument);
}

// --- InnerProduct --------------------------------------------------------------------

TEST_F(LayerTest, InnerProductShapeAndForward) {
  LayerSpec s = spec_of("InnerProduct");
  s.params.num_output = 4;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {3, 2, 2, 2}), out(env.ctx);
  layer->setup({&in}, {&out});
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 4}));
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();
  // Reference: out[n,o] = Σ_k in[n,k] * W[o,k] + b[o]
  const float* w = layer->param_blobs()[0]->data();
  const float* b = layer->param_blobs()[1]->data();
  for (int n = 0; n < 3; ++n) {
    for (int o = 0; o < 4; ++o) {
      double acc = b[o];
      for (int k = 0; k < 8; ++k) acc += static_cast<double>(in.data()[n * 8 + k]) * w[o * 8 + k];
      ASSERT_NEAR(out.data()[n * 4 + o], acc, 1e-4);
    }
  }
}

TEST_F(LayerTest, InnerProductGradients) {
  LayerSpec s = spec_of("InnerProduct");
  s.params.num_output = 5;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {4, 6}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 0);
  checker.check(env, *layer, {&in}, {&out}, 0, 1);
}

// --- Pooling --------------------------------------------------------------------------

TEST_F(LayerTest, MaxPoolingForward) {
  LayerSpec s = spec_of("Pooling");
  s.params.pool = mc::PoolMethod::kMax;
  s.params.kernel_size = 2;
  s.params.stride = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 1, 4, 4}), out(env.ctx);
  layer->setup({&in}, {&out});
  float v = 0;
  for (std::size_t i = 0; i < 16; ++i) in.mutable_data()[i] = v += 1.0f;
  layer->forward({&in}, {&out});
  env.sync();
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.data()[0], 6.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 16.0f);
}

TEST_F(LayerTest, PoolingCeilModeMatchesCaffe) {
  // Caffe pools with ceil: 32 → pool3/s2 → 16 (not 15).
  LayerSpec s = spec_of("Pooling");
  s.params.kernel_size = 3;
  s.params.stride = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 1, 32, 32}), out(env.ctx);
  layer->setup({&in}, {&out});
  EXPECT_EQ(out.height(), 16);
}

TEST_F(LayerTest, MaxPoolingGradients) {
  LayerSpec s = spec_of("Pooling");
  s.params.pool = mc::PoolMethod::kMax;
  s.params.kernel_size = 3;
  s.params.stride = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 2, 7, 7}), out(env.ctx);
  layer->setup({&in}, {&out});
  // Well-separated values: the numeric perturbation must never flip an
  // argmax (the max operator is not differentiable at ties).
  std::vector<int> perm(in.count());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < in.count(); ++i) {
    in.mutable_data()[i] = 0.1f * static_cast<float>(perm[i]);
  }
  GradientChecker checker(1e-3, 2e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(LayerTest, AvePoolingGradients) {
  LayerSpec s = spec_of("Pooling");
  s.params.pool = mc::PoolMethod::kAve;
  s.params.kernel_size = 3;
  s.params.stride = 2;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 2, 8, 8}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

// --- activations -----------------------------------------------------------------------

TEST_F(LayerTest, ReLUForwardInPlace) {
  LayerSpec s = spec_of("ReLU");
  s.tops = {"in"};  // in place
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {8});
  layer->setup({&in}, {&in});
  for (int i = 0; i < 8; ++i) in.mutable_data()[i] = static_cast<float>(i - 4);
  layer->forward({&in}, {&in});
  env.sync();
  EXPECT_FLOAT_EQ(in.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(in.data()[7], 3.0f);
}

TEST_F(LayerTest, ReLUGradients) {
  auto layer = mc::create_layer(spec_of("ReLU"), env.ec);
  Blob in(env.ctx, {4, 8}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  // Keep inputs away from the kink for numeric stability.
  for (std::size_t i = 0; i < in.count(); ++i) {
    if (std::abs(in.data()[i]) < 0.1f) in.mutable_data()[i] += 0.25f;
  }
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(LayerTest, LeakyReLUGradients) {
  LayerSpec s = spec_of("ReLU");
  s.params.negative_slope = 0.1f;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {4, 8}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  for (std::size_t i = 0; i < in.count(); ++i) {
    if (std::abs(in.data()[i]) < 0.1f) in.mutable_data()[i] += 0.25f;
  }
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(LayerTest, SigmoidGradients) {
  auto layer = mc::create_layer(spec_of("Sigmoid"), env.ec);
  Blob in(env.ctx, {3, 7}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -2.0f, 2.0f);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(LayerTest, TanHGradients) {
  auto layer = mc::create_layer(spec_of("TanH"), env.ec);
  Blob in(env.ctx, {3, 7}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, -2.0f, 2.0f);
  GradientChecker checker;
  checker.check(env, *layer, {&in}, {&out}, 0);
}

// --- LRN -------------------------------------------------------------------------------

TEST_F(LayerTest, LRNGradients) {
  LayerSpec s = spec_of("LRN");
  s.params.local_size = 3;
  s.params.alpha = 0.5f;
  s.params.beta = 0.75f;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {2, 5, 3, 3}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng, 0.1f, 1.0f);
  GradientChecker checker(1e-2, 3e-2);
  checker.check(env, *layer, {&in}, {&out}, 0);
}

TEST_F(LayerTest, LRNRejectsInPlaceAndEvenWindow) {
  LayerSpec s = spec_of("LRN");
  s.params.local_size = 4;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 4, 2, 2}), out(env.ctx);
  EXPECT_THROW(layer->setup({&in}, {&out}), glp::InvalidArgument);
}

// --- Dropout ----------------------------------------------------------------------------

TEST_F(LayerTest, DropoutZeroesFractionAndScales) {
  LayerSpec s = spec_of("Dropout");
  s.params.dropout_ratio = 0.5f;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 10000}), out(env.ctx);
  layer->setup({&in}, {&out});
  for (std::size_t i = 0; i < in.count(); ++i) in.mutable_data()[i] = 1.0f;
  layer->forward({&in}, {&out});
  env.sync();
  int zeros = 0;
  for (std::size_t i = 0; i < out.count(); ++i) {
    if (out.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out.data()[i], 2.0f);  // 1/(1-0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
}

TEST_F(LayerTest, DropoutBackwardUsesSameMask) {
  LayerSpec s = spec_of("Dropout");
  s.params.dropout_ratio = 0.3f;
  auto layer = mc::create_layer(s, env.ec);
  Blob in(env.ctx, {1, 256}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();
  for (std::size_t i = 0; i < out.count(); ++i) out.mutable_diff()[i] = 1.0f;
  layer->backward({&out}, {true}, {&in});
  env.sync();
  // Gradient zero exactly where the forward output is zero.
  for (std::size_t i = 0; i < in.count(); ++i) {
    if (out.data()[i] == 0.0f) {
      EXPECT_EQ(in.diff()[i], 0.0f);
    } else {
      EXPECT_NEAR(in.diff()[i], 1.0f / 0.7f, 1e-5);
    }
  }
}

TEST_F(LayerTest, DropoutTestModeIsIdentity) {
  LayerSpec s = spec_of("Dropout");
  auto layer = mc::create_layer(s, env.ec);
  auto* dropout = dynamic_cast<mc::DropoutLayer*>(layer.get());
  ASSERT_NE(dropout, nullptr);
  dropout->set_train(false);
  Blob in(env.ctx, {1, 64}), out(env.ctx);
  layer->setup({&in}, {&out});
  glptest::fill_random(in, rng);
  layer->forward({&in}, {&out});
  env.sync();
  for (std::size_t i = 0; i < in.count(); ++i) {
    EXPECT_EQ(out.data()[i], in.data()[i]);
  }
}

// --- Concat ------------------------------------------------------------------------------

TEST_F(LayerTest, ConcatForwardAndBackward) {
  LayerSpec s = spec_of("Concat");
  s.bottoms = {"a", "b"};
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 2, 2, 2}), b(env.ctx, {2, 3, 2, 2}), out(env.ctx);
  layer->setup({&a, &b}, {&out});
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 5, 2, 2}));
  glptest::fill_random(a, rng);
  glptest::fill_random(b, rng);
  layer->forward({&a, &b}, {&out});
  env.sync();
  // Sample 1, channel 3 of out == channel 1 of b.
  EXPECT_EQ(out.data()[(1 * 5 + 3) * 4 + 2], b.data()[(1 * 3 + 1) * 4 + 2]);

  for (std::size_t i = 0; i < out.count(); ++i) {
    out.mutable_diff()[i] = static_cast<float>(i);
  }
  std::fill(a.mutable_diff(), a.mutable_diff() + a.count(), 0.0f);
  std::fill(b.mutable_diff(), b.mutable_diff() + b.count(), 0.0f);
  layer->backward({&out}, {true, true}, {&a, &b});
  env.sync();
  EXPECT_EQ(a.diff()[0], out.diff()[0]);
  EXPECT_EQ(b.diff()[0], out.diff()[2 * 4]);  // first b-channel follows a's two
}

TEST_F(LayerTest, ConcatRejectsMismatchedSpatial) {
  LayerSpec s = spec_of("Concat");
  s.bottoms = {"a", "b"};
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {1, 2, 4, 4}), b(env.ctx, {1, 2, 5, 5}), out(env.ctx);
  EXPECT_THROW(layer->setup({&a, &b}, {&out}), glp::InvalidArgument);
}

// --- losses -------------------------------------------------------------------------------

TEST_F(LayerTest, SoftmaxWithLossForwardValue) {
  LayerSpec s = spec_of("SoftmaxWithLoss");
  s.bottoms = {"scores", "labels"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob scores(env.ctx, {2, 3}), labels(env.ctx, {2}), loss(env.ctx);
  layer->setup({&scores, &labels}, {&loss});
  // Uniform scores → loss = log(3).
  std::fill(scores.mutable_data(), scores.mutable_data() + 6, 0.0f);
  labels.mutable_data()[0] = 0;
  labels.mutable_data()[1] = 2;
  layer->forward({&scores, &labels}, {&loss});
  env.sync();
  EXPECT_NEAR(loss.data()[0], std::log(3.0f), 1e-5);
}

TEST_F(LayerTest, SoftmaxWithLossGradient) {
  LayerSpec s = spec_of("SoftmaxWithLoss");
  s.bottoms = {"scores", "labels"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob scores(env.ctx, {4, 5}), labels(env.ctx, {4}), loss(env.ctx);
  layer->setup({&scores, &labels}, {&loss});
  glptest::fill_random(scores, rng);
  for (int n = 0; n < 4; ++n) labels.mutable_data()[n] = static_cast<float>(n % 5);

  // Numeric dLoss/dscore via central differences.
  layer->forward({&scores, &labels}, {&loss});
  env.sync();
  std::fill(scores.mutable_diff(), scores.mutable_diff() + scores.count(), 0.0f);
  layer->backward({&loss}, {true, false}, {&scores, &labels});
  env.sync();
  const auto analytic = glptest::snapshot(scores.diff(), scores.count());
  const double eps = 1e-2;
  for (std::size_t i = 0; i < scores.count(); i += 3) {
    const float saved = scores.data()[i];
    scores.mutable_data()[i] = saved + static_cast<float>(eps);
    layer->forward({&scores, &labels}, {&loss});
    env.sync();
    const double plus = loss.data()[0];
    scores.mutable_data()[i] = saved - static_cast<float>(eps);
    layer->forward({&scores, &labels}, {&loss});
    env.sync();
    const double minus = loss.data()[0];
    scores.mutable_data()[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 2e-3);
  }
}

TEST_F(LayerTest, AccuracyLayer) {
  LayerSpec s = spec_of("Accuracy");
  s.bottoms = {"scores", "labels"};
  s.tops = {"acc"};
  auto layer = mc::create_layer(s, env.ec);
  Blob scores(env.ctx, {4, 2}), labels(env.ctx, {4}), acc(env.ctx);
  layer->setup({&scores, &labels}, {&acc});
  const float sc[] = {1, 0, 0, 1, 1, 0, 0, 1};
  std::copy(sc, sc + 8, scores.mutable_data());
  const float lb[] = {0, 1, 1, 1};
  std::copy(lb, lb + 4, labels.mutable_data());
  layer->forward({&scores, &labels}, {&acc});
  env.sync();
  EXPECT_FLOAT_EQ(acc.data()[0], 0.75f);
  EXPECT_FALSE(layer->has_backward());
}

TEST_F(LayerTest, EuclideanLossValueAndGradient) {
  LayerSpec s = spec_of("EuclideanLoss");
  s.bottoms = {"a", "b"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 3}), b(env.ctx, {2, 3}), loss(env.ctx);
  layer->setup({&a, &b}, {&loss});
  for (int i = 0; i < 6; ++i) {
    a.mutable_data()[i] = static_cast<float>(i);
    b.mutable_data()[i] = static_cast<float>(i) + 1.0f;  // diff = -1 everywhere
  }
  layer->forward({&a, &b}, {&loss});
  env.sync();
  EXPECT_NEAR(loss.data()[0], 6.0f / (2.0f * 2.0f), 1e-5);
  layer->backward({&loss}, {true, true}, {&a, &b});
  env.sync();
  EXPECT_NEAR(a.diff()[0], -0.5f, 1e-6);
  EXPECT_NEAR(b.diff()[0], 0.5f, 1e-6);
}

TEST_F(LayerTest, ContrastiveLossSimilarAndDissimilar) {
  LayerSpec s = spec_of("ContrastiveLoss");
  s.bottoms = {"a", "b", "sim"};
  s.tops = {"loss"};
  s.params.margin = 1.0f;
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {2, 2}), b(env.ctx, {2, 2}), sim(env.ctx, {2}), loss(env.ctx);
  layer->setup({&a, &b, &sim}, {&loss});
  // Pair 0 similar at distance² = 0.25; pair 1 dissimilar at distance² = 0.25.
  const float av[] = {0.5f, 0, 0.5f, 0};
  const float bv[] = {0, 0, 0, 0};
  std::copy(av, av + 4, a.mutable_data());
  std::copy(bv, bv + 4, b.mutable_data());
  sim.mutable_data()[0] = 1;
  sim.mutable_data()[1] = 0;
  layer->forward({&a, &b, &sim}, {&loss});
  env.sync();
  // L = 1/(2·2) [0.25 + max(1 − 0.25, 0)] = 0.25.
  EXPECT_NEAR(loss.data()[0], 0.25f, 1e-5);

  layer->backward({&loss}, {true, true, false}, {&a, &b, &sim});
  env.sync();
  // Similar pair pulls together: da = +scale·diff.
  EXPECT_GT(a.diff()[0], 0.0f);
  // Dissimilar pair inside the margin pushes apart: da = −scale·diff.
  EXPECT_LT(a.diff()[2], 0.0f);
}

TEST_F(LayerTest, ContrastiveLossZeroGradientOutsideMargin) {
  LayerSpec s = spec_of("ContrastiveLoss");
  s.bottoms = {"a", "b", "sim"};
  s.tops = {"loss"};
  s.params.margin = 0.1f;
  auto layer = mc::create_layer(s, env.ec);
  Blob a(env.ctx, {1, 2}), b(env.ctx, {1, 2}), sim(env.ctx, {1}), loss(env.ctx);
  layer->setup({&a, &b, &sim}, {&loss});
  a.mutable_data()[0] = 5.0f;  // far apart, dissimilar → no gradient
  a.mutable_data()[1] = 0.0f;
  b.mutable_data()[0] = 0.0f;
  b.mutable_data()[1] = 0.0f;
  sim.mutable_data()[0] = 0;
  layer->forward({&a, &b, &sim}, {&loss});
  layer->backward({&loss}, {true, true, false}, {&a, &b, &sim});
  env.sync();
  EXPECT_EQ(a.diff()[0], 0.0f);
  EXPECT_EQ(loss.data()[0], 0.0f);
}

TEST_F(LayerTest, SigmoidCrossEntropyLossValue) {
  LayerSpec s = spec_of("SigmoidCrossEntropyLoss");
  s.bottoms = {"logits", "targets"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob logits(env.ctx, {2, 2}), targets(env.ctx, {2, 2}), loss(env.ctx);
  layer->setup({&logits, &targets}, {&loss});
  // Zero logits: p = 0.5 everywhere → loss = 4·log(2)/2 per Caffe's
  // per-sample normalisation.
  std::fill(logits.mutable_data(), logits.mutable_data() + 4, 0.0f);
  std::fill(targets.mutable_data(), targets.mutable_data() + 4, 1.0f);
  layer->forward({&logits, &targets}, {&loss});
  env.sync();
  EXPECT_NEAR(loss.data()[0], 4.0f * std::log(2.0f) / 2.0f, 1e-5);
}

TEST_F(LayerTest, SigmoidCrossEntropyLossGradient) {
  LayerSpec s = spec_of("SigmoidCrossEntropyLoss");
  s.bottoms = {"logits", "targets"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob logits(env.ctx, {3, 4}), targets(env.ctx, {3, 4}), loss(env.ctx);
  layer->setup({&logits, &targets}, {&loss});
  glptest::fill_random(logits, rng, -2.0f, 2.0f);
  glptest::fill_random(targets, rng, 0.0f, 1.0f);

  layer->forward({&logits, &targets}, {&loss});
  env.sync();
  std::fill(logits.mutable_diff(), logits.mutable_diff() + logits.count(), 0.0f);
  layer->backward({&loss}, {true, false}, {&logits, &targets});
  env.sync();
  const auto analytic = glptest::snapshot(logits.diff(), logits.count());

  const double eps = 1e-2;
  for (std::size_t i = 0; i < logits.count(); i += 2) {
    const float saved = logits.data()[i];
    logits.mutable_data()[i] = saved + static_cast<float>(eps);
    layer->forward({&logits, &targets}, {&loss});
    env.sync();
    const double plus = loss.data()[0];
    logits.mutable_data()[i] = saved - static_cast<float>(eps);
    layer->forward({&logits, &targets}, {&loss});
    env.sync();
    const double minus = loss.data()[0];
    logits.mutable_data()[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 2e-3);
  }
}

TEST_F(LayerTest, SigmoidCrossEntropyStableAtExtremeLogits) {
  LayerSpec s = spec_of("SigmoidCrossEntropyLoss");
  s.bottoms = {"logits", "targets"};
  s.tops = {"loss"};
  auto layer = mc::create_layer(s, env.ec);
  Blob logits(env.ctx, {1, 2}), targets(env.ctx, {1, 2}), loss(env.ctx);
  layer->setup({&logits, &targets}, {&loss});
  logits.mutable_data()[0] = 80.0f;   // exp(80) would overflow naively
  logits.mutable_data()[1] = -80.0f;
  targets.mutable_data()[0] = 1.0f;
  targets.mutable_data()[1] = 0.0f;
  layer->forward({&logits, &targets}, {&loss});
  env.sync();
  EXPECT_TRUE(std::isfinite(loss.data()[0]));
  EXPECT_NEAR(loss.data()[0], 0.0f, 1e-5);  // both predictions correct
}

// --- factory -----------------------------------------------------------------------------

TEST_F(LayerTest, FactoryRejectsUnknownType) {
  EXPECT_THROW(mc::create_layer(spec_of("Convolution3D"), env.ec),
               glp::InvalidArgument);
}

TEST_F(LayerTest, RegistryContainsAllPaperLayers) {
  const auto types = mc::registered_layer_types();
  const std::set<std::string> set(types.begin(), types.end());
  for (const char* t :
       {"Data", "Convolution", "InnerProduct", "Pooling", "LRN", "ReLU",
        "Sigmoid", "TanH", "Dropout", "Concat", "SoftmaxWithLoss", "Accuracy",
        "EuclideanLoss", "ContrastiveLoss"}) {
    EXPECT_TRUE(set.count(t)) << t;
  }
}

}  // namespace
