#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/problem.hpp"
#include "milp/simplex.hpp"

namespace {

using milp::BranchAndBoundSolver;
using milp::kInfinity;
using milp::Problem;
using milp::SimplexSolver;
using milp::Solution;
using milp::SolveStatus;

// --- Problem ------------------------------------------------------------------

TEST(Problem, ObjectiveValue) {
  Problem p;
  p.add_variable(0, 10, 2.0, false);
  p.add_variable(0, 10, -1.0, false);
  EXPECT_DOUBLE_EQ(p.objective_value({3.0, 4.0}), 2.0);
}

TEST(Problem, FeasibilityChecksBoundsAndRows) {
  Problem p;
  const int x = p.add_variable(0, 5, 1.0, false);
  p.add_constraint({{x, 1.0}}, 0.0, 3.0);
  EXPECT_TRUE(p.feasible({2.0}));
  EXPECT_FALSE(p.feasible({4.0}));   // violates the row
  EXPECT_FALSE(p.feasible({-1.0}));  // violates the bound
}

TEST(Problem, RejectsInvertedBounds) {
  Problem p;
  EXPECT_THROW(p.add_variable(5, 1, 0, false), glp::InvalidArgument);
}

TEST(Problem, RejectsUnknownVariableInConstraint) {
  Problem p;
  p.add_variable(0, 1, 0, false);
  EXPECT_THROW(p.add_constraint({{3, 1.0}}, 0, 1), glp::InvalidArgument);
}

// --- Simplex: textbook cases ---------------------------------------------------

TEST(Simplex, SimpleTwoVarMax) {
  // max 3x + 2y  st  x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, obj=12.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 3, false);
  const int y = p.add_variable(0, kInfinity, 2, false);
  p.add_constraint({{x, 1}, {y, 1}}, -kInfinity, 4);
  p.add_constraint({{x, 1}, {y, 3}}, -kInfinity, 6);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.values[0], 4.0, 1e-7);
}

TEST(Simplex, MinimizationWorks) {
  // min x + y st x + y ≥ 2 → obj 2.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1, false);
  const int y = p.add_variable(0, kInfinity, 1, false);
  p.add_constraint({{x, 1}, {y, 1}}, 2.0, kInfinity);
  p.set_maximize(false);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  const int x = p.add_variable(0, 1, 1, false);
  p.add_constraint({{x, 1}}, 5.0, kInfinity);  // x ≥ 5 but x ≤ 1
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  p.add_variable(0, kInfinity, 1, false);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, HonorsVariableLowerBounds) {
  // max -x st x ≥ 2 (via bound) → x=2.
  Problem p;
  p.add_variable(2, 10, -1, false);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.0, 1e-7);
}

TEST(Simplex, RangeConstraint) {
  // max x st 1 ≤ x ≤ 3 (range row) → 3.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1, false);
  p.add_constraint({{x, 1}}, 1.0, 3.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate corner; Bland's rule must not cycle.
  Problem p;
  const int x1 = p.add_variable(0, kInfinity, 10, false);
  const int x2 = p.add_variable(0, kInfinity, -57, false);
  const int x3 = p.add_variable(0, kInfinity, -9, false);
  const int x4 = p.add_variable(0, kInfinity, -24, false);
  p.add_constraint({{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9}}, -kInfinity, 0);
  p.add_constraint({{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1}}, -kInfinity, 0);
  p.add_constraint({{x1, 1}}, -kInfinity, 1);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(Simplex, BoundOverridesShrinkFeasibleRegion) {
  Problem p;
  const int x = p.add_variable(0, 10, 1, false);
  (void)x;
  const Solution full = SimplexSolver().solve(p);
  EXPECT_NEAR(full.objective, 10.0, 1e-7);
  const Solution tight = SimplexSolver().solve_with_bounds(p, {0.0}, {4.0});
  EXPECT_NEAR(tight.objective, 4.0, 1e-7);
  const Solution inverted = SimplexSolver().solve_with_bounds(p, {5.0}, {4.0});
  EXPECT_EQ(inverted.status, SolveStatus::kInfeasible);
}

// --- Branch & bound -------------------------------------------------------------

TEST(BranchAndBound, IntegerKnapsack) {
  // max 8a + 11b + 6c + 4d  st 5a+7b+4c+3d ≤ 14, binary → {0,1,1,1} = 21.
  Problem p;
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) {
    const int v = p.add_variable(0, 1, value[i], true);
    row.emplace_back(v, weight[i]);
  }
  p.add_constraint(row, 0, 14);
  const Solution s = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 21.0, 1e-7);
  EXPECT_NEAR(s.values[0], 0.0, 1e-7);
}

TEST(BranchAndBound, FractionalLpRoundsToWorseInteger) {
  // max x st 2x ≤ 5, x integer → 2 (LP gives 2.5).
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1, true);
  p.add_constraint({{x, 2}}, -kInfinity, 5);
  const Solution s = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(BranchAndBound, MixedIntegerAndContinuous) {
  // max x + y, x integer ≤ 2.5-ish via row, y continuous ≤ 1.7.
  Problem p;
  const int x = p.add_variable(0, kInfinity, 1, true);
  const int y = p.add_variable(0, 1.7, 1, false);
  p.add_constraint({{x, 1}}, -kInfinity, 2.5);
  const Solution s = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.7, 1e-6);
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleInteger) {
  // 0.4 ≤ x ≤ 0.6, integer → infeasible.
  Problem p;
  p.add_variable(0.4, 0.6, 1, true);
  EXPECT_EQ(BranchAndBoundSolver().solve(p).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MinimizationWithIntegers) {
  // min 3x + 2y st x + y ≥ 3.5, integers → obj 8 at (1,3) or (0,4)=8 → 8.
  Problem p;
  const int x = p.add_variable(0, 10, 3, true);
  const int y = p.add_variable(0, 10, 2, true);
  p.add_constraint({{x, 1}, {y, 1}}, 3.5, kInfinity);
  p.set_maximize(false);
  const Solution s = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
}

TEST(BranchAndBound, ReportsNodeCount) {
  Problem p;
  const int x = p.add_variable(0, 100, 1, true);
  p.add_constraint({{x, 3}}, -kInfinity, 10);
  BranchAndBoundSolver solver;
  ASSERT_EQ(solver.solve(p).status, SolveStatus::kOptimal);
  EXPECT_GE(solver.last_node_count(), 1);
}

// --- Property: B&B equals brute force on random bounded integer programs -------

struct RandomMilpCase {
  std::uint64_t seed;
};

class MilpBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

Solution brute_force(const Problem& p) {
  // Exhaustive over the integer box (all variables integer, bounds ≤ 6).
  const int n = p.num_variables();
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  Solution best;
  best.status = SolveStatus::kInfeasible;
  const double sign = p.maximize() ? 1.0 : -1.0;
  std::function<void(int)> rec = [&](int i) {
    if (i == n) {
      if (!p.feasible(x)) return;
      const double obj = p.objective_value(x);
      if (best.status != SolveStatus::kOptimal ||
          sign * obj > sign * best.objective) {
        best.status = SolveStatus::kOptimal;
        best.objective = obj;
        best.values = x;
      }
      return;
    }
    const auto& v = p.variables()[static_cast<std::size_t>(i)];
    for (int k = static_cast<int>(v.lower); k <= static_cast<int>(v.upper); ++k) {
      x[static_cast<std::size_t>(i)] = k;
      rec(i + 1);
    }
  };
  rec(0);
  return best;
}

TEST_P(MilpBruteForce, MatchesExhaustiveSearch) {
  glp::Rng rng(GetParam());
  // 2–4 integer variables with bounds [0, 2..6], 1–3 ≤-constraints with
  // non-negative coefficients (always feasible at the origin).
  Problem p;
  const int n = 2 + static_cast<int>(rng.next_below(3));
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    const double ub = 2 + static_cast<double>(rng.next_below(5));
    const double obj = std::round(rng.uniform(-5.0f, 10.0f));
    vars.push_back(p.add_variable(0, ub, obj, true));
  }
  const int rows = 1 + static_cast<int>(rng.next_below(3));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    double cap = 0.0;
    for (int i = 0; i < n; ++i) {
      const double c = static_cast<double>(rng.next_below(4));
      if (c > 0) terms.emplace_back(vars[static_cast<std::size_t>(i)], c);
      cap += c;
    }
    if (terms.empty()) continue;
    p.add_constraint(terms, 0.0, std::max(1.0, std::round(cap * 1.5)));
  }

  const Solution exact = brute_force(p);
  const Solution bb = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(bb.status, exact.status);
  if (exact.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(bb.objective, exact.objective, 1e-6)
        << "seed " << GetParam();
    EXPECT_TRUE(p.feasible(bb.values));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MilpBruteForce,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
