#include <map>
#include <memory>
// Verifies the model zoo against the paper's Table 5: every tracked
// convolution layer's (N, C_i, H/W, C_o, F, S, P) must match the row the
// paper reports, and all four networks must build and run.

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "minicaffe/layers/conv_layer.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/net_dag.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using mc::Net;
using mc::NetSpec;

struct Table5Row {
  const char* net;
  const char* layer;  // tracked layer name in our model zoo
  int n, ci, hw, co, f, s, p;
};

// The full Table 5 of the paper. GoogLeNet conv_1..conv_6 map to the
// inception_5a/5b units (see models::tracked_conv_layers).
const Table5Row kTable5[] = {
    {"CIFAR10", "conv1", 100, 3, 32, 32, 5, 1, 2},
    {"CIFAR10", "conv2", 100, 32, 16, 32, 5, 1, 2},
    {"CIFAR10", "conv3", 100, 32, 8, 64, 5, 1, 2},
    {"Siamese", "conv1", 64, 1, 28, 20, 5, 1, 0},
    {"Siamese", "conv2", 64, 20, 12, 50, 5, 1, 0},
    {"Siamese", "conv1_p", 64, 1, 28, 20, 5, 1, 0},
    {"Siamese", "conv2_p", 64, 20, 12, 50, 5, 1, 0},
    {"CaffeNet", "conv1", 256, 3, 227, 96, 11, 4, 0},
    {"CaffeNet", "conv2", 256, 96, 27, 256, 5, 1, 2},
    {"CaffeNet", "conv3", 256, 256, 13, 384, 3, 1, 1},
    {"CaffeNet", "conv4", 256, 384, 13, 384, 3, 1, 1},
    {"CaffeNet", "conv5", 256, 384, 13, 256, 3, 1, 1},
    {"GoogLeNet", "inception_5a/3x3", 32, 160, 7, 320, 3, 1, 1},
    {"GoogLeNet", "inception_5a/5x5_reduce", 32, 832, 7, 32, 1, 1, 0},
    {"GoogLeNet", "inception_5b/1x1", 32, 832, 7, 384, 1, 1, 0},
    {"GoogLeNet", "inception_5b/3x3", 32, 192, 7, 384, 3, 1, 1},
    {"GoogLeNet", "inception_5b/3x3_reduce", 32, 832, 7, 192, 1, 1, 0},
    {"GoogLeNet", "inception_5b/5x5_reduce", 32, 832, 7, 48, 1, 1, 0},
};

NetSpec spec_for(const std::string& name) {
  for (auto& [n, spec] : mc::models::paper_networks()) {
    if (n == name) return spec;
  }
  ADD_FAILURE() << "unknown net " << name;
  return {};
}

class Table5 : public ::testing::TestWithParam<Table5Row> {
 protected:
  // Cache nets across rows — building CaffeNet repeatedly is expensive.
  static Net& net_for(const std::string& name) {
    static std::map<std::string, std::pair<std::unique_ptr<Env>, std::unique_ptr<Net>>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      auto env = std::make_unique<Env>(gpusim::DeviceTable::p100(), 0,
                                       kern::ComputeMode::kTimingOnly);
      auto net = std::make_unique<Net>(spec_for(name), env->ec);
      it = cache.emplace(name, std::make_pair(std::move(env), std::move(net))).first;
    }
    return *it->second.second;
  }
};

TEST_P(Table5, LayerConfigurationMatchesPaper) {
  const Table5Row& row = GetParam();
  Net& net = net_for(row.net);
  auto* layer = dynamic_cast<mc::ConvolutionLayer*>(net.layer_by_name(row.layer));
  ASSERT_NE(layer, nullptr) << row.net << "/" << row.layer;

  const auto& p = layer->params();
  EXPECT_EQ(p.num_output, row.co);
  EXPECT_EQ(p.kernel_size, row.f);
  EXPECT_EQ(p.stride, row.s);
  EXPECT_EQ(p.pad, row.p);

  // Input shape: find the layer's bottom blob.
  const mc::Blob* bottom = net.blob(layer->spec().bottoms[0]);
  EXPECT_EQ(bottom->num(), row.n);
  EXPECT_EQ(bottom->channels(), row.ci);
  EXPECT_EQ(bottom->height(), row.hw);
  EXPECT_EQ(bottom->width(), row.hw);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table5, ::testing::ValuesIn(kTable5),
                         [](const auto& info) {
                           std::string n = std::string(info.param.net) + "_" +
                                           info.param.layer;
                           for (char& c : n) {
                             if (c == '/') c = '_';
                           }
                           return n;
                         });

// --- structural checks ----------------------------------------------------------

TEST(Models, PaperNetworksListsFour) {
  const auto nets = mc::models::paper_networks();
  ASSERT_EQ(nets.size(), 4u);
  EXPECT_EQ(nets[0].name, "CIFAR10");
  EXPECT_EQ(nets[1].name, "Siamese");
  EXPECT_EQ(nets[2].name, "CaffeNet");
  EXPECT_EQ(nets[3].name, "GoogLeNet");
}

TEST(Models, TrackedConvLayersExist) {
  for (const auto& [name, spec] : mc::models::paper_networks()) {
    Env env(gpusim::DeviceTable::p100(), 0, kern::ComputeMode::kTimingOnly);
    Net net(spec, env.ec);
    for (const std::string& layer : mc::models::tracked_conv_layers(name)) {
      EXPECT_NE(net.layer_by_name(layer), nullptr) << name << "/" << layer;
    }
  }
}

TEST(Models, SiameseSharesWeightsAcrossBranches) {
  Env env;
  Net net(mc::models::siamese_mnist(8), env.ec);
  auto* a = net.layer_by_name("conv1");
  auto* b = net.layer_by_name("conv1_p");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->param_blobs()[0].get(), b->param_blobs()[0].get());
  EXPECT_EQ(a->param_blobs()[1].get(), b->param_blobs()[1].get());
}

TEST(Models, SiameseTrainsWithContrastiveLoss) {
  Env env;
  Net net(mc::models::siamese_mnist(16), env.ec);
  mc::SolverParams p;
  p.base_lr = 0.01f;
  mc::SgdSolver solver(net, p);
  std::vector<float> losses;
  solver.step(10, [&](int, float l) { losses.push_back(l); });
  EXPECT_LT((losses[8] + losses[9]) / 2, (losses[0] + losses[1]) / 2 + 0.5f);
}

TEST(Models, Cifar10TrainsAndLossDrops) {
  Env env;
  Net net(mc::models::cifar10_quick(32), env.ec);
  mc::SgdSolver solver(net, {});
  std::vector<float> losses;
  solver.step(8, [&](int, float l) { losses.push_back(l); });
  EXPECT_LT(losses.back(), losses.front() + 0.5f);
  EXPECT_LT(losses.back(), 3.0f);
}

TEST(Models, GoogLeNetTailForwardBackward) {
  Env env;
  Net net(mc::models::googlenet_tail(4), env.ec);
  net.forward();
  const float loss = net.total_loss();
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, 10.0f);
  net.backward();
  env.sync();
}

TEST(Models, GoogLeNetTailDagBitIdenticalToSerial) {
  // The inception tail is the DAG scheduler's home turf: four independent
  // branches per unit plus in-place ReLUs right after the convs (GEMM
  // epilogue fusion). Batch 8 ≤ 32 → bit-exact for any stream layout.
  auto train = [](mc::ExecContext& ec, std::vector<float>* losses,
                  std::size_t* epilogues) {
    Net net(mc::models::googlenet_tail(8), ec);
    mc::SgdSolver solver(net, {});
    solver.step(3, [&](int, float loss) { losses->push_back(loss); });
    ec.ctx->device().synchronize();
    if (epilogues != nullptr && net.dag() != nullptr) {
      *epilogues = net.dag()->relu_epilogues().size();
    }
    std::vector<float> out;
    for (const auto& p : net.learnable_params()) {
      const float* d = p->data();
      out.insert(out.end(), d, d + p->count());
    }
    return out;
  };

  Env serial;
  std::vector<float> serial_losses;
  const auto serial_w = train(serial.ec, &serial_losses, nullptr);

  glptest::GlpEnv glp;
  glp.ec.dag_schedule = true;
  std::vector<float> dag_losses;
  std::size_t epilogues = 0;
  const auto dag_w = train(glp.ec, &dag_losses, &epilogues);

  EXPECT_EQ(serial_losses, dag_losses);
  EXPECT_EQ(glptest::max_abs_diff(serial_w, dag_w), 0.0);
  // The fused elementwise path must actually have been exercised.
  EXPECT_GT(epilogues, 0u);
}

TEST(Models, GoogLeNetConcatWidths) {
  Env env(gpusim::DeviceTable::p100(), 0, kern::ComputeMode::kTimingOnly);
  Net net(mc::models::googlenet_tail(2), env.ec);
  // 5a output: 256+320+128+128 = 832; 5b: 384+384+128+128 = 1024.
  EXPECT_EQ(net.blob("inception_5a/output")->channels(), 832);
  EXPECT_EQ(net.blob("inception_5b/output")->channels(), 1024);
}

TEST(Models, CaffeNetShapesFlowToFc) {
  Env env(gpusim::DeviceTable::p100(), 0, kern::ComputeMode::kTimingOnly);
  Net net(mc::models::caffenet(2), env.ec);
  EXPECT_EQ(net.blob("conv1")->height(), 55);
  EXPECT_EQ(net.blob("pool1")->height(), 27);
  EXPECT_EQ(net.blob("conv2")->height(), 27);
  EXPECT_EQ(net.blob("pool2")->height(), 13);
  EXPECT_EQ(net.blob("conv5")->height(), 13);
  EXPECT_EQ(net.blob("pool5")->height(), 6);
  EXPECT_EQ(net.blob("fc6")->sample_size(), 4096u);
  EXPECT_EQ(net.blob("fc8")->sample_size(), 1000u);
}

TEST(Models, LenetTrains) {
  Env env;
  Net net(mc::models::lenet(8), env.ec);
  mc::SgdSolver solver(net, {});
  solver.step(2);
  EXPECT_GT(solver.last_loss(), 0.0f);
}

TEST(Models, BatchSizesMatchTable5) {
  EXPECT_EQ(mc::models::cifar10_quick().layers[0].params.batch_size, 100);
  EXPECT_EQ(mc::models::siamese_mnist().layers[0].params.batch_size, 64);
  EXPECT_EQ(mc::models::caffenet().layers[0].params.batch_size, 256);
  EXPECT_EQ(mc::models::googlenet_tail().layers[0].params.batch_size, 32);
}

}  // namespace
