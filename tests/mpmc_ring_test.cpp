// glp::MpmcRing (the lock-free producer→batcher handoff) and
// glp::TokenBucket (the deterministic QoS meter): single-threaded FIFO
// semantics, full/empty edges, lap wrap-around, and — the part a
// single-threaded test cannot fake — multi-producer/multi-consumer
// stress with a no-loss/no-duplication ledger. The stress tests are the
// payload of the CI sanitizer job: TSan-less, they still surface torn
// publishes and ABA bugs as lost or duplicated values.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mpmc_ring.hpp"
#include "common/token_bucket.hpp"

namespace {

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(glp::MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(glp::MpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(glp::MpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(glp::MpmcRing<int>(64).capacity(), 64u);
  EXPECT_EQ(glp::MpmcRing<int>(65).capacity(), 128u);
}

TEST(MpmcRing, FifoWithFullAndEmptyEdges) {
  glp::MpmcRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // empty at birth
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: bounce, don't block
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // drained
}

TEST(MpmcRing, SurvivesManyLapsOfWrapAround) {
  glp::MpmcRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(MpmcRing, MoveOnlyPayload) {
  glp::MpmcRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

// A rejected push must not consume the caller's value: retry loops like
// `while (!ring.try_push(std::move(v)))` re-push the same object, so a
// by-value parameter that moves on the *failed* attempt would enqueue a
// hollowed-out payload on the retry.
TEST(MpmcRing, FailedPushLeavesTheValueIntact) {
  glp::MpmcRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::vector<int>{1}));
  ASSERT_TRUE(ring.try_push(std::vector<int>{2}));
  std::vector<int> payload{3, 4, 5};
  ASSERT_FALSE(ring.try_push(std::move(payload)));  // full
  EXPECT_EQ(payload.size(), 3u);                    // NOT moved-from
  std::vector<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_push(std::move(payload)));
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5}));
}

// Multi-producer stress against a deliberately tiny ring so the full
// path and CAS retry loops are exercised constantly. Every produced
// value is unique; the ledger must come back exactly once each.
TEST(MpmcRing, MultiProducerMultiConsumerLosesAndDuplicatesNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  glp::MpmcRing<std::uint64_t> ring(64);

  std::atomic<bool> done{false};
  std::vector<std::vector<std::uint64_t>> drained(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t v;
      for (;;) {
        if (ring.try_pop(v)) {
          drained[static_cast<std::size_t>(c)].push_back(v);
        } else if (done.load(std::memory_order_acquire)) {
          // Producers finished; drain the residue then leave.
          while (ring.try_pop(v)) {
            drained[static_cast<std::size_t>(c)].push_back(v);
          }
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& d : drained) all.insert(all.end(), d.begin(), d.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "value lost or duplicated near " << i;
  }
}

// With a single consumer, each producer's values must drain in the order
// that producer pushed them (the ring never reorders one thread's items).
TEST(MpmcRing, SingleConsumerPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10000;
  glp::MpmcRing<std::uint64_t> ring(32);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t drained = 0;
  std::uint64_t v;
  while (drained < kProducers * kPerProducer) {
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = v / kPerProducer;
    const std::uint64_t i = v % kPerProducer;
    ASSERT_EQ(i, next[p]) << "producer " << p << " items reordered";
    ++next[p];
    ++drained;
  }
  for (auto& t : producers) t.join();
}

TEST(TokenBucket, DisabledBucketAlwaysGrants) {
  glp::TokenBucket b;  // rate 0 = no contract
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_take(0.0));
}

TEST(TokenBucket, BurstBoundsTheInitialGrant) {
  glp::TokenBucket b(1000.0, 4.0);  // 1k tokens/s, depth 4
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));  // dry until time passes
}

TEST(TokenBucket, RefillsContinuouslyAtTheContractedRate) {
  glp::TokenBucket b(1000.0, 1.0);  // one token per millisecond
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.5e6));  // 0.5 ms: half a token
  EXPECT_TRUE(b.try_take(1.0e6));   // 1 ms: refilled
  EXPECT_FALSE(b.try_take(1.0e6));  // same instant: dry again
}

TEST(TokenBucket, IdleTimeClampsToBurstDepth) {
  glp::TokenBucket b(1000.0, 3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.try_take(0.0));
  // Ten idle seconds would mint 10k tokens; depth caps it at 3.
  EXPECT_DOUBLE_EQ(b.available(10e9), 3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.try_take(10e9));
  EXPECT_FALSE(b.try_take(10e9));
}

TEST(TokenBucket, DeterministicAcrossIdenticalClocks) {
  // Same take schedule → same decisions, run to run (the property the
  // serving admission pipeline leans on).
  const auto run = [] {
    glp::TokenBucket b(5000.0, 2.0);
    std::vector<bool> granted;
    for (int i = 0; i < 64; ++i) {
      granted.push_back(b.try_take(static_cast<double>(i) * 87e3));
    }
    return granted;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
