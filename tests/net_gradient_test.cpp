// Whole-network gradient property test: random small architectures are
// generated from a seed, and every learnable parameter's analytic
// gradient (through the full forward/backward pipeline, including the
// per-sample conv dispatch and slot accumulation) is checked against
// central differences of the network loss.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "minicaffe/net.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using mc::LayerSpec;
using mc::Net;
using mc::NetSpec;

// Build a random conv/pool/activation stack ending in IP + SoftmaxWithLoss.
NetSpec random_net(glp::Rng& rng) {
  NetSpec s;
  s.name = "fuzz";

  LayerSpec data;
  data.type = "Data";
  data.name = "data";
  data.tops = {"data", "label"};
  data.params.dataset = mc::DatasetSpec{};  // 3x32x32, 10 classes
  data.params.dataset.train_size = 64;
  data.params.batch_size = 3;
  s.layers.push_back(data);

  std::string blob = "data";
  const int stages = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < stages; ++i) {
    const std::string name = "conv" + std::to_string(i);
    LayerSpec conv;
    conv.type = "Convolution";
    conv.name = name;
    conv.bottoms = {blob};
    conv.tops = {name};
    conv.params.num_output = 2 + static_cast<int>(rng.next_below(4));
    conv.params.kernel_size = 3;
    conv.params.pad = static_cast<int>(rng.next_below(2));
    conv.params.stride = 1 + static_cast<int>(rng.next_below(2));
    conv.params.weight_filler = mc::FillerSpec::gaussian(0.1f);
    s.layers.push_back(conv);
    blob = name;

    switch (rng.next_below(4)) {
      case 0: {
        LayerSpec act;
        act.type = "TanH";
        act.name = "act" + std::to_string(i);
        act.bottoms = {blob};
        act.tops = {blob};  // in place
        s.layers.push_back(act);
        break;
      }
      case 1: {
        LayerSpec act;
        act.type = "Sigmoid";
        act.name = "act" + std::to_string(i);
        act.bottoms = {blob};
        act.tops = {"s" + std::to_string(i)};
        s.layers.push_back(act);
        blob = "s" + std::to_string(i);
        break;
      }
      case 2: {
        LayerSpec pool;
        pool.type = "Pooling";
        pool.name = "pool" + std::to_string(i);
        pool.bottoms = {blob};
        pool.tops = {"p" + std::to_string(i)};
        pool.params.pool = rng.next_below(2) ? mc::PoolMethod::kAve
                                             : mc::PoolMethod::kMax;
        pool.params.kernel_size = 2;
        pool.params.stride = 2;
        s.layers.push_back(pool);
        blob = "p" + std::to_string(i);
        break;
      }
      default:
        break;  // bare conv
    }
  }

  LayerSpec ip;
  ip.type = "InnerProduct";
  ip.name = "ip";
  ip.bottoms = {blob};
  ip.tops = {"ip"};
  ip.params.num_output = 10;
  ip.params.weight_filler = mc::FillerSpec::gaussian(0.1f);
  s.layers.push_back(ip);

  LayerSpec loss;
  loss.type = "SoftmaxWithLoss";
  loss.name = "loss";
  loss.bottoms = {"ip", "label"};
  loss.tops = {"loss"};
  s.layers.push_back(loss);
  return s;
}

class NetGradient : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetGradient, AnalyticMatchesNumericThroughWholeNet) {
  glp::Rng rng(GetParam());
  Env env;
  Net net(random_net(rng), env.ec);

  // One forward to lock in the batch (the data layer advances its cursor
  // per forward; freeze it by rewinding: simplest is to re-feed the same
  // cursor — instead, evaluate numerically with the NEXT batches matching
  // because every objective() call below re-runs the data layer. To keep
  // the loss a pure function of the weights we bypass Net::forward's data
  // layer advance by comparing against the same forward sequence: run
  // forward k times for the numeric +/- probes in lock-step pairs.)
  //
  // Simpler and exact: gradient-check layers AFTER data by re-running the
  // full net but resetting the data cursor each time via a fresh Net is
  // costly. Instead exploit determinism: the cursor advance is
  // deterministic, so probe pairs (+eps, −eps) straddle the SAME two
  // batches when we always run forward twice per probe and compare sums.
  //
  // In practice the clean approach: make the dataset a single batch so
  // every epoch is identical (train_size == batch_size... train_size=64 vs
  // batch 3 — not aligned). We instead set train_size == batch in
  // random_net? It is 64. Align here by consuming forwards so the cursor
  // position is irrelevant: train_size % batch != 0 rotates batches.
  //
  // Final approach: wrap the objective as "mean loss over one full epoch
  // alignment cycle" is overkill for a test — simply rebuild the net per
  // probe from the same seed (cheap at this size) so data, weights and
  // cursor all reset identically.

  // Analytic gradients at the initial state.
  net.zero_param_diffs();
  net.forward();
  net.backward();
  env.sync();

  std::vector<std::vector<float>> analytic;
  for (const auto& p : net.learnable_params()) {
    analytic.push_back(glptest::snapshot(p->diff(), p->count()));
  }
  const std::size_t num_params = net.learnable_params().size();

  const double eps = 1e-2;
  for (std::size_t pi = 0; pi < num_params; ++pi) {
    const std::size_t count = net.learnable_params()[pi]->count();
    const std::size_t stride = std::max<std::size_t>(1, count / 8);
    for (std::size_t i = 0; i < count; i += stride) {
      auto probe = [&](double delta) {
        glp::Rng probe_rng(GetParam());
        Env probe_env;
        Net probe_net(random_net(probe_rng), probe_env.ec);
        probe_net.learnable_params()[pi]->mutable_data()[i] +=
            static_cast<float>(delta);
        probe_net.forward();
        return static_cast<double>(probe_net.total_loss());
      };
      const double numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
      const double a = analytic[pi][i];
      const double scale = std::max({1.0, std::abs(a), std::abs(numeric)});
      EXPECT_NEAR(a, numeric, 3e-2 * scale)
          << "param " << pi << " elem " << i << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArchitectures, NetGradient,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
