#include <gtest/gtest.h>

#include "common/check.hpp"

#include "minicaffe/models.hpp"
#include "minicaffe/net_parser.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using mc::LayerSpec;
using mc::Net;
using mc::NetSpec;

NetSpec tiny_net(int batch = 4) {
  NetSpec s;
  s.name = "tiny";
  LayerSpec data;
  data.type = "Data";
  data.name = "data";
  data.tops = {"data", "label"};
  data.params.dataset = mc::DatasetSpec::mnist();
  data.params.batch_size = batch;
  s.layers.push_back(data);

  LayerSpec ip;
  ip.type = "InnerProduct";
  ip.name = "ip";
  ip.bottoms = {"data"};
  ip.tops = {"ip"};
  ip.params.num_output = 10;
  s.layers.push_back(ip);

  LayerSpec loss;
  loss.type = "SoftmaxWithLoss";
  loss.name = "loss";
  loss.bottoms = {"ip", "label"};
  loss.tops = {"loss"};
  s.layers.push_back(loss);
  return s;
}

TEST(Net, BuildsAndRunsTinyNet) {
  Env env;
  Net net(tiny_net(), env.ec);
  EXPECT_TRUE(net.has_blob("data"));
  EXPECT_TRUE(net.has_blob("ip"));
  EXPECT_EQ(net.learnable_params().size(), 2u);
  net.forward();
  const float loss = net.total_loss();
  EXPECT_NEAR(loss, std::log(10.0f), 0.5f);
  net.backward();
  env.sync();
}

TEST(Net, UnknownBottomThrows) {
  Env env;
  NetSpec s = tiny_net();
  s.layers[1].bottoms = {"nonexistent"};
  EXPECT_THROW(Net(s, env.ec), glp::InvalidArgument);
}

TEST(Net, DuplicateLayerNameThrows) {
  Env env;
  NetSpec s = tiny_net();
  s.layers[2].name = "ip";
  EXPECT_THROW(Net(s, env.ec), glp::InvalidArgument);
}

TEST(Net, RedefiningBlobNotInPlaceThrows) {
  Env env;
  NetSpec s = tiny_net();
  s.layers[1].tops = {"data"};  // overwrites data without consuming it in place
  // "data" IS a bottom of ip, so this is legal in-place... make it illegal:
  s.layers[1].bottoms = {"label"};
  EXPECT_THROW(Net(s, env.ec), glp::InvalidArgument);
}

TEST(Net, InPlaceLayerSharesBlob) {
  Env env;
  NetSpec s = tiny_net();
  LayerSpec relu;
  relu.type = "ReLU";
  relu.name = "relu";
  relu.bottoms = {"ip"};
  relu.tops = {"ip"};
  s.layers.insert(s.layers.begin() + 2, relu);
  Net net(std::move(s), env.ec);
  net.forward();
  env.sync();
  // Post-ReLU the ip blob must be non-negative.
  const mc::Blob* ip = net.blob("ip");
  for (std::size_t i = 0; i < ip->count(); ++i) {
    EXPECT_GE(ip->data()[i], 0.0f);
  }
}

TEST(Net, LookupApis) {
  Env env;
  Net net(tiny_net(), env.ec);
  EXPECT_NE(net.layer_by_name("ip"), nullptr);
  EXPECT_EQ(net.layer_by_name("nope"), nullptr);
  EXPECT_THROW(net.blob("nope"), glp::InvalidArgument);
  const auto names = net.blob_names();
  EXPECT_EQ(names.size(), 4u);  // data, label, ip, loss
}

TEST(Net, ParamSharingReusesBlobAndAccumulatesGradients) {
  Env env;
  NetSpec s = tiny_net();
  // Second IP consuming the same data, sharing weights with the first.
  s.layers[1].param_names = {"w", "b"};
  LayerSpec ip2 = s.layers[1];
  ip2.name = "ip2";
  ip2.tops = {"ip2"};
  s.layers.insert(s.layers.begin() + 2, ip2);
  LayerSpec loss2;
  loss2.type = "SoftmaxWithLoss";
  loss2.name = "loss2";
  loss2.bottoms = {"ip2", "label"};
  loss2.tops = {"loss2"};
  s.layers.push_back(loss2);

  Net net(std::move(s), env.ec);
  // Shared params appear once in the learnable list.
  EXPECT_EQ(net.learnable_params().size(), 2u);
  auto* l1 = net.layer_by_name("ip");
  auto* l2 = net.layer_by_name("ip2");
  EXPECT_EQ(l1->param_blobs()[0].get(), l2->param_blobs()[0].get());

  net.forward();
  env.sync();
  // Identical weights + identical input → identical outputs.
  EXPECT_EQ(glptest::max_abs_diff(
                glptest::snapshot(net.blob("ip")->data(), net.blob("ip")->count()),
                glptest::snapshot(net.blob("ip2")->data(), net.blob("ip2")->count())),
            0.0);

  net.zero_param_diffs();
  net.backward();
  env.sync();
  // Both branches see the same gradient, so the shared diff is 2x one branch.
  // (Indirect check: diff must be nonzero.)
  const mc::Blob& w = *net.learnable_params()[0];
  double norm = 0;
  for (std::size_t i = 0; i < w.count(); ++i) norm += std::abs(w.diff()[i]);
  EXPECT_GT(norm, 0.0);
}

TEST(Net, SharedParamShapeMismatchThrows) {
  Env env;
  NetSpec s = tiny_net();
  s.layers[1].param_names = {"w"};
  LayerSpec ip2 = s.layers[1];
  ip2.name = "ip2";
  ip2.tops = {"ip2"};
  ip2.params.num_output = 7;  // different shape, same param name
  s.layers.insert(s.layers.begin() + 2, ip2);
  EXPECT_THROW(Net(std::move(s), env.ec), glp::InvalidArgument);
}

TEST(Net, ConsumerContractViolationThrows) {
  // Two assigning consumers (ReLU, Sigmoid) of the same blob → error.
  Env env;
  NetSpec s = tiny_net();
  LayerSpec r1;
  r1.type = "ReLU";
  r1.name = "r1";
  r1.bottoms = {"ip"};
  r1.tops = {"r1"};
  LayerSpec r2;
  r2.type = "Sigmoid";
  r2.name = "r2";
  r2.bottoms = {"ip"};
  r2.tops = {"r2"};
  // Give the branches loss consumers so gradients propagate into them.
  LayerSpec l1;
  l1.type = "EuclideanLoss";
  l1.name = "l1";
  l1.bottoms = {"r1", "r2"};
  l1.tops = {"l1"};
  s.layers.insert(s.layers.begin() + 2, r1);
  s.layers.insert(s.layers.begin() + 3, r2);
  s.layers.insert(s.layers.begin() + 4, l1);
  EXPECT_THROW(Net(std::move(s), env.ec), glp::InvalidArgument);
}

TEST(Net, FanOutThroughAccumulatingLayersIsAllowed) {
  // The same blob feeding two InnerProduct layers (accumulate-safe) is fine.
  Env env;
  NetSpec s = tiny_net();
  LayerSpec ip2 = s.layers[1];
  ip2.name = "ip2";
  ip2.tops = {"ip2"};
  ip2.bottoms = {"ip"};
  LayerSpec ip3 = ip2;
  ip3.name = "ip3";
  ip3.tops = {"ip3"};
  LayerSpec cc;
  cc.type = "Concat";
  cc.name = "cc";
  cc.bottoms = {"ip2", "ip3"};
  cc.tops = {"cc"};
  LayerSpec loss2;
  loss2.type = "EuclideanLoss";
  loss2.name = "l2";
  loss2.bottoms = {"ip2", "ip3"};
  loss2.tops = {"l2"};
  s.layers.insert(s.layers.begin() + 2, ip2);
  s.layers.insert(s.layers.begin() + 3, ip3);
  s.layers.back().bottoms = {"ip2", "label"};  // loss consumes a branch
  EXPECT_NO_THROW(Net(std::move(s), env.ec));
}

TEST(Net, LossIsWeighted) {
  Env env;
  NetSpec s = tiny_net();
  s.layers[2].params.loss_weight = 2.0f;
  Net net(std::move(s), env.ec);
  net.forward();
  EXPECT_NEAR(net.total_loss(), 2.0f * std::log(10.0f), 1.0f);
}

TEST(Net, TimingOnlyModeRunsWithoutNumerics) {
  Env env(gpusim::DeviceTable::p100(), 0, kern::ComputeMode::kTimingOnly);
  Net net(mc::models::cifar10_quick(10), env.ec);
  net.forward();
  net.backward();
  env.sync();
  EXPECT_GT(env.ctx.device().stats().kernels_launched, 0u);
}

TEST(Net, SummaryListsLayersShapesAndParams) {
  Env env;
  Net net(tiny_net(), env.ec);
  const std::string s = net.summary();
  EXPECT_NE(s.find("InnerProduct"), std::string::npos);
  EXPECT_NE(s.find("4x1x28x28"), std::string::npos);
  EXPECT_NE(s.find("learnable parameters"), std::string::npos);
  // ip: 10x784 weights + 10 bias = 7850.
  EXPECT_NE(s.find("7850"), std::string::npos);
}

// --- parser --------------------------------------------------------------------------

constexpr const char* kTextNet = R"(
# a comment
name: "parsed"
layer {
  name: "data" type: "Data"
  top: "data" top: "label"
  dataset: "mnist"
  batch_size: 4
}
layer {
  name: "ip" type: "InnerProduct"
  bottom: "data" top: "ip"
  num_output: 10
  weight_filler { type: "gaussian" std: 0.05 }
  bias_filler { type: "constant" value: 0.1 }
}
layer {
  name: "loss" type: "SoftmaxWithLoss"
  bottom: "ip" bottom: "label" top: "loss"
  loss_weight: 1.5
}
)";

TEST(NetParser, ParsesFullNet) {
  const NetSpec s = mc::parse_net_text(kTextNet);
  EXPECT_EQ(s.name, "parsed");
  ASSERT_EQ(s.layers.size(), 3u);
  EXPECT_EQ(s.layers[0].params.dataset.name, "mnist");
  EXPECT_EQ(s.layers[0].params.batch_size, 4);
  EXPECT_EQ(s.layers[1].params.num_output, 10);
  EXPECT_EQ(s.layers[1].params.weight_filler.kind, mc::FillerSpec::Kind::kGaussian);
  EXPECT_FLOAT_EQ(s.layers[1].params.weight_filler.std, 0.05f);
  EXPECT_FLOAT_EQ(s.layers[1].params.bias_filler.value, 0.1f);
  EXPECT_FLOAT_EQ(s.layers[2].params.loss_weight, 1.5f);
  ASSERT_EQ(s.layers[2].bottoms.size(), 2u);
}

TEST(NetParser, ParsedNetTrains) {
  Env env;
  Net net(mc::parse_net_text(kTextNet), env.ec);
  net.forward();
  const float before = net.total_loss();
  EXPECT_GT(before, 0.0f);
}

TEST(NetParser, ReportsLineNumbers) {
  try {
    mc::parse_net_text("name: \"x\"\nlayer {\n  bogus_key: 3\n}\n");
    FAIL();
  } catch (const glp::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(NetParser, RejectsMalformedInput) {
  EXPECT_THROW(mc::parse_net_text("layer {"), glp::InvalidArgument);
  EXPECT_THROW(mc::parse_net_text("name: \"unterminated"), glp::InvalidArgument);
  EXPECT_THROW(mc::parse_net_text("wat: 3"), glp::InvalidArgument);
  EXPECT_THROW(mc::parse_net_text("layer { name: \"x\" }"),
               glp::InvalidArgument);  // missing type
  EXPECT_THROW(mc::parse_net_text("layer { type: \"Pooling\" pool: MEDIAN }"),
               glp::InvalidArgument);
}

TEST(NetParser, PoolMethodsAndBooleans) {
  const NetSpec s = mc::parse_net_text(R"(
    layer { name: "p" type: "Pooling" pool: AVE kernel_size: 2 stride: 2 }
    layer { name: "c" type: "Convolution" bias_term: false num_output: 4 kernel_size: 1 }
  )");
  EXPECT_EQ(s.layers[0].params.pool, mc::PoolMethod::kAve);
  EXPECT_FALSE(s.layers[1].params.bias_term);
}

TEST(NetParser, RoundTripThroughSerializer) {
  const NetSpec original = mc::parse_net_text(kTextNet);
  const std::string text = mc::net_to_text(original);
  const NetSpec reparsed = mc::parse_net_text(text);
  ASSERT_EQ(reparsed.layers.size(), original.layers.size());
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.layers[1].params.num_output, 10);
  EXPECT_EQ(reparsed.layers[0].params.batch_size, 4);
}

TEST(NetParser, CustomDatasetDimensions) {
  const NetSpec s = mc::parse_net_text(R"(
    layer {
      name: "data" type: "Data" top: "data" top: "label"
      dataset: "features" dataset_channels: 832 dataset_height: 7
      dataset_width: 7 dataset_classes: 10 batch_size: 32
    }
  )");
  EXPECT_EQ(s.layers[0].params.dataset.channels, 832);
  EXPECT_EQ(s.layers[0].params.dataset.height, 7);
}

}  // namespace
