#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "gpusim/occupancy.hpp"

namespace {

using gpusim::DeviceProps;
using gpusim::DeviceTable;
using gpusim::LaunchConfig;
using gpusim::pack_residency;
using gpusim::ResidencyRequest;
using gpusim::ResidencySlot;

LaunchConfig cfg(unsigned blocks, unsigned threads, std::size_t smem = 0,
                 int regs = 32) {
  LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  c.smem_static_bytes = smem;
  c.regs_per_thread = regs;
  return c;
}

// --- single-kernel limits (Eqs. 4, 5, β_max) ------------------------------------

TEST(MaxBlocksPerSm, ThreadLimited) {
  const DeviceProps d = DeviceTable::p100();  // τ_max 2048
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 512)), 4);
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 1024)), 2);
}

TEST(MaxBlocksPerSm, BlockCountLimited) {
  const DeviceProps d = DeviceTable::p100();  // β_max 32
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 32)), 32);
}

TEST(MaxBlocksPerSm, SharedMemoryLimited) {
  const DeviceProps d = DeviceTable::p100();  // 64 KiB per SM
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 64, 16 * 1024)), 4);
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 64, 65 * 1024)), 0);
}

TEST(MaxBlocksPerSm, KeplerHasSmallerBlockLimit) {
  const DeviceProps d = DeviceTable::k40c();  // β_max 16
  EXPECT_EQ(gpusim::max_blocks_per_sm_single(d, cfg(100, 32)), 16);
}

TEST(SingleKernelOccupancy, FullWithLargeBlocks) {
  const DeviceProps d = DeviceTable::p100();
  EXPECT_NEAR(gpusim::single_kernel_occupancy(d, cfg(1000, 1024)), 1.0, 1e-9);
}

TEST(SingleKernelOccupancy, LimitedBySmem) {
  const DeviceProps d = DeviceTable::p100();
  // One 256-thread block per SM (smem) → 256/2048 = 0.125 occupancy.
  EXPECT_NEAR(gpusim::single_kernel_occupancy(d, cfg(1000, 256, 48 * 1024)),
              0.125, 1e-9);
}

// --- multi-kernel packing -------------------------------------------------------

TEST(PackResidency, SingleSmallKernelGetsOneBlockPerSm) {
  const DeviceProps d = DeviceTable::p100();  // 56 SMs
  const auto slots = pack_residency(d, {{cfg(3, 256), 3}});
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].blocks_per_sm, 1);
  EXPECT_EQ(slots[0].resident_blocks, 3u);  // capped by demand
}

TEST(PackResidency, LargeKernelSaturatesThreads) {
  const DeviceProps d = DeviceTable::p100();
  // 1024-thread blocks: 2 per SM → 112 resident.
  const auto slots = pack_residency(d, {{cfg(10000, 1024), 10000}});
  EXPECT_EQ(slots[0].blocks_per_sm, 2);
  EXPECT_EQ(slots[0].resident_blocks, 112u);
}

TEST(PackResidency, EarlierKernelHasPriority) {
  const DeviceProps d = DeviceTable::p100();
  // First kernel takes the whole thread budget; second gets nothing.
  const auto slots = pack_residency(
      d, {{cfg(10000, 1024), 10000}, {cfg(10000, 1024), 10000}});
  EXPECT_EQ(slots[0].blocks_per_sm, 2);
  EXPECT_EQ(slots[1].blocks_per_sm, 0);
}

TEST(PackResidency, SmallKernelsShareAnSm) {
  const DeviceProps d = DeviceTable::p100();
  const auto slots =
      pack_residency(d, {{cfg(56, 256), 56}, {cfg(56, 256), 56}});
  EXPECT_EQ(slots[0].resident_blocks, 56u);
  EXPECT_EQ(slots[1].resident_blocks, 56u);
}

TEST(PackResidency, ZeroWantedBlocksYieldsZero) {
  const DeviceProps d = DeviceTable::p100();
  const auto slots = pack_residency(d, {{cfg(10, 256), 0}});
  EXPECT_EQ(slots[0].resident_blocks, 0u);
}

// Property: no packing ever exceeds the per-SM hard budgets (Eqs. 4–5).
class PackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackProperty, HardConstraintsHold) {
  glp::Rng rng(GetParam());
  const auto devices = DeviceTable::all();
  const DeviceProps& d =
      devices[rng.next_below(devices.size())];

  std::vector<ResidencyRequest> reqs;
  const int n = 1 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < n; ++i) {
    const unsigned threads = 32u << rng.next_below(6);       // 32..1024
    const unsigned blocks = 1 + static_cast<unsigned>(rng.next_below(4000));
    const std::size_t smem =
        rng.next_below(3) == 0 ? (1u << (8 + rng.next_below(6))) : 0;  // ≤16K
    ResidencyRequest r;
    r.config = cfg(blocks, threads, smem);
    r.blocks_wanted = rng.next_below(blocks + 1);
    reqs.push_back(r);
  }

  const auto slots = pack_residency(d, reqs);
  ASSERT_EQ(slots.size(), reqs.size());

  double threads_used = 0, smem_used = 0, blocks_used = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_LE(slots[i].resident_blocks, reqs[i].blocks_wanted);
    const double avg_per_sm =
        static_cast<double>(slots[i].resident_blocks) / d.sm_count;
    threads_used += avg_per_sm * static_cast<double>(reqs[i].config.threads_per_block());
    smem_used += avg_per_sm * static_cast<double>(reqs[i].config.smem_per_block());
    blocks_used += avg_per_sm;
  }
  EXPECT_LE(threads_used, d.max_threads_per_sm + 1e-6);
  EXPECT_LE(smem_used, static_cast<double>(d.shared_mem_per_sm) + 1e-6);
  EXPECT_LE(blocks_used, d.max_blocks_per_sm + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, PackProperty,
                         ::testing::Range<std::uint64_t>(0, 50));

// --- register soft constraint ---------------------------------------------------

TEST(RegisterPressure, ComputedFromPacking) {
  const DeviceProps d = DeviceTable::p100();  // 64K regs per SM
  std::vector<ResidencyRequest> reqs = {{cfg(56, 1024, 0, 64), 56}};
  const auto slots = pack_residency(d, reqs);
  // 1 block/SM × 1024 threads × 64 regs = 64K = exactly full.
  EXPECT_NEAR(gpusim::register_pressure(d, reqs, slots), 1.0, 1e-9);
}

TEST(RegisterSlowdown, NoPenaltyBelowCapacity) {
  EXPECT_DOUBLE_EQ(gpusim::register_slowdown(0.5), 1.0);
  EXPECT_DOUBLE_EQ(gpusim::register_slowdown(1.0), 1.0);
}

TEST(RegisterSlowdown, HyperbolicWithFloor) {
  EXPECT_NEAR(gpusim::register_slowdown(2.0), 0.5, 1e-9);
  EXPECT_NEAR(gpusim::register_slowdown(100.0), 0.25, 1e-9);  // floored
}

TEST(Occupancy, RejectsZeroThreadBlocks) {
  const DeviceProps d = DeviceTable::p100();
  LaunchConfig bad = cfg(1, 1);
  bad.block = {0, 1, 1};
  EXPECT_THROW(gpusim::max_blocks_per_sm_single(d, bad), glp::InvalidArgument);
}

}  // namespace
