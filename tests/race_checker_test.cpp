// Race checker unit tests: each ordering invariant is violated by a
// hand-built synthetic timeline and must be flagged, and a real
// scheduler-produced timeline must come back clean.

#include <gtest/gtest.h>

#include "core/glp4nn.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"
#include "testing/race_checker.hpp"

namespace {

using glpfuzz::RaceViolation;

gpusim::KernelRecord kernel(std::uint64_t corr, gpusim::StreamId stream,
                            double submit, double start, double end) {
  gpusim::KernelRecord k;
  k.correlation_id = corr;
  k.name = "k" + std::to_string(corr);
  k.stream = stream;
  k.submit_ns = submit;
  k.start_ns = start;
  k.end_ns = end;
  return k;
}

bool has_kind(const glpfuzz::RaceReport& report, RaceViolation::Kind kind) {
  for (const RaceViolation& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(RaceChecker, EmptyAndCleanTimelinesPass) {
  gpusim::Timeline t;
  t.set_enabled(true);
  const gpusim::DeviceProps props = gpusim::DeviceTable::p100();
  EXPECT_TRUE(glpfuzz::check_timeline(t, props).clean());

  // Two streams, properly fenced by a default-stream op.
  t.add_kernel(kernel(1, 0, 0, 0, 100));    // default: barrier
  t.add_kernel(kernel(2, 1, 10, 100, 200));  // waits for corr 1
  t.add_kernel(kernel(3, 2, 20, 100, 250));  // concurrent with corr 2
  t.add_kernel(kernel(4, 0, 30, 250, 300));  // waits for everything
  const glpfuzz::RaceReport report = glpfuzz::check_timeline(t, props);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.ops_checked, 4u);
  EXPECT_EQ(report.peak_concurrency, 2);
}

TEST(RaceChecker, DetectsStreamFifoViolation) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 1, 0, 0, 100));
  t.add_kernel(kernel(2, 1, 0, 50, 150));  // starts before corr 1 ends
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kStreamFifo));
}

TEST(RaceChecker, DetectsDefaultStreamBarrierBefore) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 1, 0, 0, 100));
  t.add_kernel(kernel(2, 0, 0, 50, 150));  // stream-0 op starts too early
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kDefaultBarrierBefore));
}

TEST(RaceChecker, DetectsDefaultStreamBarrierAfter) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 0, 0, 0, 100));
  t.add_kernel(kernel(2, 1, 0, 50, 150));  // ignores the default barrier
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kDefaultBarrierAfter));
}

TEST(RaceChecker, DetectsConcurrencyCapViolation) {
  gpusim::DeviceProps props = gpusim::DeviceTable::p100();
  props.max_concurrent_kernels = 2;
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 1, 0, 0, 100));
  t.add_kernel(kernel(2, 2, 0, 10, 100));
  t.add_kernel(kernel(3, 3, 0, 20, 100));  // third resident kernel
  const auto report = glpfuzz::check_timeline(t, props);
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kConcurrencyCap));
  EXPECT_EQ(report.peak_concurrency, 3);

  // Back-to-back on the cap boundary is legal: end == start.
  gpusim::Timeline ok;
  ok.set_enabled(true);
  ok.add_kernel(kernel(1, 1, 0, 0, 100));
  ok.add_kernel(kernel(2, 2, 0, 10, 100));
  ok.add_kernel(kernel(3, 3, 0, 100, 200));  // admitted as corr 1/2 retire
  EXPECT_TRUE(glpfuzz::check_timeline(ok, props).clean());
}

TEST(RaceChecker, DetectsDuplicateCorrelationIds) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(7, 1, 0, 0, 100));
  t.add_kernel(kernel(7, 2, 0, 100, 200));
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kDuplicateCorrelation));
}

TEST(RaceChecker, DetectsNonMonotonicTimestamps) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 1, 50, 40, 100));  // started before submitted
  t.add_kernel(kernel(2, 1, 0, 200, 150));  // ended before it started
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_TRUE(has_kind(report, RaceViolation::Kind::kNonMonotonic));
}

TEST(RaceChecker, MarkersMirrorViolations) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(kernel(1, 1, 0, 0, 100));
  t.add_kernel(kernel(2, 1, 0, 50, 150));
  const auto report =
      glpfuzz::check_timeline(t, gpusim::DeviceTable::p100());
  const auto markers = glpfuzz::violation_markers(report);
  ASSERT_EQ(markers.size(), report.violations.size());
  EXPECT_EQ(markers[0].stream, report.violations[0].stream);
  EXPECT_EQ(markers[0].ts_ns, report.violations[0].ts_ns);
  EXPECT_NE(markers[0].name.find("stream-fifo"), std::string::npos);
}

gpusim::KernelRecord named_kernel(const std::string& name, std::uint64_t corr,
                                  gpusim::StreamId stream, double start,
                                  double end) {
  gpusim::KernelRecord k = kernel(corr, stream, start, start, end);
  k.name = name;
  return k;
}

TEST(RaceChecker, OpScheduleAcceptsConcurrentSiblingBranches) {
  // A diamond: a -> {b, c} -> d. b and c fully overlap on different
  // streams — legitimate DAG concurrency, NOT a race.
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(named_kernel("a/fwd/k0", 1, 1, 0, 100));
  t.add_kernel(named_kernel("b/fwd/k0", 2, 1, 100, 200));
  t.add_kernel(named_kernel("c/fwd/k0", 3, 2, 100, 210));
  t.add_kernel(named_kernel("d/fwd/k0", 4, 1, 210, 300));
  const std::vector<glpfuzz::ScheduledOp> ops = {
      {"a/fwd", 1, {}},
      {"b/fwd", 1, {0}},
      {"c/fwd", 2, {0}},
      {"d/fwd", 1, {1, 2}},
  };
  const glpfuzz::OpScheduleReport report = glpfuzz::check_op_schedule(t, ops);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.ops_matched, 4u);
  EXPECT_EQ(report.edges_checked, 4u);
  EXPECT_EQ(report.peak_op_concurrency, 2);  // b and c overlap
}

TEST(RaceChecker, OpScheduleFlagsConsumerStartingBeforeProducerEnded) {
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(named_kernel("a/fwd/k0", 1, 1, 0, 100));
  t.add_kernel(named_kernel("b/fwd/k0", 2, 2, 50, 150));  // a -> b violated
  const std::vector<glpfuzz::ScheduledOp> ops = {
      {"a/fwd", 1, {}},
      {"b/fwd", 2, {0}},
  };
  const glpfuzz::OpScheduleReport report = glpfuzz::check_op_schedule(t, ops);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations.front().kind,
            RaceViolation::Kind::kDagOrderViolation);
  EXPECT_EQ(report.violations.front().correlation_id, 2u);
}

TEST(RaceChecker, OpScheduleKernellessOpsPassVacuously) {
  // Absorbed / fused-away ops contribute no kernels; edges touching them
  // are skipped, and a multi-kernel op's span is its min-start/max-end.
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(named_kernel("a/fwd/k0", 1, 1, 0, 100));
  t.add_kernel(named_kernel("a/fwd/k1", 2, 2, 10, 120));
  t.add_kernel(named_kernel("c/fwd/k0", 3, 1, 120, 200));
  const std::vector<glpfuzz::ScheduledOp> ops = {
      {"a/fwd", 1, {}},
      {"b/fwd", 1, {0}},  // no kernels on the trace
      {"c/fwd", 1, {0, 1}},
  };
  const glpfuzz::OpScheduleReport report = glpfuzz::check_op_schedule(t, ops);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.ops_matched, 2u);
  EXPECT_EQ(report.edges_checked, 1u);  // only a -> c is checkable
}

TEST(RaceChecker, OpSchedulePrefixMatchRespectsBoundaries) {
  // "conv1/fwd" must not claim "conv10/fwd/..." kernels.
  gpusim::Timeline t;
  t.set_enabled(true);
  t.add_kernel(named_kernel("conv10/fwd/k0", 1, 1, 0, 100));
  t.add_kernel(named_kernel("conv1/fwd/k0", 2, 1, 100, 200));
  const std::vector<glpfuzz::ScheduledOp> ops = {
      {"conv1/fwd", 1, {}},
  };
  const glpfuzz::OpScheduleReport report = glpfuzz::check_op_schedule(t, ops);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.ops_matched, 1u);
  EXPECT_EQ(report.peak_op_concurrency, 1);
}

TEST(RaceChecker, RealSchedulerTimelineIsClean) {
  // A real multi-stream training run must satisfy every invariant.
  glp4nn::SchedulerOptions opts;
  opts.fixed_streams = 4;
  glptest::GlpEnv glp(gpusim::DeviceTable::p100(), opts);
  glp.ctx.device().timeline().set_enabled(true);
  mc::Net net(mc::models::lenet(16), glp.ec);
  mc::SgdSolver solver(net, {});
  solver.step(2);
  glp.sync();

  const auto report = glpfuzz::check_timeline(glp.ctx.device().timeline(),
                                              glp.ctx.props());
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.ops_checked, 0u);
  EXPECT_LE(report.peak_concurrency,
            glp.ctx.props().max_concurrent_kernels);
}

}  // namespace
