#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/glp4nn.hpp"

namespace {

using glp4nn::DispatchPolicy;
using glp4nn::Glp4nnEngine;
using glp4nn::RuntimeScheduler;
using glp4nn::SchedulerOptions;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  return c;
}

struct SchedulerTest : ::testing::Test {
  SchedulerTest() : ctx(gpusim::DeviceTable::p100()) {}

  RuntimeScheduler& scheduler(SchedulerOptions options = {}) {
    engine = std::make_unique<Glp4nnEngine>(options);
    return engine->scheduler_for(ctx);
  }

  // Run one scope of `tasks` tasks, each launching one kernel.
  void run_scope(RuntimeScheduler& s, const std::string& scope, int tasks,
                 double flops = 5e7) {
    s.begin_scope(scope, static_cast<std::size_t>(tasks));
    for (int i = 0; i < tasks; ++i) {
      const kern::Lane lane = s.task_lane(static_cast<std::size_t>(i));
      ctx.device().launch_kernel(lane.stream, scope + "/work", cfg(8, 256),
                                 {flops, flops / 4}, {});
    }
    s.end_scope();
    ctx.device().synchronize();
  }

  scuda::Context ctx;
  std::unique_ptr<Glp4nnEngine> engine;
};

TEST_F(SchedulerTest, FirstEncounterProfilesOnDefaultStream) {
  RuntimeScheduler& s = scheduler();
  s.begin_scope("conv/fwd", 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s.task_lane(static_cast<std::size_t>(i)).stream,
              gpusim::kDefaultStream);
  }
  // Still undecided mid-profiling.
  EXPECT_EQ(s.stream_count("conv/fwd"), 0);
  for (int i = 0; i < 4; ++i) {
    ctx.device().launch_kernel(gpusim::kDefaultStream, "conv/fwd/k",
                               cfg(8, 256), {5e7, 1e7}, {});
  }
  s.end_scope();
  EXPECT_GT(s.stream_count("conv/fwd"), 0);
}

TEST_F(SchedulerTest, SteadyStateUsesPoolStreams) {
  RuntimeScheduler& s = scheduler();
  run_scope(s, "conv/fwd", 8);  // profile
  const int streams = s.stream_count("conv/fwd");
  ASSERT_GT(streams, 1);

  s.begin_scope("conv/fwd", 8);
  std::set<gpusim::StreamId> used;
  for (int i = 0; i < 8; ++i) {
    const kern::Lane lane = s.task_lane(static_cast<std::size_t>(i));
    EXPECT_NE(lane.stream, gpusim::kDefaultStream);
    used.insert(lane.stream);
    EXPECT_EQ(lane.lane, i % streams);
  }
  s.end_scope();
  EXPECT_EQ(static_cast<int>(used.size()), std::min(streams, 8));
}

TEST_F(SchedulerTest, RoundRobinMapsModulo) {
  SchedulerOptions opt;
  opt.fixed_streams = 3;
  RuntimeScheduler& s = scheduler(opt);
  s.begin_scope("x", 9);
  const auto l0 = s.task_lane(0);
  const auto l3 = s.task_lane(3);
  const auto l7 = s.task_lane(7);
  EXPECT_EQ(l0.stream, l3.stream);
  EXPECT_EQ(l7.lane, 1);
  s.end_scope();
}

TEST_F(SchedulerTest, BlockCyclicPolicyGroupsContiguously) {
  SchedulerOptions opt;
  opt.fixed_streams = 2;
  opt.policy = DispatchPolicy::kBlockCyclic;
  RuntimeScheduler& s = scheduler(opt);
  s.begin_scope("x", 8);
  EXPECT_EQ(s.task_lane(0).lane, 0);
  EXPECT_EQ(s.task_lane(3).lane, 0);
  EXPECT_EQ(s.task_lane(4).lane, 1);
  EXPECT_EQ(s.task_lane(7).lane, 1);
  s.end_scope();
}

TEST_F(SchedulerTest, FixedStreamsBypassesProfiling) {
  SchedulerOptions opt;
  opt.fixed_streams = 4;
  RuntimeScheduler& s = scheduler(opt);
  s.begin_scope("never/profiled", 4);
  EXPECT_NE(s.task_lane(0).stream, gpusim::kDefaultStream);
  s.end_scope();
  EXPECT_EQ(s.stream_count("never/profiled"), 4);
  // No analyzer decision was created.
  EXPECT_FALSE(engine->analyzer_for(ctx)->has_decision("never/profiled"));
}

TEST_F(SchedulerTest, MaxStreamsCapsDecision) {
  SchedulerOptions opt;
  opt.max_streams = 2;
  RuntimeScheduler& s = scheduler(opt);
  run_scope(s, "big", 16, 5e8);
  EXPECT_LE(s.stream_count("big"), 2);
}

TEST_F(SchedulerTest, StrictReproRoundsToDivisorOf32) {
  SchedulerOptions opt;
  opt.strict_repro = true;
  RuntimeScheduler& s = scheduler(opt);
  for (int requested : {1, 2, 3, 5, 7, 8, 12, 31, 32, 100}) {
    const int clamped = s.clamp_streams(requested);
    EXPECT_EQ(32 % clamped, 0) << requested;
    EXPECT_LE(clamped, std::max(requested, 1));
  }
  EXPECT_EQ(s.clamp_streams(7), 4);
  EXPECT_EQ(s.clamp_streams(100), 32);
}

TEST_F(SchedulerTest, ScopesMustNotNest) {
  RuntimeScheduler& s = scheduler();
  s.begin_scope("a", 1);
  EXPECT_THROW(s.begin_scope("b", 1), glp::InvalidArgument);
  s.task_lane(0);
  ctx.device().launch_kernel(gpusim::kDefaultStream, "a/k", cfg(2, 64),
                             {1e5, 1e5}, {});
  s.end_scope();
  EXPECT_THROW(s.end_scope(), glp::InvalidArgument);
  EXPECT_THROW(s.task_lane(0), glp::InvalidArgument);
}

TEST_F(SchedulerTest, EachScopeProfiledExactlyOnce) {
  RuntimeScheduler& s = scheduler();
  run_scope(s, "conv1/fwd", 4);
  run_scope(s, "conv1/fwd", 4);
  run_scope(s, "conv1/fwd", 4);
  run_scope(s, "conv2/fwd", 4);
  const auto& decisions = engine->analyzer_for(ctx)->decisions();
  EXPECT_EQ(decisions.size(), 2u);
}

TEST_F(SchedulerTest, EmptyProfiledScopeRetriesNextTime) {
  RuntimeScheduler& s = scheduler();
  s.begin_scope("empty", 0);
  s.end_scope();  // nothing launched → no decision
  EXPECT_EQ(s.stream_count("empty"), 0);
  run_scope(s, "empty", 4);  // profiles for real now
  EXPECT_GT(s.stream_count("empty"), 0);
}

TEST_F(SchedulerTest, OverheadChargedToHostClock) {
  RuntimeScheduler& s = scheduler();
  const double host_before = ctx.device().host_now();
  run_scope(s, "scope", 8);
  const glp4nn::FrameworkCosts costs = engine->costs();
  EXPECT_GT(costs.profiling_ms + costs.analysis_ms, 0.0);
  // Host clock advanced by at least the charged overhead.
  EXPECT_GT(ctx.device().host_now() - host_before,
            (costs.profiling_ms + costs.analysis_ms) * 1e6);
}

TEST_F(SchedulerTest, SteadyStateIsFasterThanSerialForOverlappableWork) {
  // Measure one steady-state scope vs the same work on the default stream.
  RuntimeScheduler& s = scheduler();
  run_scope(s, "w", 16);  // profiling pass
  const double t0 = ctx.device().host_now();
  run_scope(s, "w", 16);  // steady
  const double glp_time = ctx.device().host_now() - t0;

  scuda::Context serial_ctx(gpusim::DeviceTable::p100());
  const double s0 = serial_ctx.device().host_now();
  for (int i = 0; i < 16; ++i) {
    serial_ctx.device().launch_kernel(gpusim::kDefaultStream, "w/work",
                                      cfg(8, 256), {5e7, 5e7 / 4}, {});
  }
  serial_ctx.device().synchronize();
  const double serial_time = serial_ctx.device().host_now() - s0;
  EXPECT_LT(glp_time, serial_time);
}

TEST_F(SchedulerTest, TenantSlicesDisjointAcrossDifferingDecisions) {
  // Regression: slice geometry must be uniform per device, not derived
  // from the scope's analyzer decision. Scopes are tenant/batch-size
  // keyed, so two concurrent slots can be running scopes whose decided
  // stream counts differ — if each slot computed its slice from its own
  // decision, the ranges could overlap and in-flight batches would share
  // streams (serialising supposedly isolated tenants).
  SchedulerOptions opt;
  opt.policy = DispatchPolicy::kTenantSliced;
  RuntimeScheduler& s = scheduler(opt);
  // Profile two scopes with very different concurrency appetites.
  run_scope(s, "heavy", 16, 5e8);
  run_scope(s, "light", 2, 1e5);
  const int heavy_streams = s.stream_count("heavy");
  const int light_streams = s.stream_count("light");
  ASSERT_GT(heavy_streams, 0);
  ASSERT_GT(light_streams, 0);
  ASSERT_NE(heavy_streams, light_streams)
      << "test needs scopes with differing decisions to exercise the bug";

  const auto steady_pool = [&](const std::string& scope, int tasks,
                               int slot) {
    s.set_tenant({/*tenant=*/slot, /*priority=*/0, slot, /*num_slots=*/2,
                  gpusim::kDefaultStream});
    s.begin_scope(scope, static_cast<std::size_t>(tasks));
    std::set<gpusim::StreamId> used;
    for (int i = 0; i < tasks; ++i) {
      used.insert(s.task_lane(static_cast<std::size_t>(i)).stream);
    }
    s.end_scope();
    s.clear_tenant();
    return used;
  };

  const auto slot0 = steady_pool("heavy", 16, 0);
  const auto slot1 = steady_pool("light", 2, 1);
  for (gpusim::StreamId a : slot0) {
    EXPECT_EQ(slot1.count(a), 0u)
        << "stream " << a << " shared between concurrent batch slots";
  }
  // Swapping which scope runs in which slot must also stay disjoint.
  const auto slot0_light = steady_pool("light", 2, 0);
  const auto slot1_heavy = steady_pool("heavy", 16, 1);
  for (gpusim::StreamId a : slot0_light) {
    EXPECT_EQ(slot1_heavy.count(a), 0u)
        << "stream " << a << " shared between concurrent batch slots";
  }
}

// StreamManager unit tests live in stream_manager_test.cpp.

TEST(Engine, SharedTrackerPrivateSchedulers) {
  // Fig. 5's layout: one engine, two devices → two schedulers/analyzers,
  // one tracker, one stream manager.
  scuda::Context a(gpusim::DeviceTable::p100());
  scuda::Context b(gpusim::DeviceTable::k40c());
  Glp4nnEngine engine;
  RuntimeScheduler& sa = engine.scheduler_for(a);
  RuntimeScheduler& sb = engine.scheduler_for(b);
  EXPECT_NE(&sa, &sb);
  EXPECT_EQ(&engine.scheduler_for(a), &sa);  // cached
  EXPECT_NE(engine.analyzer_for(a), nullptr);
  EXPECT_NE(engine.analyzer_for(a), engine.analyzer_for(b));
}

}  // namespace
