// Tests for weight snapshots, solver state persistence, the extended
// solvers (Nesterov / AdaGrad) and the train/test phase machinery.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/evaluator.hpp"
#include "minicaffe/serialization.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using mc::Net;
using mc::SgdSolver;
using mc::SolverParams;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("glp4nn_test_") + name))
      .string();
}

std::vector<float> all_weights(const Net& net) {
  std::vector<float> out;
  for (const auto& p : net.learnable_params()) {
    out.insert(out.end(), p->data(), p->data() + p->count());
  }
  return out;
}

TEST(Serialization, SaveLoadRoundTrip) {
  const std::string path = temp_path("roundtrip.glpw");
  Env a;
  Net net_a(mc::models::lenet(4), a.ec);
  SgdSolver(net_a, {}).step(2);
  const auto trained = all_weights(net_a);
  mc::save_weights(net_a, path);

  Env b;
  Net net_b(mc::models::lenet(4), b.ec);
  EXPECT_NE(glptest::max_abs_diff(trained, all_weights(net_b)), 0.0);
  const mc::RestoreReport report = mc::load_weights(net_b, path);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(report.missing, 0);
  EXPECT_GT(report.restored, 0);
  EXPECT_EQ(glptest::max_abs_diff(trained, all_weights(net_b)), 0.0);
  std::filesystem::remove(path);
}

TEST(Serialization, SharedParamsSerialisedOnce) {
  const std::string path = temp_path("siamese.glpw");
  Env a;
  Net net(mc::models::siamese_mnist(4), a.ec);
  mc::save_weights(net, path);
  Env b;
  Net net2(mc::models::siamese_mnist(4), b.ec);
  const auto report = mc::load_weights(net2, path);
  EXPECT_EQ(report.missing, 0);  // aliases resolve to the restored blob
  // The two branches still share after restore.
  EXPECT_EQ(net2.layer_by_name("conv1")->param_blobs()[0].get(),
            net2.layer_by_name("conv1_p")->param_blobs()[0].get());
  std::filesystem::remove(path);
}

TEST(Serialization, MismatchedNetReportsSkips) {
  const std::string path = temp_path("mismatch.glpw");
  Env a;
  Net lenet(mc::models::lenet(4), a.ec);
  mc::save_weights(lenet, path);
  Env b;
  Net cifar(mc::models::cifar10_quick(4), b.ec);
  const auto report = mc::load_weights(cifar, path);
  EXPECT_GT(report.skipped, 0);
  EXPECT_GT(report.missing, 0);
  std::filesystem::remove(path);
}

TEST(Serialization, RejectsGarbageFiles) {
  const std::string path = temp_path("garbage.glpw");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a snapshot", f);
    std::fclose(f);
  }
  Env env;
  Net net(mc::models::lenet(4), env.ec);
  EXPECT_THROW(mc::load_weights(net, path), glp::InvalidArgument);
  EXPECT_THROW(mc::load_weights(net, temp_path("does_not_exist.glpw")),
               glp::InvalidArgument);
  std::filesystem::remove(path);
}

TEST(SolverSnapshot, RestorePreservesWeightsHistoryAndIteration) {
  const std::string path = temp_path("resume.glpw");
  Env b;
  Net net_b(mc::models::lenet(8), b.ec);
  SolverParams with_momentum;
  with_momentum.momentum = 0.9f;
  std::vector<float> at_snapshot;
  {
    SgdSolver first(net_b, with_momentum);
    first.step(3);
    first.snapshot(path);
    at_snapshot = all_weights(net_b);
  }

  Env c;
  Net net_c(mc::models::lenet(8), c.ec);
  SgdSolver second(net_c, with_momentum);
  second.restore(path);
  EXPECT_EQ(second.iter(), 3);
  EXPECT_EQ(glptest::max_abs_diff(at_snapshot, all_weights(net_c)), 0.0);

  // The momentum history must round-trip too: one further step on both
  // solvers (same weights, same next batch — both data cursors restart is
  // NOT true for net_b, so drive net_c twice instead: restore into a
  // second fresh net and compare the two restored runs).
  Env d;
  Net net_d(mc::models::lenet(8), d.ec);
  SgdSolver third(net_d, with_momentum);
  third.restore(path);
  second.step(2);
  third.step(2);
  EXPECT_EQ(glptest::max_abs_diff(all_weights(net_c), all_weights(net_d)), 0.0)
      << "two restored runs must agree bit for bit";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".state");
}

TEST(Solvers, NesterovDiffersFromSgdButConverges) {
  auto train = [](mc::SolverType type) {
    Env env;
    Net net(mc::models::lenet(16), env.ec);
    SolverParams p;
    p.type = type;
    p.base_lr = 0.01f;
    p.momentum = 0.9f;
    SgdSolver solver(net, p);
    std::vector<float> losses;
    solver.step(10, [&](int, float l) { losses.push_back(l); });
    return losses;
  };
  const auto sgd = train(mc::SolverType::kSgd);
  const auto nesterov = train(mc::SolverType::kNesterov);
  EXPECT_NE(sgd, nesterov);  // different trajectories...
  EXPECT_LT(nesterov.back(), nesterov.front() + 0.5f);  // ...but it learns
}

TEST(Solvers, AdaGradAccumulatesSquaredGradients) {
  Env env;
  Net net(mc::models::lenet(8), env.ec);
  SolverParams p;
  p.type = mc::SolverType::kAdaGrad;
  // AdaGrad's first step is ~lr·sign(g) per weight; keep lr conservative.
  p.base_lr = 0.005f;
  p.momentum = 0.0f;
  SgdSolver solver(net, p);
  std::vector<float> losses;
  solver.step(12, [&](int, float l) { losses.push_back(l); });
  EXPECT_LT(losses.back(), losses.front() + 0.5f);
}

TEST(Phase, DropoutInactiveAtTestTime) {
  Env env;
  Net net(mc::models::caffenet(2), env.ec);
  (void)net;  // building CaffeNet in numeric mode is enough to be slow;
  // use a small dedicated net instead:
  Env env2;
  mc::NetSpec s;
  s.name = "d";
  mc::LayerSpec data;
  data.type = "Data";
  data.name = "data";
  data.tops = {"data", "label"};
  data.params.dataset = mc::DatasetSpec::mnist();
  data.params.batch_size = 4;
  s.layers.push_back(data);
  mc::LayerSpec drop;
  drop.type = "Dropout";
  drop.name = "drop";
  drop.bottoms = {"data"};
  drop.tops = {"dropped"};
  s.layers.push_back(drop);
  Net dnet(s, env2.ec);

  env2.ec.train = false;  // TEST phase
  dnet.forward();
  env2.sync();
  const mc::Blob* in = dnet.blob("data");
  const mc::Blob* out = dnet.blob("dropped");
  for (std::size_t i = 0; i < in->count(); ++i) {
    ASSERT_EQ(in->data()[i], out->data()[i]);
  }

  env2.ec.train = true;  // back to TRAIN: some elements must drop
  dnet.forward();
  env2.sync();
  int zeros = 0;
  for (std::size_t i = 0; i < out->count(); ++i) {
    if (out->data()[i] == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 0);
}

TEST(Evaluator, AveragesScalarBlobsOverIterations) {
  Env env;
  mc::NetSpec spec = mc::models::lenet(8);
  mc::LayerSpec acc;
  acc.type = "Accuracy";
  acc.name = "accuracy";
  acc.bottoms = {"ip2", "label"};
  acc.tops = {"accuracy"};
  spec.layers.push_back(acc);
  Net net(spec, env.ec);

  const mc::EvalResult r = mc::evaluate(net, 4);
  EXPECT_EQ(r.iterations, 4);
  EXPECT_GT(r.mean_or("loss", -1.0f), 0.0f);
  EXPECT_GE(r.mean_or("accuracy", -1.0f), 0.0f);
  EXPECT_LE(r.mean_or("accuracy", 2.0f), 1.0f);
  EXPECT_GT(r.total_ms, 0.0);
  EXPECT_EQ(r.mean_or("missing", -7.0f), -7.0f);
  // Phase restored.
  EXPECT_TRUE(env.ec.train);
}

TEST(Evaluator, RejectsZeroIterations) {
  Env env;
  Net net(mc::models::lenet(4), env.ec);
  EXPECT_THROW(mc::evaluate(net, 0), glp::InvalidArgument);
}

TEST(Evaluator, TestPhaseGivesDeterministicLoss) {
  // With dropout disabled in TEST phase, two evaluations of the same
  // batch positions give identical results only if data repeats; here we
  // simply check evaluation is stable across schedulers.
  auto run = [](bool glp) {
    if (glp) {
      glptest::GlpEnv env;
      Net net(mc::models::lenet(8), env.ec);
      return mc::evaluate(net, 3).mean_or("loss", -1.0f);
    }
    Env env;
    Net net(mc::models::lenet(8), env.ec);
    return mc::evaluate(net, 3).mean_or("loss", -1.0f);
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
