// Unit tests for the serving front end's queueing machinery: the bounded
// RequestQueue (admission control, deadline expiry), the DynamicBatcher
// (cut rules, per-tenant FIFO), and the synthetic trace generator
// (determinism, arrival shapes). The end-to-end batching behaviour on a
// simulated device is covered by serving_server_test and the serving
// differential corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "serving/batcher.hpp"
#include "serving/request_queue.hpp"
#include "serving/trace_gen.hpp"
#include "test_helpers.hpp"

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

serving::InferenceRequest req(std::uint64_t id, int tenant, double arrival_ns,
                              double deadline_ns = 0.0) {
  serving::InferenceRequest r;
  r.id = id;
  r.tenant = tenant;
  r.arrival_ns = arrival_ns;
  r.deadline_ns = deadline_ns;
  return r;
}

const auto kAllFree = [](int) { return true; };

// --- RequestQueue ------------------------------------------------------------

TEST(RequestQueue, AdmissionControlBouncesWhenFull) {
  serving::RequestQueue q(2);
  EXPECT_TRUE(q.push(req(0, 0, 10.0)));
  EXPECT_TRUE(q.push(req(1, 0, 20.0)));
  EXPECT_FALSE(q.push(req(2, 0, 30.0)));
  EXPECT_EQ(q.size(), 2u);

  // Draining frees capacity again.
  q.pop(0, 1);
  EXPECT_TRUE(q.push(req(3, 0, 40.0)));
}

TEST(RequestQueue, PopIsPerTenantFifo) {
  serving::RequestQueue q(8);
  q.push(req(0, 0, 1.0));
  q.push(req(1, 1, 2.0));
  q.push(req(2, 0, 3.0));
  q.push(req(3, 1, 4.0));
  q.push(req(4, 0, 5.0));

  EXPECT_EQ(q.count(0), 3u);
  EXPECT_EQ(q.count(1), 2u);

  const auto got = q.pop(0, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 0u);
  EXPECT_EQ(got[1].id, 2u);

  // Tenant 1's entries are untouched and still in order.
  const auto rest = q.pop(1, 10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].id, 1u);
  EXPECT_EQ(rest[1].id, 3u);
  EXPECT_EQ(q.size(), 1u);  // request 4 remains
}

TEST(RequestQueue, ExpireDropsOnlyPastDeadlines) {
  serving::RequestQueue q(8);
  q.push(req(0, 0, 0.0, 100.0));
  q.push(req(1, 0, 0.0, 200.0));
  q.push(req(2, 0, 0.0));  // no deadline — never expires
  EXPECT_EQ(q.next_deadline(), 100.0);

  const auto dropped = q.expire(150.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].id, 0u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_deadline(), 200.0);

  EXPECT_TRUE(q.expire(1e12).size() == 1u);  // request 1
  EXPECT_EQ(q.next_deadline(), kInf);        // only the deadline-free one left
  EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, ExpiryFreesCapacityDespiteLazyHandles) {
  // Expired slots are reclaimed lazily (their per-tenant handles stay in
  // the deque until the front reaches them) but capacity must free
  // eagerly, or an expiry storm would wedge admission.
  serving::RequestQueue q(4);
  for (int i = 0; i < 4; ++i) {
    q.push(req(static_cast<std::uint64_t>(i), 0, 0.0, 100.0 + i));
  }
  EXPECT_FALSE(q.push(req(9, 0, 0.0)));
  EXPECT_EQ(q.expire(1e9).size(), 4u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.count(0), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.push(req(10u + static_cast<std::uint64_t>(i), 0, 1.0)));
  }
  const auto got = q.pop(0, 8);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].id, 10u);  // dead handles skipped, order preserved
}

TEST(RequestQueue, NextDeadlineSkipsPoppedEntries) {
  // The deadline min-heap is invalidated lazily: popping a request must
  // not leave its stale heap entry visible through next_deadline().
  serving::RequestQueue q(8);
  q.push(req(0, 0, 0.0, 50.0));
  q.push(req(1, 0, 0.0, 100.0));
  EXPECT_EQ(q.next_deadline(), 50.0);
  const auto got = q.pop(0, 1);  // takes id 0 (deadline 50)
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(q.next_deadline(), 100.0);
  q.pop(0, 1);
  EXPECT_EQ(q.next_deadline(), kInf);
  EXPECT_TRUE(q.expire(1e9).empty());  // nothing left to expire
}

TEST(RequestQueue, DowngradedRequestsNeverExpire) {
  serving::RequestQueue q(8);
  auto r = req(0, 0, 0.0, 100.0);
  r.downgraded = true;  // deadline kept for accounting, stripped from expiry
  q.push(std::move(r));
  q.push(req(1, 0, 0.0, 100.0));
  EXPECT_EQ(q.next_deadline(), 100.0);
  const auto dropped = q.expire(1e9);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].id, 1u);
  const auto got = q.pop(0, 8);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0u);
  EXPECT_TRUE(got[0].downgraded);
  EXPECT_GT(got[0].deadline_ns, 0.0);  // still carried for SLO accounting
}

TEST(RequestQueue, OldestAndTenantOrdering) {
  serving::RequestQueue q(8);
  q.push(req(0, 1, 100.0));
  q.push(req(1, 0, 200.0));
  q.push(req(2, 1, 300.0));

  ASSERT_NE(q.oldest(1), nullptr);
  EXPECT_EQ(q.oldest(1)->id, 0u);
  ASSERT_NE(q.oldest(0), nullptr);
  EXPECT_EQ(q.oldest(0)->id, 1u);
  EXPECT_EQ(q.oldest(7), nullptr);  // unknown tenant

  const auto order = q.tenants_by_oldest();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // tenant 1's head arrived first
  EXPECT_EQ(order[1], 0);

  q.pop(1, 2);
  const auto after = q.tenants_by_oldest();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], 0);
}

// --- DynamicBatcher ----------------------------------------------------------

TEST(DynamicBatcher, CutsFullBatchImmediately) {
  serving::BatchPolicy p;
  p.max_batch = 3;
  p.max_delay_us = 1e6;  // delay timeout effectively off
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  for (int i = 0; i < 4; ++i) q.push(req(static_cast<std::uint64_t>(i), 0, i));

  const auto batch = b.try_form(q, 10.0, kAllFree);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->tenant, 0);
  ASSERT_EQ(batch->size(), 3);
  EXPECT_EQ(batch->requests[0].id, 0u);
  EXPECT_EQ(batch->requests[1].id, 1u);
  EXPECT_EQ(batch->requests[2].id, 2u);
  EXPECT_EQ(q.size(), 1u);

  // One leftover request: not full, not timed out → nothing ready.
  EXPECT_FALSE(b.try_form(q, 10.0, kAllFree).has_value());
}

TEST(DynamicBatcher, DelayTimeoutCutsPartialBatch) {
  serving::BatchPolicy p;
  p.max_batch = 8;
  p.max_delay_us = 100.0;  // 100'000 ns
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  q.push(req(0, 0, 1000.0));
  q.push(req(1, 0, 2000.0));

  EXPECT_EQ(b.next_cut_ns(q), 1000.0 + 100.0 * gpusim::kUs);
  EXPECT_FALSE(b.try_form(q, 50000.0, kAllFree).has_value());

  const auto batch = b.try_form(q, 1000.0 + 100.0 * gpusim::kUs, kAllFree);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2);  // timeout flushes everything queued
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(b.next_cut_ns(q), kInf);
}

TEST(DynamicBatcher, DisabledPolicyIsImmediateBatchOne) {
  serving::BatchPolicy p;
  p.enabled = false;
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  q.push(req(0, 0, 5.0));
  q.push(req(1, 0, 6.0));

  EXPECT_EQ(b.next_cut_ns(q), 5.0);  // ready at arrival, no delay
  auto first = b.try_form(q, 5.0, kAllFree);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 1);
  EXPECT_EQ(first->requests[0].id, 0u);
  auto second = b.try_form(q, 5.0, kAllFree);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->requests[0].id, 1u);
  EXPECT_NE(first->id, second->id);
  EXPECT_EQ(b.batches_formed(), 2u);
}

TEST(DynamicBatcher, BusySlotsAreSkippedWithoutReordering) {
  serving::BatchPolicy p;
  p.max_batch = 2;
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  q.push(req(0, 0, 1.0));
  q.push(req(1, 0, 2.0));
  q.push(req(2, 1, 3.0));
  q.push(req(3, 1, 4.0));

  // Tenant 0 is busy: the batcher must serve tenant 1 and leave tenant
  // 0's requests queued in order.
  const auto busy0 = [](int tenant) { return tenant != 0; };
  const auto batch = b.try_form(q, 10.0, busy0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->tenant, 1);
  EXPECT_FALSE(b.try_form(q, 10.0, busy0).has_value());

  // Slot freed: tenant 0 cuts next, still in arrival order.
  const auto next = b.try_form(q, 10.0, kAllFree);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->tenant, 0);
  EXPECT_EQ(next->requests[0].id, 0u);
  EXPECT_EQ(next->requests[1].id, 1u);
}

TEST(DynamicBatcher, OldestTenantIsServedFirst) {
  serving::BatchPolicy p;
  p.max_batch = 4;
  p.max_delay_us = 10.0;
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  q.push(req(0, 1, 100.0));  // tenant 1 arrived first
  q.push(req(1, 0, 200.0));

  // Both tenants are timed out; the tenant whose oldest request has
  // waited longest cuts first.
  const auto batch = b.try_form(q, 1e9, kAllFree);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->tenant, 1);
}

// Deterministic seeded arrival trace through the batcher: asserts exact
// batch composition under the cut rules (the satellite contract).
TEST(DynamicBatcher, SeededTraceFormsDeterministicBatches) {
  const std::uint64_t seed = glptest::test_seed(7);
  GLP_SCOPED_SEED(seed);

  serving::TraceSpec spec;
  spec.requests = 32;
  spec.rate_rps = 4000.0;
  spec.tenants = 2;
  spec.seed = seed;
  spec.fill_inputs = false;
  const auto trace = serving::make_trace(spec, {16, 16});

  serving::BatchPolicy p;
  p.max_batch = 4;
  p.max_delay_us = 1500.0;

  // Replay the arrivals twice; the batch stream must be identical, each
  // batch single-tenant, within-batch ids strictly increasing, and the
  // per-tenant id sequence across batches strictly increasing (no
  // reordering within a tenant's stream).
  std::vector<std::vector<std::uint64_t>> runs[2];
  for (auto& batches : runs) {
    serving::DynamicBatcher b(p);
    serving::RequestQueue q(64);
    std::size_t next = 0;
    std::uint64_t last_id[2] = {0, 0};
    bool seen_any[2] = {false, false};
    double now = 0.0;
    while (next < trace.size() || !q.empty()) {
      if (next < trace.size() &&
          (q.empty() || trace[next].arrival_ns <= b.next_cut_ns(q))) {
        now = trace[next].arrival_ns;
        ASSERT_TRUE(q.push(trace[next++]));
      } else {
        now = b.next_cut_ns(q);
      }
      while (auto batch = b.try_form(q, now, kAllFree)) {
        ASSERT_GE(batch->size(), 1);
        ASSERT_LE(batch->size(), p.max_batch);
        std::vector<std::uint64_t> ids;
        for (const auto& r : batch->requests) {
          EXPECT_EQ(r.tenant, batch->tenant);
          const auto t = static_cast<std::size_t>(batch->tenant);
          if (seen_any[t]) EXPECT_GT(r.id, last_id[t]) << "tenant stream reordered";
          last_id[t] = r.id;
          seen_any[t] = true;
          ids.push_back(r.id);
        }
        batches.push_back(std::move(ids));
      }
    }
    std::size_t total = 0;
    for (const auto& ids : batches) total += ids.size();
    EXPECT_EQ(total, trace.size());
  }
  EXPECT_EQ(runs[0], runs[1]) << "batch composition is not seed-deterministic";
}

TEST(DynamicBatcher, ContinuousModeCutsTheMomentASlotIsFree) {
  serving::BatchPolicy p;
  p.mode = serving::BatchMode::kContinuous;
  p.max_batch = 8;
  p.max_delay_us = 1e9;  // irrelevant in continuous mode
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  q.push(req(0, 0, 1000.0));
  q.push(req(1, 0, 2000.0));

  // No delay window: everything queued is ready right now.
  EXPECT_EQ(b.next_cut_ns(q), 1000.0);
  const auto batch = b.try_form(q, 2000.0, kAllFree);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2);  // min(queued, max_batch), no waiting for full
  EXPECT_TRUE(q.empty());

  // Busy slot: requests keep queueing (the in-flight batch is the window).
  q.push(req(2, 0, 3000.0));
  const auto busy = [](int) { return false; };
  EXPECT_FALSE(b.try_form(q, 3000.0, busy).has_value());
  const auto next = b.try_form(q, 3000.0, kAllFree);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->size(), 1);
}

TEST(DynamicBatcher, ContinuousModeCapsAtMaxBatch) {
  serving::BatchPolicy p;
  p.mode = serving::BatchMode::kContinuous;
  p.max_batch = 4;
  serving::DynamicBatcher b(p);
  serving::RequestQueue q(16);
  for (int i = 0; i < 10; ++i) q.push(req(static_cast<std::uint64_t>(i), 0, i));
  const auto first = b.try_form(q, 100.0, kAllFree);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 4);
  EXPECT_EQ(first->requests[0].id, 0u);
  const auto second = b.try_form(q, 100.0, kAllFree);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 4);
  EXPECT_EQ(second->requests[0].id, 4u);  // strict arrival order across cuts
}

TEST(DynamicBatcher, StridedIdsStayDisjointAcrossShards) {
  serving::BatchPolicy p;
  p.enabled = false;
  serving::DynamicBatcher shard0(p, 0, 3);
  serving::DynamicBatcher shard1(p, 1, 3);
  serving::RequestQueue q(16);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    q.push(req(static_cast<std::uint64_t>(i), 0, i));
    ids.push_back(shard0.try_form(q, 100.0, kAllFree)->id);
    q.push(req(static_cast<std::uint64_t>(10 + i), 0, i));
    ids.push_back(shard1.try_form(q, 100.0, kAllFree)->id);
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 3, 4, 6, 7}));
}

// --- trace generation --------------------------------------------------------

TEST(TraceGen, IsSeedDeterministic) {
  serving::TraceSpec spec;
  spec.requests = 64;
  spec.tenants = 2;
  spec.seed = 99;
  const auto a = serving::make_trace(spec, {8, 8});
  const auto b = serving::make_trace(spec, {8, 8});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    EXPECT_EQ(a[i].input, b[i].input);
  }

  spec.seed = 100;
  const auto c = serving::make_trace(spec, {8, 8});
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].arrival_ns != c[i].arrival_ns;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical arrivals";
}

TEST(TraceGen, ArrivalsAreOrderedAndShaped) {
  for (const auto arrival : {serving::ArrivalProcess::kPoisson,
                             serving::ArrivalProcess::kBursty,
                             serving::ArrivalProcess::kUniform}) {
    serving::TraceSpec spec;
    spec.requests = 500;
    spec.rate_rps = 5000.0;
    spec.arrival = arrival;
    spec.tenants = 3;
    spec.deadline_ms = 2.0;
    const auto trace = serving::make_trace(spec, {4, 4, 4});
    ASSERT_EQ(trace.size(), 500u);
    double prev = -1.0;
    for (const auto& r : trace) {
      EXPECT_GE(r.arrival_ns, prev);
      prev = r.arrival_ns;
      EXPECT_GE(r.tenant, 0);
      EXPECT_LT(r.tenant, 3);
      EXPECT_EQ(r.deadline_ns, r.arrival_ns + 2.0 * gpusim::kMs);
      EXPECT_EQ(r.input.size(), 4u);
    }
    // The realized mean rate should be within 25% of the offered load —
    // loose enough for 500 Poisson samples, tight enough to catch a
    // units slip (seconds vs nanoseconds).
    const double span_s = trace.back().arrival_ns / 1e9;
    const double realized = 500.0 / span_s;
    EXPECT_GT(realized, 0.75 * spec.rate_rps);
    EXPECT_LT(realized, 1.25 * spec.rate_rps);
  }
}

TEST(TraceGen, RejectsImpossibleBurstEnvelope) {
  serving::TraceSpec spec;
  spec.arrival = serving::ArrivalProcess::kBursty;
  spec.burst_duty = 0.5;
  spec.burst_factor = 2.5;  // duty*factor > 1: no off-phase budget left
  EXPECT_THROW(serving::make_trace(spec, {1}), glp::Error);
}

TEST(TraceGen, RejectsBadModulationParameters) {
  {
    serving::TraceSpec s;
    s.arrival = serving::ArrivalProcess::kDiurnal;
    s.diurnal_amplitude = 1.0;  // rate would hit zero in the trough
    EXPECT_THROW(serving::make_trace(s, {1}), glp::Error);
  }
  {
    serving::TraceSpec s;
    s.arrival = serving::ArrivalProcess::kHeavyTail;
    s.pareto_alpha = 1.0;  // mean gap diverges
    EXPECT_THROW(serving::make_trace(s, {1}), glp::Error);
  }
  {
    serving::TraceSpec s;
    s.arrival = serving::ArrivalProcess::kAdversarial;
    s.tenants = 2;
    s.adversary_tenant = 2;  // out of range
    EXPECT_THROW(serving::make_trace(s, {1, 1}), glp::Error);
  }
}

// The satellite contract for every arrival pattern, new generators
// included: seed-determinism, ordered arrivals, and a realized mean rate
// within ±5% of the offered load (the thinning construction makes the
// modulated envelopes unbiased, so a tight band is attainable with a
// large sample).
TEST(TraceGen, EveryPatternIsDeterministicAndHitsTheOfferedRate) {
  const serving::ArrivalProcess all[] = {
      serving::ArrivalProcess::kPoisson,   serving::ArrivalProcess::kBursty,
      serving::ArrivalProcess::kUniform,   serving::ArrivalProcess::kDiurnal,
      serving::ArrivalProcess::kFlashCrowd, serving::ArrivalProcess::kHeavyTail,
      serving::ArrivalProcess::kAdversarial};
  for (const auto arrival : all) {
    serving::TraceSpec spec;
    spec.requests = 20000;
    spec.rate_rps = 20000.0;
    spec.arrival = arrival;
    spec.tenants = 2;
    spec.seed = 1234;
    spec.fill_inputs = false;
    SCOPED_TRACE(serving::arrival_name(arrival));

    const auto a = serving::make_trace(spec, {4, 4});
    const auto b = serving::make_trace(spec, {4, 4});
    ASSERT_EQ(a.size(), 20000u);
    ASSERT_EQ(b.size(), a.size());
    double prev = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].arrival_ns, b[i].arrival_ns) << "not seed-deterministic";
      ASSERT_EQ(a[i].tenant, b[i].tenant);
      ASSERT_GE(a[i].arrival_ns, prev);
      ASSERT_GT(a[i].arrival_ns, 0.0);
      prev = a[i].arrival_ns;
    }
    const double realized =
        static_cast<double>(a.size()) / (a.back().arrival_ns / 1e9);
    EXPECT_GT(realized, 0.95 * spec.rate_rps)
        << "realized " << realized << " rps";
    EXPECT_LT(realized, 1.05 * spec.rate_rps)
        << "realized " << realized << " rps";
  }
}

TEST(TraceGen, HeavyTailGapsAreHeavierThanExponential) {
  serving::TraceSpec spec;
  spec.requests = 20000;
  spec.rate_rps = 20000.0;
  spec.arrival = serving::ArrivalProcess::kHeavyTail;
  spec.fill_inputs = false;
  const auto trace = serving::make_trace(spec, {1});
  const double mean_gap = trace.back().arrival_ns / trace.size();
  double max_gap = 0.0;
  double prev = 0.0;
  for (const auto& r : trace) {
    max_gap = std::max(max_gap, r.arrival_ns - prev);
    prev = r.arrival_ns;
  }
  // An exponential's max over 20k draws concentrates near mean*ln(20k)
  // ≈ 10x the mean; Pareto(2.5)'s max is far out in the tail.
  EXPECT_GT(max_gap, 20.0 * mean_gap);
}

TEST(TraceGen, AdversarialSpikesBelongToTheAdversary) {
  serving::TraceSpec spec;
  spec.requests = 5000;
  spec.rate_rps = 50000.0;
  spec.arrival = serving::ArrivalProcess::kAdversarial;
  spec.tenants = 3;
  spec.adversary_tenant = 2;
  spec.fill_inputs = false;
  const auto trace = serving::make_trace(spec, {1, 1, 1});

  const double period = spec.flash_period_ms * gpusim::kMs;
  std::size_t spike = 0, spike_adversary = 0;
  for (const auto& r : trace) {
    const double phase = std::fmod(r.arrival_ns, period) / period;
    if (phase < spec.flash_duty) {
      ++spike;
      if (r.tenant == 2) ++spike_adversary;
    }
  }
  ASSERT_GT(spike, 100u);  // the spike windows dominate arrivals by design
  EXPECT_EQ(spike_adversary, spike)
      << "spike traffic leaked to non-adversary tenants";
  // Background (off-spike) traffic still reaches the other tenants.
  bool other = false;
  for (const auto& r : trace) other = other || r.tenant != 2;
  EXPECT_TRUE(other);
}

}  // namespace
