// Fixed-seed serving-differential corpus: random inference nets, devices,
// batching policies and open-loop traces through run_serving_differential
// on every CI run. Extends the PR-1 convergence-invariance contract to
// the serving path — the batched, tenant-sliced scheduled replay must be
// bit-identical to the serial batch-1 baseline, per-tenant FIFO, and
// race-free. Failures print the seed; replay with
//
//   GLP_TEST_SEED=<seed> ./tests/serving_fuzz_test --gtest_filter='*EnvSeed*'

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "testing/serving_differential.hpp"

namespace {

class ServingCorpus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServingCorpus, ScheduledBatchedReplayMatchesSerialBatchOne) {
  const std::uint64_t seed = GetParam();
  GLP_SCOPED_SEED(seed);
  const glpfuzz::ServeCase c = glpfuzz::make_serving_case(seed);
  const glpfuzz::ServeDiffResult r = glpfuzz::run_serving_differential(c);
  EXPECT_TRUE(r.ok) << c.summary() << "\n" << r.failure;
  EXPECT_TRUE(r.races.clean()) << r.races.to_string();
  EXPECT_EQ(r.max_output_diff, 0.0) << c.summary();
  EXPECT_EQ(r.served, r.requests);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ServingCorpus,
                         ::testing::Range<std::uint64_t>(1, 16),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ServingFuzz, EnvSeedOverrideReplaysOneCase) {
  const std::uint64_t seed = glptest::test_seed(5);
  GLP_SCOPED_SEED(seed);
  const glpfuzz::ServeCase c = glpfuzz::make_serving_case(seed);
  const glpfuzz::ServeDiffResult r = glpfuzz::run_serving_differential(c);
  EXPECT_TRUE(r.ok) << c.summary() << "\n" << r.failure;
}

TEST(ServingFuzz, CasesAreSeedDeterministic) {
  const glpfuzz::ServeCase a = glpfuzz::make_serving_case(77);
  const glpfuzz::ServeCase b = glpfuzz::make_serving_case(77);
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t t = 0; t < a.nets.size(); ++t) {
    ASSERT_EQ(a.nets[t].layers.size(), b.nets[t].layers.size());
    for (std::size_t i = 0; i < a.nets[t].layers.size(); ++i) {
      EXPECT_EQ(a.nets[t].layers[i].type, b.nets[t].layers[i].type);
      EXPECT_EQ(a.nets[t].layers[i].name, b.nets[t].layers[i].name);
    }
  }
  const glpfuzz::ServeCase c = glpfuzz::make_serving_case(78);
  EXPECT_NE(a.summary(), c.summary());
}

}  // namespace
