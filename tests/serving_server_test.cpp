// End-to-end InferenceServer tests on short deterministic traces: the
// replay loop serves everything it admits, stats are self-consistent,
// deadlines expire, admission control bounces overload, tenant tags land
// in the simulated timeline, completions never reorder within a tenant,
// and the tenant-sliced scheduler beats serial dispatch at saturating
// load (the ISSUE acceptance shape, in miniature).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "serving/model_zoo.hpp"
#include "serving/server.hpp"
#include "test_helpers.hpp"
#include "testing/race_checker.hpp"

namespace {

std::vector<serving::TenantModel> two_tenants() {
  serving::TenantModel a;
  a.name = "tiny_cnn";
  a.spec = serving::tiny_cnn(1);
  serving::TenantModel b;
  b.name = "mlp";
  b.spec = serving::mlp(1);
  return {std::move(a), std::move(b)};
}

std::vector<std::size_t> sizes_of(const std::vector<serving::TenantModel>& models) {
  std::vector<std::size_t> sizes;
  for (const auto& m : models) {
    const auto& d = m.spec.layers.front().params.dataset;
    sizes.push_back(static_cast<std::size_t>(d.channels) * d.height * d.width);
  }
  return sizes;
}

TEST(InferenceServer, ServesEveryAdmittedRequest) {
  const auto models = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 40;
  ts.rate_rps = 4000.0;
  ts.tenants = 2;
  ts.seed = glptest::test_seed(11);
  GLP_SCOPED_SEED(ts.seed);
  const auto trace = serving::make_trace(ts, sizes_of(models));

  scuda::Context ctx(gpusim::DeviceTable::p100());
  serving::ServerOptions opts;
  opts.queue_capacity = 64;
  opts.keep_outputs = true;
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(trace);

  ASSERT_EQ(records.size(), trace.size());
  const auto stats = serving::InferenceServer::summarize(records);
  EXPECT_EQ(stats.served, trace.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GE(stats.mean_batch, 1.0);
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, serving::Outcome::kServed);
    EXPECT_GE(r.issue_ns, r.arrival_ns);
    EXPECT_GT(r.completion_ns, r.issue_ns);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_FALSE(r.output.empty());
  }

  // summarize() on a filtered record set (per-tenant analysis) must count
  // distinct batch ids, not assume dense ids from zero.
  for (int tenant = 0; tenant < 2; ++tenant) {
    std::vector<serving::RequestRecord> sub;
    std::set<std::uint64_t> ids;
    for (const auto& r : records) {
      if (r.tenant != tenant) continue;
      sub.push_back(r);
      ids.insert(r.batch_id);
    }
    ASSERT_FALSE(sub.empty());
    const auto ts = serving::InferenceServer::summarize(sub);
    EXPECT_EQ(ts.batches, ids.size());
    EXPECT_GE(ts.mean_batch, 1.0);
  }
}

TEST(InferenceServer, CompletionsNeverReorderWithinATenant) {
  const auto models = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 60;
  ts.rate_rps = 12000.0;  // congested: batches queue behind busy slots
  ts.tenants = 2;
  ts.seed = glptest::test_seed(12);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);

  scuda::Context ctx(gpusim::DeviceTable::p100());
  serving::ServerOptions opts;
  opts.mode = kern::ComputeMode::kTimingOnly;
  opts.queue_capacity = 128;
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(serving::make_trace(ts, sizes_of(models)));

  // `records` is in completion order; within a tenant, arrivals (and ids,
  // which the generator assigns in arrival order) must be non-decreasing.
  std::map<int, gpusim::SimTime> last_arrival;
  for (const auto& r : records) {
    if (r.outcome != serving::Outcome::kServed) continue;
    auto it = last_arrival.find(r.tenant);
    if (it != last_arrival.end()) {
      EXPECT_GE(r.arrival_ns, it->second)
          << "request " << r.id << " of tenant " << r.tenant
          << " completed before an earlier arrival";
    }
    last_arrival[r.tenant] = r.arrival_ns;
  }
}

TEST(InferenceServer, TimelineCarriesTenantTagsAndStaysRaceFree) {
  const auto props = gpusim::DeviceTable::p100();
  const auto models = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 30;
  ts.rate_rps = 8000.0;
  ts.tenants = 2;
  ts.seed = glptest::test_seed(13);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);

  scuda::Context ctx(props);
  serving::ServerOptions opts;
  opts.mode = kern::ComputeMode::kTimingOnly;
  opts.record_timeline = true;
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(serving::make_trace(ts, sizes_of(models)));
  ctx.device().synchronize();

  std::map<int, std::size_t> kernels_per_tenant;
  for (const auto& k : ctx.device().timeline().kernels()) {
    kernels_per_tenant[k.tenant] += 1;
  }
  // Both tenants' batches must have run tagged kernels; warmup and other
  // untagged activity (-1) may also be present.
  EXPECT_GT(kernels_per_tenant[0], 0u);
  EXPECT_GT(kernels_per_tenant[1], 0u);

  // The PR-1 race checker on a *serving* timeline: stream FIFO order,
  // event ordering and concurrency caps all hold for the scheduled replay.
  const glpfuzz::RaceReport races =
      glpfuzz::check_timeline(ctx.device().timeline(), props);
  EXPECT_TRUE(races.clean()) << races.to_string();
  EXPECT_GT(races.ops_checked, 0u);
  EXPECT_EQ(serving::InferenceServer::summarize(records).served,
            static_cast<std::size_t>(ts.requests));
}

TEST(InferenceServer, DeadlinesExpireQueuedRequests) {
  std::vector<serving::TenantModel> models;
  serving::TenantModel m;
  m.name = "small_cnn";
  m.spec = serving::small_cnn(1);
  models.push_back(std::move(m));

  serving::TraceSpec ts;
  ts.requests = 80;
  ts.rate_rps = 40000.0;   // far beyond one tenant's service rate
  ts.deadline_ms = 1.0;    // tight deadline
  ts.seed = glptest::test_seed(14);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);

  scuda::Context ctx(gpusim::DeviceTable::p100());
  serving::ServerOptions opts;
  opts.mode = kern::ComputeMode::kTimingOnly;
  opts.queue_capacity = 256;  // ample: drops must come from deadlines
  // Lane coalescing lifts the service rate past this trace's offered
  // load; pin it off so the backlog (and the expiry path under test)
  // actually builds up.
  opts.coalesce_lanes = false;
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(serving::make_trace(ts, sizes_of(models)));

  const auto stats = serving::InferenceServer::summarize(records);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.expired, 0u);
  EXPECT_GT(stats.served, 0u);
  EXPECT_EQ(stats.served + stats.expired, static_cast<std::size_t>(ts.requests));
  std::size_t late = 0;
  for (const auto& r : records) {
    EXPECT_GT(r.deadline_ns, 0.0);  // the whole trace carries deadlines
    if (r.outcome == serving::Outcome::kExpired) {
      EXPECT_EQ(r.completion_ns, 0.0);  // never issued
    } else if (r.completion_ns > r.deadline_ns) {
      ++late;  // issued in time but finished past the deadline
    }
  }
  EXPECT_EQ(stats.deadline_misses, late);
  EXPECT_LE(stats.deadline_misses, stats.served);
}

TEST(InferenceServer, AdmissionControlBouncesOverload) {
  std::vector<serving::TenantModel> models;
  serving::TenantModel m;
  m.name = "small_cnn";
  m.spec = serving::small_cnn(1);
  models.push_back(std::move(m));

  serving::TraceSpec ts;
  ts.requests = 80;
  ts.rate_rps = 60000.0;
  ts.seed = glptest::test_seed(15);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);

  scuda::Context ctx(gpusim::DeviceTable::p100());
  serving::ServerOptions opts;
  opts.mode = kern::ComputeMode::kTimingOnly;
  opts.queue_capacity = 4;  // tiny queue: overload must bounce
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(serving::make_trace(ts, sizes_of(models)));

  const auto stats = serving::InferenceServer::summarize(records);
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(stats.served, 0u);
  EXPECT_EQ(stats.offered, static_cast<std::size_t>(ts.requests));
}

TEST(Percentile, NearestRankReturnsActualSamples) {
  const std::vector<double> one{7.0};
  EXPECT_EQ(serving::percentile_nearest_rank(one, 0.5), 7.0);
  EXPECT_EQ(serving::percentile_nearest_rank(one, 0.99), 7.0);

  const std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(serving::percentile_nearest_rank(four, 0.50), 2.0);  // ceil(2)=2nd
  EXPECT_EQ(serving::percentile_nearest_rank(four, 0.75), 3.0);
  EXPECT_EQ(serving::percentile_nearest_rank(four, 0.76), 4.0);  // ceil(3.04)=4th
  EXPECT_EQ(serving::percentile_nearest_rank(four, 0.99), 4.0);
  EXPECT_EQ(serving::percentile_nearest_rank(four, 1.0), 4.0);
  EXPECT_EQ(serving::percentile_nearest_rank({}, 0.5), 0.0);

  // Never interpolates: every quantile of a two-point set is one of the
  // two samples, not their midpoint.
  const std::vector<double> two{10.0, 20.0};
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double v = serving::percentile_nearest_rank(two, q);
    EXPECT_TRUE(v == 10.0 || v == 20.0) << "q=" << q << " gave " << v;
  }
}

TEST(InferenceServer, SloAwareAdmissionShedsInsteadOfServingLate) {
  std::vector<serving::TenantModel> models;
  serving::TenantModel m;
  m.name = "small_cnn";
  m.spec = serving::small_cnn(1);
  models.push_back(std::move(m));

  serving::TraceSpec ts;
  ts.requests = 120;
  ts.rate_rps = 60000.0;  // far past the uncoalesced service rate
  ts.deadline_ms = 1.0;
  ts.seed = glptest::test_seed(21);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);
  const auto trace = serving::make_trace(ts, sizes_of(models));

  const auto run = [&](bool slo_aware, bool downgrade) {
    scuda::Context ctx(gpusim::DeviceTable::p100());
    serving::ServerOptions opts;
    opts.mode = kern::ComputeMode::kTimingOnly;
    opts.queue_capacity = 256;
    opts.coalesce_lanes = false;  // keep the server overloaded
    opts.admission.slo_aware = slo_aware;
    opts.admission.downgrade = downgrade;
    serving::InferenceServer server(ctx, models, opts);
    return server.replay(trace);
  };

  const auto base = serving::InferenceServer::summarize(run(false, false));
  const auto shed = serving::InferenceServer::summarize(run(true, false));
  ASSERT_GT(base.expired, 0u);  // sanity: the load is genuinely infeasible
  EXPECT_GT(shed.shed, 0u) << "SLO-aware admission never shed";
  // Shedding hopeless requests at the door must not reduce *useful* work:
  // on-time service is no worse, and attainment over what was served
  // improves (the admitted set is the feasible set).
  EXPECT_GE(shed.served - shed.deadline_misses,
            base.served - base.deadline_misses);
  EXPECT_GE(shed.slo_attainment, base.slo_attainment);
  // Fewer requests die in the queue after burning wait time there.
  EXPECT_LT(shed.expired, base.expired);
  EXPECT_EQ(shed.offered, static_cast<std::size_t>(ts.requests));
  EXPECT_EQ(shed.served + shed.expired + shed.shed + shed.rejected,
            shed.offered);

  // Determinism: the same trace sheds the same requests.
  const auto again = run(true, false);
  const auto first = run(true, false);
  ASSERT_EQ(again.size(), first.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].id, first[i].id);
    EXPECT_EQ(again[i].outcome, first[i].outcome);
  }

  // Downgrade mode converts sheds into best-effort service: nothing
  // expires (downgraded requests are exempt), and the downgrades are
  // still charged against SLO attainment.
  const auto down = serving::InferenceServer::summarize(run(true, true));
  EXPECT_GT(down.downgraded, 0u);
  EXPECT_GT(down.served, shed.served);
  EXPECT_LT(down.slo_attainment, 1.0);
}

TEST(InferenceServer, TokenBucketShedsTheNoisyTenantFirst) {
  const auto models_base = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 200;
  ts.rate_rps = 30000.0;
  ts.tenants = 2;
  ts.arrival = serving::ArrivalProcess::kAdversarial;
  ts.adversary_tenant = 0;  // tenant 0 hammers the service in spikes
  // Short spike period so this small trace spans several on/off cycles
  // (the default 100 ms period would swallow the whole trace in one
  // spike and starve tenant 1 of arrivals entirely).
  ts.flash_period_ms = 1.0;
  ts.flash_duty = 0.2;
  ts.flash_factor = 4.0;
  ts.seed = glptest::test_seed(22);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);

  auto models = models_base;
  models[0].qos.rate_rps = 2000.0;  // contract far below the spike rate
  models[0].qos.burst = 4.0;

  scuda::Context ctx(gpusim::DeviceTable::p100());
  serving::ServerOptions opts;
  opts.mode = kern::ComputeMode::kTimingOnly;
  opts.queue_capacity = 8;  // pressure builds fast
  opts.coalesce_lanes = false;
  serving::InferenceServer server(ctx, models, opts);
  const auto records = server.replay(serving::make_trace(ts, sizes_of(models)));
  const auto stats = serving::InferenceServer::summarize(records);

  ASSERT_EQ(stats.tenants.size(), 2u);
  const auto& noisy = stats.tenants[0];
  const auto& polite = stats.tenants[1];
  EXPECT_GT(noisy.shed, 0u) << "over-contract tenant never shed";
  EXPECT_EQ(polite.shed, 0u) << "in-contract tenant shed " << polite.shed;
  EXPECT_GT(polite.served, 0u);
  // Per-tenant rows must sum back to the totals.
  EXPECT_EQ(noisy.offered + polite.offered, stats.offered);
  EXPECT_EQ(noisy.served + polite.served, stats.served);
  EXPECT_EQ(noisy.shed + polite.shed, stats.shed);
}

TEST(InferenceServer, LaneCoalescingIsBitExactWithFewerKernelLaunches) {
  const auto models = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 40;
  ts.rate_rps = 6000.0;
  ts.tenants = 2;
  ts.seed = glptest::test_seed(23);
  GLP_SCOPED_SEED(ts.seed);
  const auto trace = serving::make_trace(ts, sizes_of(models));

  struct Run {
    std::vector<serving::RequestRecord> records;
    std::size_t kernels = 0;
  };
  const auto run = [&](bool coalesce) {
    scuda::Context ctx(gpusim::DeviceTable::p100());
    serving::ServerOptions opts;
    opts.keep_outputs = true;
    opts.record_timeline = true;
    opts.coalesce_lanes = coalesce;
    serving::InferenceServer server(ctx, models, opts);
    Run r;
    r.records = server.replay(trace);
    ctx.device().synchronize();
    r.kernels = ctx.device().timeline().kernels().size();
    return r;
  };

  const Run off = run(false);
  const Run on = run(true);
  ASSERT_EQ(off.records.size(), trace.size());
  ASSERT_EQ(on.records.size(), trace.size());
  EXPECT_LT(on.kernels, off.kernels)
      << "coalescing did not reduce launches: " << on.kernels << " vs "
      << off.kernels;

  std::map<std::uint64_t, const serving::RequestRecord*> by_id;
  for (const auto& r : off.records) by_id[r.id] = &r;
  for (const auto& r : on.records) {
    const auto* ref = by_id.at(r.id);
    ASSERT_EQ(r.outcome, serving::Outcome::kServed);
    ASSERT_EQ(ref->output.size(), r.output.size());
    EXPECT_EQ(std::memcmp(r.output.data(), ref->output.data(),
                          r.output.size() * sizeof(float)),
              0)
        << "request " << r.id << " output changed under coalescing";
  }
}

TEST(InferenceServer, ContinuousBatchingServesEverythingWithoutWindows) {
  const auto models = two_tenants();
  serving::TraceSpec ts;
  ts.requests = 120;
  ts.rate_rps = 20000.0;
  ts.tenants = 2;
  ts.seed = glptest::test_seed(24);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);
  const auto trace = serving::make_trace(ts, sizes_of(models));

  const auto run = [&](serving::BatchMode mode) {
    scuda::Context ctx(gpusim::DeviceTable::p100());
    serving::ServerOptions opts;
    opts.mode = kern::ComputeMode::kTimingOnly;
    opts.queue_capacity = 256;
    opts.batch.mode = mode;
    serving::InferenceServer server(ctx, models, opts);
    return serving::InferenceServer::summarize(server.replay(trace));
  };

  const auto windowed = run(serving::BatchMode::kWindowed);
  const auto continuous = run(serving::BatchMode::kContinuous);
  ASSERT_EQ(continuous.served, trace.size());
  ASSERT_EQ(windowed.served, trace.size());
  EXPECT_GE(continuous.mean_batch, 1.0);
  // Without an artificial delay window, no request waits longer than it
  // would under the windowed policy at this load.
  EXPECT_LE(continuous.p99_ms, windowed.p99_ms);
  EXPECT_LE(continuous.mean_ms, windowed.mean_ms);
}

// The acceptance-criterion shape, small enough for CI: at saturating
// offered load the tenant-sliced scheduler must beat serial dispatch on
// both p99 latency and throughput.
TEST(InferenceServer, SchedulerBeatsSerialAtSaturatingLoad) {
  // tiny_cnn + small_cnn: heavy enough that serial dispatch saturates
  // around 8k req/s while the sliced stream pool keeps absorbing load.
  std::vector<serving::TenantModel> models;
  serving::TenantModel a;
  a.name = "tiny_cnn";
  a.spec = serving::tiny_cnn(1);
  models.push_back(std::move(a));
  serving::TenantModel b;
  b.name = "small_cnn";
  b.spec = serving::small_cnn(1);
  models.push_back(std::move(b));

  serving::TraceSpec ts;
  ts.requests = 150;
  ts.rate_rps = 16000.0;
  ts.tenants = 2;
  ts.seed = glptest::test_seed(16);
  ts.fill_inputs = false;
  GLP_SCOPED_SEED(ts.seed);
  const auto trace = serving::make_trace(ts, sizes_of(models));

  const auto run = [&](bool use_scheduler) {
    scuda::Context ctx(gpusim::DeviceTable::p100());
    serving::ServerOptions opts;
    opts.mode = kern::ComputeMode::kTimingOnly;
    opts.use_scheduler = use_scheduler;
    opts.queue_capacity = 256;
    serving::InferenceServer server(ctx, models, opts);
    return serving::InferenceServer::summarize(server.replay(trace));
  };

  const auto serial = run(false);
  const auto glp = run(true);
  ASSERT_EQ(serial.served, trace.size());
  ASSERT_EQ(glp.served, trace.size());
  EXPECT_LT(glp.p99_ms, serial.p99_ms)
      << "scheduler p99 " << glp.p99_ms << " vs serial " << serial.p99_ms;
  EXPECT_GT(glp.throughput_rps, serial.throughput_rps)
      << "scheduler " << glp.throughput_rps << " rps vs serial "
      << serial.throughput_rps;
}

// --- nearest-rank percentiles ----------------------------------------------

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_EQ(serving::percentile_nearest_rank({}, 0.50), 0.0);
  EXPECT_EQ(serving::percentile_nearest_rank({}, 0.99), 0.0);
}

TEST(Percentile, SingleRecordDegeneratesToThatRecord) {
  const std::vector<double> one = {3.5};
  for (const double q : {0.0, 0.01, 0.50, 0.99, 1.0}) {
    EXPECT_EQ(serving::percentile_nearest_rank(one, q), 3.5) << "q=" << q;
  }
}

TEST(Percentile, DegenerateQuantilesClampToEndpoints) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  // q <= 0 (including NaN, which fails every comparison) must not reach
  // the unsigned cast; it degenerates to the minimum.
  EXPECT_EQ(serving::percentile_nearest_rank(s, 0.0), 1.0);
  EXPECT_EQ(serving::percentile_nearest_rank(s, -0.5), 1.0);
  EXPECT_EQ(serving::percentile_nearest_rank(
                s, std::numeric_limits<double>::quiet_NaN()),
            1.0);
  EXPECT_EQ(serving::percentile_nearest_rank(s, 1.0), 4.0);
  EXPECT_EQ(serving::percentile_nearest_rank(s, 2.0), 4.0);
}

TEST(Percentile, NearestRankOnSmallSamples) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(serving::percentile_nearest_rank(s, 0.25), 1.0);  // ceil(1.0) = 1
  EXPECT_EQ(serving::percentile_nearest_rank(s, 0.50), 2.0);
  EXPECT_EQ(serving::percentile_nearest_rank(s, 0.51), 3.0);
  EXPECT_EQ(serving::percentile_nearest_rank(s, 0.99), 4.0);
}

}  // namespace
