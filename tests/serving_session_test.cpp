// InferenceSession and the forward-only execution mode: gradient/solver
// memory is actually skipped, backward() is rejected, replicas share the
// primary's weights without copies, the replica pool rounds to powers of
// two, and a batched forward is bit-identical to batch-1 forwards of the
// same samples (the serving determinism contract at the session level).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "minicaffe/net.hpp"
#include "serving/model_zoo.hpp"
#include "serving/session.hpp"
#include "test_helpers.hpp"

namespace {

std::size_t net_bytes(bool inference) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::SerialDispatcher dispatcher(ctx);
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.dispatcher = &dispatcher;
  ec.train = !inference;
  ec.inference = inference;
  ec.rng = glp::Rng(1);
  mc::Net net(serving::tiny_cnn(4), ec);
  return ctx.bytes_allocated();
}

// Satellite: the forward-only memory fix. A net built for inference must
// allocate strictly less device memory than the same spec built for
// training (no diff buffers, no solver scratch) — historically forward()
// paid for gradients it never used.
TEST(InferenceMode, SkipsGradientAllocations) {
  const std::size_t train_bytes = net_bytes(false);
  const std::size_t infer_bytes = net_bytes(true);
  EXPECT_LT(infer_bytes, train_bytes);
  // Data + params dominate a forward-only net; gradients double a
  // training net's footprint, so inference should save a sizeable slice,
  // not just round a buffer away.
  EXPECT_LT(static_cast<double>(infer_bytes),
            0.75 * static_cast<double>(train_bytes));
}

TEST(InferenceMode, RejectsBackward) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  kern::SerialDispatcher dispatcher(ctx);
  mc::ExecContext ec;
  ec.ctx = &ctx;
  ec.dispatcher = &dispatcher;
  ec.train = false;
  ec.inference = true;
  mc::Net net(serving::tiny_cnn(1), ec);
  net.forward();
  ctx.device().synchronize();
  EXPECT_THROW(net.backward(), glp::Error);
}

TEST(InferenceSession, ReplicaBatchRoundsToPowersOfTwo) {
  EXPECT_EQ(serving::replica_batch_for(1), 1);
  EXPECT_EQ(serving::replica_batch_for(2), 2);
  EXPECT_EQ(serving::replica_batch_for(3), 4);
  EXPECT_EQ(serving::replica_batch_for(5), 8);
  EXPECT_EQ(serving::replica_batch_for(8), 8);
  EXPECT_EQ(serving::replica_batch_for(9), 16);
}

struct SessionEnv {
  SessionEnv()
      : ctx(gpusim::DeviceTable::p100()),
        dispatcher(ctx),
        session(ctx, dispatcher, serving::tiny_cnn(1)) {}

  scuda::Context ctx;
  kern::SerialDispatcher dispatcher;
  serving::InferenceSession session;
};

TEST(InferenceSession, ReplicasShareThePrimaryWeights) {
  SessionEnv env;
  serving::InferenceSession::Replica& r = env.session.checkout(4);
  EXPECT_EQ(r.batch, 4);
  ASSERT_EQ(env.session.replica_count(), 2u);  // primary + batch-4 arena

  const auto& primary_layers = env.session.primary().layers();
  const auto& replica_layers = r.net->layers();
  ASSERT_EQ(primary_layers.size(), replica_layers.size());
  std::size_t shared = 0;
  for (std::size_t i = 0; i < primary_layers.size(); ++i) {
    const auto& p = primary_layers[i]->param_blobs();
    const auto& q = replica_layers[i]->param_blobs();
    ASSERT_EQ(p.size(), q.size());
    for (std::size_t j = 0; j < p.size(); ++j) {
      EXPECT_EQ(p[j].get(), q[j].get())
          << "layer " << i << " param " << j << " was copied, not shared";
      ++shared;
    }
  }
  EXPECT_GT(shared, 0u);  // tiny_cnn has conv + fc weights and biases
  EXPECT_EQ(r.net->learnable_params(), env.session.primary().learnable_params());
}

TEST(InferenceSession, CheckoutReusesIdleReplicas) {
  SessionEnv env;
  serving::InferenceSession::Replica& a = env.session.checkout(3);
  EXPECT_EQ(a.batch, 4);  // rounded up
  EXPECT_TRUE(a.busy);

  // Same size while `a` is busy: a second arena is built.
  serving::InferenceSession::Replica& b = env.session.checkout(4);
  EXPECT_NE(&a, &b);
  const std::size_t high_water = env.session.replica_count();

  // Released replicas are reused, not rebuilt.
  env.session.release(a);
  env.session.release(b);
  serving::InferenceSession::Replica& c = env.session.checkout(4);
  EXPECT_TRUE(&c == &a || &c == &b);
  EXPECT_EQ(env.session.replica_count(), high_water);
}

// The session-level determinism contract: one batched forward produces,
// slot for slot, the same bits as independent batch-1 forwards of the
// same samples. This is what lets the batcher ride on the PR-1
// convergence-invariance story.
TEST(InferenceSession, BatchedForwardMatchesBatchOneBitExact) {
  SessionEnv env;
  const std::size_t in_n = env.session.sample_input_size();
  const std::size_t out_n = env.session.sample_output_size();
  const gpusim::StreamId home = scuda::Stream(env.ctx).id();

  glp::Rng rng(glptest::test_seed(21));
  const int kSamples = 3;
  std::vector<std::vector<float>> samples;
  for (int s = 0; s < kSamples; ++s) {
    std::vector<float> v(in_n);
    for (float& x : v) x = static_cast<float>(rng.next_double() * 2.0 - 1.0);
    samples.push_back(std::move(v));
  }

  // Reference: each sample alone through the batch-1 primary.
  std::vector<std::vector<float>> ref;
  for (const auto& s : samples) {
    serving::InferenceSession::Replica& r = env.session.checkout(1);
    env.session.run_batch(r, {s.data()}, home);
    env.ctx.device().synchronize();
    const float* out = env.session.output_of(r, 0);
    ref.emplace_back(out, out + out_n);
    env.session.release(r);
  }

  // Subject: all samples in one (padded) batch.
  serving::InferenceSession::Replica& r = env.session.checkout(kSamples);
  std::vector<const float*> ptrs;
  for (const auto& s : samples) ptrs.push_back(s.data());
  env.session.run_batch(r, ptrs, home);
  env.ctx.device().synchronize();
  for (int s = 0; s < kSamples; ++s) {
    const float* out = env.session.output_of(r, s);
    EXPECT_EQ(0, std::memcmp(out, ref[static_cast<std::size_t>(s)].data(),
                             out_n * sizeof(float)))
        << "sample " << s << " differs from its batch-1 reference";
  }
  env.session.release(r);
}

}  // namespace
