#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "simcuda/context.hpp"

namespace {

using scuda::Context;
using scuda::Event;
using scuda::Stream;

// --- memory -------------------------------------------------------------------

TEST(Context, MallocTracksUsage) {
  Context ctx(gpusim::DeviceTable::p100());
  EXPECT_EQ(ctx.bytes_allocated(), 0u);
  void* a = ctx.malloc(1000);
  void* b = ctx.malloc(2000);
  EXPECT_EQ(ctx.bytes_allocated(), 3000u);
  ctx.free(a);
  EXPECT_EQ(ctx.bytes_allocated(), 2000u);
  ctx.free(b);
  EXPECT_EQ(ctx.bytes_allocated(), 0u);
  EXPECT_EQ(ctx.peak_bytes_allocated(), 3000u);
}

TEST(Context, ZeroByteAllocationIsValid) {
  Context ctx(gpusim::DeviceTable::p100());
  void* p = ctx.malloc(0);
  EXPECT_NE(p, nullptr);
  ctx.free(p);
}

TEST(Context, OutOfMemoryThrows) {
  auto props = gpusim::DeviceTable::p100();
  props.mem_bytes = 1 << 20;
  Context ctx(std::move(props));
  void* a = ctx.malloc(900 * 1024);
  EXPECT_THROW(ctx.malloc(200 * 1024), scuda::OutOfMemory);
  ctx.free(a);
  EXPECT_NO_THROW(ctx.free(ctx.malloc(1000 * 1024)));
}

TEST(Context, FreeingForeignPointerThrows) {
  Context ctx(gpusim::DeviceTable::p100());
  int local = 0;
  EXPECT_THROW(ctx.free(&local), glp::InvalidArgument);
}

TEST(Context, FreeNullptrIsNoop) {
  Context ctx(gpusim::DeviceTable::p100());
  EXPECT_NO_THROW(ctx.free(nullptr));
}

// --- memcpy -------------------------------------------------------------------

TEST(Context, SynchronousMemcpyMovesBytes) {
  Context ctx(gpusim::DeviceTable::p100());
  std::vector<float> src(256, 3.5f);
  float* dst = static_cast<float*>(ctx.malloc(256 * sizeof(float)));
  ctx.memcpy(dst, src.data(), 256 * sizeof(float), true);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(dst[i], 3.5f);
  ctx.free(dst);
}

TEST(Context, AsyncMemcpyCompletesAtSync) {
  Context ctx(gpusim::DeviceTable::p100());
  std::vector<char> src(64, 'x');
  std::vector<char> dst(64, 0);
  Stream s = Stream::create(ctx);
  ctx.memcpy_async(dst.data(), src.data(), 64, true, s.id());
  s.synchronize();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 64), 0);
}

TEST(Context, MemcpyAdvancesSimulatedTime) {
  Context ctx(gpusim::DeviceTable::p100());
  std::vector<char> buf(1 << 20);
  const double before = ctx.device().device_now();
  ctx.memcpy(buf.data(), buf.data(), buf.size(), true);
  EXPECT_GT(ctx.device().device_now(), before);
}

// --- streams --------------------------------------------------------------------

TEST(Stream, DefaultViewDoesNotOwn) {
  Context ctx(gpusim::DeviceTable::p100());
  {
    Stream view(ctx);
    EXPECT_TRUE(view.is_default());
    EXPECT_EQ(view.id(), gpusim::kDefaultStream);
  }
  EXPECT_EQ(ctx.device().stream_count(), 1);
}

TEST(Stream, CreateAndDestroyViaRaii) {
  Context ctx(gpusim::DeviceTable::p100());
  {
    Stream s = Stream::create(ctx);
    EXPECT_FALSE(s.is_default());
    EXPECT_EQ(ctx.device().stream_count(), 2);
  }
  EXPECT_EQ(ctx.device().stream_count(), 1);
}

TEST(Stream, MoveTransfersOwnership) {
  Context ctx(gpusim::DeviceTable::p100());
  Stream a = Stream::create(ctx);
  const auto id = a.id();
  Stream b = std::move(a);
  EXPECT_EQ(b.id(), id);
  EXPECT_EQ(ctx.device().stream_count(), 2);
  Stream c(ctx);
  c = std::move(b);
  EXPECT_EQ(c.id(), id);
  EXPECT_EQ(ctx.device().stream_count(), 2);
}

TEST(Stream, PriorityIsStored) {
  Context ctx(gpusim::DeviceTable::p100());
  Stream hi = Stream::create(ctx, 3);
  Stream lo = Stream::create(ctx);
  EXPECT_EQ(hi.priority(), 3);
  EXPECT_EQ(lo.priority(), 0);
}

TEST(Stream, IdleAndSynchronize) {
  Context ctx(gpusim::DeviceTable::p100());
  Stream s = Stream::create(ctx);
  EXPECT_TRUE(s.idle());
  gpusim::LaunchConfig cfg;
  cfg.grid = {4, 1, 1};
  cfg.block = {128, 1, 1};
  ctx.device().launch_kernel(s.id(), "k", cfg, {1e6, 1e6}, {});
  EXPECT_FALSE(s.idle());
  s.synchronize();
  EXPECT_TRUE(s.idle());
}

// --- events ----------------------------------------------------------------------

TEST(Event, RecordQuerySynchronize) {
  Context ctx(gpusim::DeviceTable::p100());
  Stream s = Stream::create(ctx);
  gpusim::LaunchConfig cfg;
  cfg.grid = {16, 1, 1};
  cfg.block = {256, 1, 1};
  ctx.device().launch_kernel(s.id(), "k", cfg, {1e8, 1e7}, {});
  Event ev(ctx);
  EXPECT_FALSE(ev.recorded());
  ev.record(s);
  EXPECT_TRUE(ev.recorded());
  EXPECT_FALSE(ev.query());
  ev.synchronize();
  EXPECT_TRUE(ev.query());
}

TEST(Event, ElapsedMsMeasuresSimulatedInterval) {
  Context ctx(gpusim::DeviceTable::p100());
  Stream s = Stream::create(ctx);
  gpusim::LaunchConfig cfg;
  cfg.grid = {32, 1, 1};
  cfg.block = {256, 1, 1};
  Event start(ctx), end(ctx);
  start.record(s);
  ctx.device().launch_kernel(s.id(), "k", cfg, {5e8, 5e7}, {});
  end.record(s);
  end.synchronize();
  const float ms = start.elapsed_ms(end);
  EXPECT_GT(ms, 0.0f);
  // The interval matches the device-now delta around the kernel.
  EXPECT_LT(ms, static_cast<float>(ctx.device().device_now() / 1e6) + 1.0f);
  // Unfinished events throw.
  Event pending(ctx);
  ctx.device().launch_kernel(s.id(), "k2", cfg, {5e8, 5e7}, {});
  pending.record(s);
  EXPECT_THROW(end.elapsed_ms(pending), glp::InvalidArgument);
  pending.synchronize();
  EXPECT_GT(end.elapsed_ms(pending), 0.0f);
}

TEST(Event, UsingUnrecordedEventThrows) {
  Context ctx(gpusim::DeviceTable::p100());
  Event ev(ctx);
  EXPECT_THROW(ev.id(), glp::InvalidArgument);
  EXPECT_FALSE(ev.query());
}

}  // namespace
