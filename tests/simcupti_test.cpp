#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "simcupti/activity.hpp"

namespace {

using scupti::ActivityApi;
using scupti::ActivityKind;
using scupti::ActivityRecordView;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads, int regs = 33,
                         std::size_t smem_static = 0, std::size_t smem_dyn = 0) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  c.regs_per_thread = regs;
  c.smem_static_bytes = smem_static;
  c.smem_dynamic_bytes = smem_dyn;
  return c;
}

// Test harness: collects completed buffers for parsing.
struct Collector {
  std::vector<std::unique_ptr<std::uint8_t[]>> storage;
  std::vector<std::pair<std::uint8_t*, std::size_t>> completed;
  std::size_t buffer_size = 8 * 1024;

  void attach(ActivityApi& api) {
    api.register_callbacks(
        [this](std::uint8_t** buf, std::size_t* size) {
          storage.push_back(std::make_unique<std::uint8_t[]>(buffer_size));
          *buf = storage.back().get();
          *size = buffer_size;
        },
        [this](std::uint8_t* buf, std::size_t, std::size_t valid) {
          completed.emplace_back(buf, valid);
        });
  }

  std::vector<ActivityRecordView> all_records() const {
    std::vector<ActivityRecordView> out;
    for (const auto& [buf, valid] : completed) {
      auto records = ActivityApi::parse(buf, valid);
      out.insert(out.end(), records.begin(), records.end());
    }
    return out;
  }
};

TEST(Activity, KernelRecordCarriesLaunchConfiguration) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.attach(api);
  api.enable(ActivityKind::kKernel);

  const auto s = ctx.device().create_stream();
  const auto corr = ctx.device().launch_kernel(
      s, "im2col_gpu_kernel", cfg(18, 256, 33, 512, 256), {1e6, 1e6}, {});
  ctx.device().synchronize();
  api.flush_all();

  const auto records = col.all_records();
  ASSERT_EQ(records.size(), 1u);
  const auto& k = records[0].kernel;
  EXPECT_EQ(records[0].kind, ActivityKind::kKernel);
  EXPECT_EQ(k.correlation_id, corr);
  EXPECT_STREQ(k.name, "im2col_gpu_kernel");
  EXPECT_EQ(k.grid_x, 18u);  // the paper's §3.1 example: [18,1,1] grid
  EXPECT_EQ(k.block_x, 256u);
  EXPECT_EQ(k.registers_per_thread, 33);  // ... and 33 registers per thread
  EXPECT_EQ(k.static_shared_memory, 512u);
  EXPECT_EQ(k.dynamic_shared_memory, 256u);
  EXPECT_EQ(k.stream_id, s);
  EXPECT_GT(k.end_ns, k.start_ns);
}

TEST(Activity, DisabledKindCollectsNothing) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.attach(api);
  // kernel activity NOT enabled
  ctx.device().launch_kernel(gpusim::kDefaultStream, "k", cfg(4, 128), {1e5, 1e5}, {});
  ctx.device().synchronize();
  api.flush_all();
  EXPECT_TRUE(col.all_records().empty());
}

TEST(Activity, MemcpyRecords) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.attach(api);
  api.enable(ActivityKind::kMemcpy);
  char buf[128];
  ctx.memcpy(buf, buf, 128, /*h2d=*/false);
  api.flush_all();
  const auto records = col.all_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, ActivityKind::kMemcpy);
  EXPECT_EQ(records[0].memcpy_.bytes, 128u);
  EXPECT_EQ(records[0].memcpy_.host_to_device, 0);
}

TEST(Activity, EnableWithoutCallbacksThrows) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  EXPECT_THROW(api.enable(ActivityKind::kKernel), glp::InvalidArgument);
}

TEST(Activity, ManyRecordsSpanMultipleBuffers) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.buffer_size = 512;  // force frequent buffer turnover
  col.attach(api);
  api.enable(ActivityKind::kKernel);
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    ctx.device().launch_kernel(gpusim::kDefaultStream, "k" + std::to_string(i),
                               cfg(2, 64), {1e4, 1e4}, {});
  }
  ctx.device().synchronize();
  api.flush_all();
  EXPECT_GT(col.completed.size(), 1u);
  EXPECT_EQ(col.all_records().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(api.dropped_records(), 0u);
}

TEST(Activity, RecordsDroppedWhenNoBufferProvided) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  api.register_callbacks(
      [](std::uint8_t** buf, std::size_t* size) {
        *buf = nullptr;
        *size = 0;
      },
      [](std::uint8_t*, std::size_t, std::size_t) {});
  api.enable(ActivityKind::kKernel);
  ctx.device().launch_kernel(gpusim::kDefaultStream, "k", cfg(1, 32), {1e3, 1e3}, {});
  ctx.device().synchronize();
  EXPECT_EQ(api.dropped_records(), 1u);
}

TEST(Activity, RuntimeMemoryAccountsArenaAndBuffers) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.attach(api);
  EXPECT_EQ(api.runtime_memory_bytes(), ActivityApi::kRuntimeArenaBytes);
  api.enable(ActivityKind::kKernel);
  ctx.device().launch_kernel(gpusim::kDefaultStream, "k", cfg(1, 32), {1e3, 1e3}, {});
  ctx.device().synchronize();
  // One outstanding (not yet flushed) buffer.
  EXPECT_EQ(api.runtime_memory_bytes(),
            ActivityApi::kRuntimeArenaBytes + col.buffer_size);
  api.flush_all();
  EXPECT_EQ(api.runtime_memory_bytes(), ActivityApi::kRuntimeArenaBytes);
}

TEST(Activity, ParseRejectsCorruptBuffer) {
  std::uint8_t garbage[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  EXPECT_THROW(ActivityApi::parse(garbage, sizeof(garbage)), glp::InternalError);
}

TEST(Activity, ParseEmptyBuffer) {
  EXPECT_TRUE(ActivityApi::parse(nullptr, 0).empty());
}

TEST(Activity, LongKernelNamesTruncateSafely) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  ActivityApi api(ctx);
  Collector col;
  col.attach(api);
  api.enable(ActivityKind::kKernel);
  const std::string long_name(200, 'x');
  ctx.device().launch_kernel(gpusim::kDefaultStream, long_name, cfg(1, 32),
                             {1e3, 1e3}, {});
  ctx.device().synchronize();
  api.flush_all();
  const auto records = col.all_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::string(records[0].kernel.name).size(), 63u);
}

TEST(Activity, DetachRestoresDeviceCallbacks) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  {
    ActivityApi api(ctx);
    Collector col;
    col.attach(api);
    api.enable(ActivityKind::kKernel);
  }
  // After destruction the device must accept launches without callbacks.
  ctx.device().launch_kernel(gpusim::kDefaultStream, "k", cfg(1, 32), {1e3, 1e3}, {});
  EXPECT_NO_THROW(ctx.device().synchronize());
}

}  // namespace
