#include <gtest/gtest.h>

#include "common/check.hpp"

#include "minicaffe/models.hpp"
#include "minicaffe/solver.hpp"
#include "test_helpers.hpp"

namespace {

using glptest::Env;
using mc::LrPolicy;
using mc::Net;
using mc::SgdSolver;
using mc::SolverParams;

TEST(Solver, LrPolicies) {
  Env env;
  Net net(mc::models::lenet(2), env.ec);

  SolverParams fixed;
  fixed.base_lr = 0.01f;
  EXPECT_FLOAT_EQ(SgdSolver(net, fixed).current_lr(), 0.01f);

  SolverParams step;
  step.base_lr = 1.0f;
  step.policy = LrPolicy::kStep;
  step.gamma = 0.5f;
  step.stepsize = 10;
  SgdSolver s(net, step);
  EXPECT_FLOAT_EQ(s.current_lr(), 1.0f);  // iter 0

  SolverParams inv;
  inv.base_lr = 1.0f;
  inv.policy = LrPolicy::kInv;
  inv.gamma = 1e-4f;
  inv.power = 0.75f;
  EXPECT_FLOAT_EQ(SgdSolver(net, inv).current_lr(), 1.0f);
}

TEST(Solver, StepLrDecaysOverTime) {
  Env env;
  Net net(mc::models::lenet(2), env.ec);
  SolverParams p;
  p.base_lr = 1.0f;
  p.policy = LrPolicy::kStep;
  p.gamma = 0.1f;
  p.stepsize = 2;
  SgdSolver solver(net, p);
  solver.step(2);
  EXPECT_NEAR(solver.current_lr(), 0.1f, 1e-6);
  solver.step(2);
  EXPECT_NEAR(solver.current_lr(), 0.01f, 1e-7);
}

TEST(Solver, LossDecreasesOnLeNet) {
  Env env;
  Net net(mc::models::lenet(16), env.ec);
  SolverParams p;
  p.base_lr = 0.01f;
  p.momentum = 0.9f;
  SgdSolver solver(net, p);

  // Average the first and last few losses — batch noise is real.
  std::vector<float> losses;
  solver.step(20, [&](int, float loss) { losses.push_back(loss); });
  const double early = (losses[0] + losses[1] + losses[2]) / 3.0;
  const double late = (losses[17] + losses[18] + losses[19]) / 3.0;
  EXPECT_LT(late, early);
}

TEST(Solver, IterationCounterAndCallback) {
  Env env;
  Net net(mc::models::lenet(4), env.ec);
  SgdSolver solver(net, {});
  int calls = 0;
  solver.step(3, [&](int iter, float) {
    ++calls;
    EXPECT_EQ(iter, calls);
  });
  EXPECT_EQ(solver.iter(), 3);
  EXPECT_EQ(calls, 3);
}

TEST(Solver, UpdateMatchesManualSgdMath) {
  // One step on a net with known gradient: check h = m*h + lr*g; w -= h.
  Env env;
  Net net(mc::models::lenet(4), env.ec);
  SolverParams p;
  p.base_lr = 0.1f;
  p.momentum = 0.0f;
  p.weight_decay = 0.0f;
  SgdSolver solver(net, p);

  mc::Blob& w = *net.learnable_params()[0];
  const auto weights_before = glptest::snapshot(w.data(), w.count());
  // After the step, w.diff() still holds the gradient the update consumed
  // (weight decay off), so the SGD identity is directly checkable.
  solver.step(1);
  const auto grads = glptest::snapshot(w.diff(), w.count());
  for (std::size_t i = 0; i < w.count(); i += 97) {
    EXPECT_NEAR(w.data()[i], weights_before[i] - 0.1f * grads[i], 1e-6);
  }
}

TEST(Solver, WeightDecayShrinksWeights) {
  Env env1, env2;
  Net net1(mc::models::lenet(4), env1.ec);
  Net net2(mc::models::lenet(4), env2.ec);
  SolverParams no_decay;
  no_decay.base_lr = 0.01f;
  SolverParams decay = no_decay;
  decay.weight_decay = 0.1f;
  SgdSolver s1(net1, no_decay), s2(net2, decay);
  s1.step(5);
  s2.step(5);
  auto norm = [](const Net& net) {
    double n = 0;
    const mc::Blob& w = *net.learnable_params()[0];
    for (std::size_t i = 0; i < w.count(); ++i) n += std::abs(w.data()[i]);
    return n;
  };
  EXPECT_LT(norm(net2), norm(net1));
}

TEST(Solver, DeterministicAcrossRuns) {
  auto run = [] {
    Env env;
    Net net(mc::models::cifar10_quick(8), env.ec);
    SgdSolver solver(net, {});
    solver.step(3);
    return solver.last_loss();
  };
  const float a = run();
  const float b = run();
  EXPECT_EQ(a, b);
}

TEST(Solver, MomentumAcceleratesDescentDirection) {
  // With momentum, two identical-gradient steps move further than 2*lr*g.
  Env env;
  Net net(mc::models::lenet(4), env.ec);
  SolverParams p;
  p.base_lr = 0.05f;
  p.momentum = 0.9f;
  SgdSolver solver(net, p);
  mc::Blob& w = *net.learnable_params()[0];
  const auto before = glptest::snapshot(w.data(), w.count());
  solver.step(4);
  const auto after = glptest::snapshot(w.data(), w.count());
  // Not a strict identity (gradient changes across steps) — just verify
  // weights moved substantially.
  EXPECT_GT(glptest::max_abs_diff(before, after), 0.0);
}

}  // namespace
