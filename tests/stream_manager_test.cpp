// StreamManager unit tests: pool growth, reuse across scheduler scopes,
// per-device isolation and high-water accounting. The manager backs the
// paper's "concurrent stream pool" (§3.1) — streams are created once and
// reused, never per-iteration.

#include <gtest/gtest.h>

#include "core/glp4nn.hpp"
#include "core/stream_manager.hpp"
#include "simcuda/context.hpp"
#include "test_helpers.hpp"

namespace {

TEST(StreamManager, PoolGrowsAndReuses) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::StreamManager manager;
  EXPECT_EQ(manager.pool_size(ctx), 0);
  const auto a = manager.acquire(ctx, 3);
  EXPECT_EQ(manager.pool_size(ctx), 3);
  const auto b = manager.acquire(ctx, 2);
  EXPECT_EQ(manager.pool_size(ctx), 3);  // reused, not grown
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  const auto c = manager.acquire(ctx, 5);
  EXPECT_EQ(manager.pool_size(ctx), 5);
  EXPECT_EQ(c[0], a[0]);
  EXPECT_EQ(manager.max_pool_size(), 5);
}

TEST(StreamManager, RejectsOverCapacityRequests) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::StreamManager manager;
  EXPECT_THROW(manager.acquire(ctx, 0), glp::InvalidArgument);
  EXPECT_THROW(manager.acquire(ctx, 129), glp::InvalidArgument);
}

TEST(StreamManager, PerDevicePools) {
  scuda::Context a(gpusim::DeviceTable::p100());
  scuda::Context b(gpusim::DeviceTable::k40c());
  glp4nn::StreamManager manager;
  manager.acquire(a, 4);
  EXPECT_EQ(manager.pool_size(a), 4);
  EXPECT_EQ(manager.pool_size(b), 0);
  manager.acquire(b, 2);
  EXPECT_EQ(manager.pool_size(b), 2);
}

TEST(StreamManager, StreamsAreDistinctAndNotDefault) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::StreamManager manager;
  const auto streams = manager.acquire(ctx, 8);
  ASSERT_EQ(streams.size(), 8u);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_NE(streams[i], gpusim::kDefaultStream) << i;
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      EXPECT_NE(streams[i], streams[j]) << i << " vs " << j;
    }
  }
}

TEST(StreamManager, MaxPoolSizeIsHighWaterAcrossDevices) {
  scuda::Context a(gpusim::DeviceTable::p100());
  scuda::Context b(gpusim::DeviceTable::k40c());
  glp4nn::StreamManager manager;
  EXPECT_EQ(manager.max_pool_size(), 0);
  manager.acquire(a, 6);
  EXPECT_EQ(manager.max_pool_size(), 6);
  manager.acquire(b, 3);
  EXPECT_EQ(manager.max_pool_size(), 6);  // smaller pool doesn't lower it
  manager.acquire(b, 9);
  EXPECT_EQ(manager.max_pool_size(), 9);
  manager.acquire(a, 2);
  EXPECT_EQ(manager.max_pool_size(), 9);  // reuse doesn't lower it
}

TEST(StreamManager, SlicesWithUniformWidthNeverOverlap) {
  // Slots requesting different *used* widths still get ranges laid out on
  // the uniform slice_width grid, so concurrent slots can never share a
  // stream (the multi-tenant isolation invariant).
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::StreamManager manager;
  const auto slot0 = manager.acquire_slice(ctx, 0, 4, 4);
  const auto slot1 = manager.acquire_slice(ctx, 1, 4, 2);
  ASSERT_EQ(slot0.size(), 4u);
  ASSERT_EQ(slot1.size(), 2u);
  for (gpusim::StreamId a : slot0) {
    for (gpusim::StreamId b : slot1) EXPECT_NE(a, b);
  }
  // Re-acquiring a slice returns the same streams (pool reuse).
  EXPECT_EQ(manager.acquire_slice(ctx, 1, 4, 2), slot1);
  EXPECT_EQ(manager.pool_size(ctx), 6);  // 4 (slot 0) + 2 used of slot 1
}

TEST(StreamManager, FillerStreamsBelowASliceKeepDefaultPriority) {
  // A higher slot acquiring first must not imprint its tenant's priority
  // on streams that belong to lower slots' future slices.
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::StreamManager manager;
  const auto hi = manager.acquire_slice(ctx, 1, 4, 4, /*priority=*/-5);
  for (gpusim::StreamId s : hi) {
    EXPECT_EQ(ctx.device().stream_priority(s), -5);
  }
  const auto lo = manager.acquire_slice(ctx, 0, 4, 4, /*priority=*/3);
  for (gpusim::StreamId s : lo) {
    EXPECT_EQ(ctx.device().stream_priority(s), 0);  // created as filler
  }
}

TEST(StreamManager, ReusedAcrossSchedulerScopes) {
  // Two dispatch scopes with the same stream demand must not allocate
  // new streams for the second scope — this is the "lightweight" claim.
  scuda::Context ctx(gpusim::DeviceTable::p100());
  glp4nn::SchedulerOptions opts;
  opts.fixed_streams = 4;
  glp4nn::Glp4nnEngine engine(opts);
  glp4nn::RuntimeScheduler& sched = engine.scheduler_for(ctx);

  sched.begin_scope("conv1/fwd", 8);
  const auto lane_a = sched.task_lane(0);
  sched.end_scope();
  EXPECT_EQ(engine.stream_manager().pool_size(ctx), 4);

  sched.begin_scope("conv2/fwd", 8);
  const auto lane_b = sched.task_lane(0);
  sched.end_scope();
  EXPECT_EQ(engine.stream_manager().pool_size(ctx), 4);
  EXPECT_EQ(engine.stream_manager().max_pool_size(), 4);
  EXPECT_EQ(lane_a.stream, lane_b.stream);  // same pool, same assignment
}

}  // namespace
