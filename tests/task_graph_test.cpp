// Tests of the dependency-aware task-graph scheduler (paper §6 future
// work): edges always execute in order, independent tasks overlap, and
// malformed graphs are rejected.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/task_graph.hpp"

namespace {

using glp4nn::TaskGraph;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  return c;
}

TaskGraph::TaskFn kernel_task(double flops, std::function<void()> work = {}) {
  return [flops, work](const kern::Launcher& L) {
    L.launch("work", cfg(8, 256), {flops, flops / 4}, work);
  };
}

std::vector<gpusim::StreamId> make_pool(scuda::Context& ctx, int n) {
  std::vector<gpusim::StreamId> pool;
  for (int i = 0; i < n; ++i) pool.push_back(ctx.device().create_stream());
  return pool;
}

TEST(TaskGraph, LinearChainRunsInOrder) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  const auto pool = make_pool(ctx, 4);
  TaskGraph g;
  std::vector<int> order;
  int prev = -1;
  for (int i = 0; i < 6; ++i) {
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = g.add_task("t" + std::to_string(i),
                      kernel_task(1e6, [&order, i] { order.push_back(i); }),
                      deps);
  }
  g.run(ctx, pool, kern::ComputeMode::kNumeric);
  ctx.device().synchronize();
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TaskGraph, DiamondDependenciesRespectEdges) {
  scuda::Context ctx(gpusim::DeviceTable::p100());
  const auto pool = make_pool(ctx, 4);
  TaskGraph g;
  std::vector<std::string> order;
  auto track = [&order](const std::string& name, double flops) {
    return kernel_task(flops, [&order, name] { order.push_back(name); });
  };
  const int a = g.add_task("a", track("a", 1e7));
  const int b = g.add_task("b", track("b", 5e7), {a});   // slow branch
  const int c = g.add_task("c", track("c", 1e6), {a});   // fast branch
  g.add_task("d", track("d", 1e6), {b, c});
  g.run(ctx, pool, kern::ComputeMode::kNumeric);
  ctx.device().synchronize();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");  // d waited for BOTH branches
}

TEST(TaskGraph, IndependentTasksOverlap) {
  auto run = [](int streams) {
    scuda::Context ctx(gpusim::DeviceTable::p100());
    const auto pool = make_pool(ctx, streams);
    TaskGraph g;
    for (int i = 0; i < 8; ++i) {
      g.add_task("t" + std::to_string(i), kernel_task(4e7));
    }
    g.run(ctx, pool, kern::ComputeMode::kTimingOnly);
    ctx.device().synchronize();
    return ctx.device().device_now();
  };
  EXPECT_LT(run(8), run(1) * 0.6);
}

TEST(TaskGraph, CrossStreamEdgeForcesWait) {
  // Producer is slow and the consumer is placed after an independent task
  // on another stream; the event must still delay it.
  scuda::Context ctx(gpusim::DeviceTable::p100());
  const auto pool = make_pool(ctx, 2);
  TaskGraph g;
  std::vector<std::string> order;
  auto track = [&order](const std::string& name, double flops) {
    return kernel_task(flops, [&order, name] { order.push_back(name); });
  };
  const int slow = g.add_task("slow", track("slow", 4e8));  // stream 0
  g.add_task("other", track("other", 1e6));                 // stream 1
  // depends on slow but would round-robin onto stream 0 anyway; force a
  // cross-stream edge by depending on both:
  const int other = 1;
  g.add_task("sink", track("sink", 1e6), {slow, other});
  g.run(ctx, pool, kern::ComputeMode::kNumeric);
  ctx.device().synchronize();
  EXPECT_EQ(order.back(), "sink");
}

TEST(TaskGraph, RejectsForwardAndUnknownDeps) {
  TaskGraph g;
  EXPECT_THROW(g.add_task("x", kernel_task(1), {0}), glp::InvalidArgument);
  g.add_task("a", kernel_task(1));
  EXPECT_THROW(g.add_task("b", kernel_task(1), {5}), glp::InvalidArgument);
  EXPECT_THROW(g.add_task("c", kernel_task(1), {2}), glp::InvalidArgument);
}

TEST(TaskGraph, AccessorsAndEmptyPoolRejected) {
  TaskGraph g;
  const int a = g.add_task("alpha", kernel_task(1));
  g.add_task("beta", kernel_task(1), {a});
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.name(0), "alpha");
  EXPECT_EQ(g.deps(1), std::vector<int>{0});
  EXPECT_THROW(g.name(7), glp::InvalidArgument);

  scuda::Context ctx(gpusim::DeviceTable::p100());
  EXPECT_THROW(g.run(ctx, {}, kern::ComputeMode::kTimingOnly),
               glp::InvalidArgument);
}

// Property: random DAGs always execute in a valid topological order.
class TaskGraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaskGraphProperty, RandomDagHonoursAllEdges) {
  glp::Rng rng(GetParam());
  scuda::Context ctx(gpusim::DeviceTable::titan_xp());
  const auto pool = make_pool(ctx, 1 + static_cast<int>(rng.next_below(6)));

  TaskGraph g;
  const int n = 5 + static_cast<int>(rng.next_below(20));
  std::vector<int> finish_order;
  std::vector<std::vector<int>> deps_of(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<int> deps;
    for (int d = 0; d < i; ++d) {
      if (rng.next_below(4) == 0) deps.push_back(d);
    }
    deps_of[static_cast<std::size_t>(i)] = deps;
    g.add_task("t" + std::to_string(i),
               kernel_task(1e5 + static_cast<double>(rng.next_below(100)) * 1e5,
                           [&finish_order, i] { finish_order.push_back(i); }),
               deps);
  }
  g.run(ctx, pool, kern::ComputeMode::kNumeric);
  ctx.device().synchronize();

  ASSERT_EQ(finish_order.size(), static_cast<std::size_t>(n));
  std::vector<int> position(static_cast<std::size_t>(n));
  for (int pos = 0; pos < n; ++pos) {
    position[static_cast<std::size_t>(finish_order[static_cast<std::size_t>(pos)])] = pos;
  }
  for (int i = 0; i < n; ++i) {
    for (int d : deps_of[static_cast<std::size_t>(i)]) {
      EXPECT_LT(position[static_cast<std::size_t>(d)],
                position[static_cast<std::size_t>(i)])
          << "task " << i << " finished before its dependency " << d
          << " (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, TaskGraphProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
