#pragma once
// Shared fixtures/utilities for the test suite: a ready-made execution
// environment (device + dispatcher), blob fillers, and a numeric
// gradient checker in the Caffe style.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/glp4nn.hpp"
#include "minicaffe/net.hpp"

/// Attach the effective seed to every assertion in the enclosing scope,
/// so a failing randomized test prints how to replay it.
#define GLP_SCOPED_SEED(seed) \
  SCOPED_TRACE(::testing::Message() << "replay with GLP_TEST_SEED=" << (seed))

namespace glptest {

/// Seed for randomized tests. The GLP_TEST_SEED environment variable
/// overrides the per-test default, letting a failure found by the fuzz
/// driver replay inside any gtest binary:
///
///   GLP_TEST_SEED=1337 ./tests/fuzz_regression_test
inline std::uint64_t test_seed(std::uint64_t default_seed) {
  if (const char* env = std::getenv("GLP_TEST_SEED")) {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env) return parsed;
  }
  return default_seed;
}

/// Owns a simulated device plus a dispatcher and exposes an ExecContext.
struct Env {
  explicit Env(gpusim::DeviceProps props = gpusim::DeviceTable::p100(),
               int fixed_streams = 0,
               kern::ComputeMode mode = kern::ComputeMode::kNumeric)
      : ctx(std::move(props)) {
    if (fixed_streams <= 1) {
      dispatcher = std::make_unique<kern::SerialDispatcher>(ctx);
    } else {
      dispatcher = std::make_unique<kern::FixedStreamDispatcher>(ctx, fixed_streams);
    }
    ec.ctx = &ctx;
    ec.dispatcher = dispatcher.get();
    ec.mode = mode;
  }

  scuda::Context ctx;
  std::unique_ptr<kern::KernelDispatcher> dispatcher;
  mc::ExecContext ec;

  void sync() { ctx.device().synchronize(); }
};

/// Env driven by a GLP4NN engine instead of a fixed dispatcher.
struct GlpEnv {
  explicit GlpEnv(gpusim::DeviceProps props = gpusim::DeviceTable::p100(),
                  glp4nn::SchedulerOptions options = {},
                  kern::ComputeMode mode = kern::ComputeMode::kNumeric)
      : ctx(std::move(props)), engine(options) {
    ec.ctx = &ctx;
    ec.dispatcher = &engine.scheduler_for(ctx);
    ec.mode = mode;
  }

  scuda::Context ctx;
  glp4nn::Glp4nnEngine engine;
  mc::ExecContext ec;

  void sync() { ctx.device().synchronize(); }
};

inline void fill_random(mc::Blob& blob, glp::Rng& rng, float lo = -1.0f,
                        float hi = 1.0f) {
  float* data = blob.mutable_data();
  for (std::size_t i = 0; i < blob.count(); ++i) data[i] = rng.uniform(lo, hi);
}

inline std::vector<float> snapshot(const float* data, std::size_t count) {
  return std::vector<float>(data, data + count);
}

inline double max_abs_diff(const std::vector<float>& a,
                           const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

/// Numeric gradient check for a layer: perturbs each checked input element
/// by ±eps, uses loss L = Σ w_i · top_i with fixed random weights, and
/// compares dL/dx to the layer's backward output.
class GradientChecker {
 public:
  GradientChecker(double eps = 1e-2, double threshold = 1e-2)
      : eps_(eps), threshold_(threshold) {}

  /// check gradients w.r.t. bottom blob `check_bottom` (or a param blob
  /// when `check_param` >= 0).
  void check(Env& env, mc::Layer& layer, std::vector<mc::Blob*> bottom,
             std::vector<mc::Blob*> top, int check_bottom, int check_param = -1,
             std::size_t max_elements = 64);

 private:
  double objective(Env& env, mc::Layer& layer,
                   const std::vector<mc::Blob*>& bottom,
                   const std::vector<mc::Blob*>& top,
                   const std::vector<float>& weights);

  double eps_;
  double threshold_;
};

inline double GradientChecker::objective(Env& env, mc::Layer& layer,
                                         const std::vector<mc::Blob*>& bottom,
                                         const std::vector<mc::Blob*>& top,
                                         const std::vector<float>& weights) {
  layer.forward(bottom, top);
  env.sync();
  double obj = 0.0;
  std::size_t w = 0;
  for (const mc::Blob* t : top) {
    const float* data = t->data();
    for (std::size_t i = 0; i < t->count(); ++i) obj += weights[w++] * data[i];
  }
  return obj;
}

inline void GradientChecker::check(Env& env, mc::Layer& layer,
                                   std::vector<mc::Blob*> bottom,
                                   std::vector<mc::Blob*> top, int check_bottom,
                                   int check_param, std::size_t max_elements) {
  glp::Rng rng(1234);
  std::size_t top_count = 0;
  for (const mc::Blob* t : top) top_count += t->count();
  std::vector<float> weights(top_count);
  for (float& w : weights) w = rng.uniform(-1.0f, 1.0f);

  // Analytic gradients: seed top diffs with the objective weights.
  layer.forward(bottom, top);
  env.sync();
  std::size_t w = 0;
  for (mc::Blob* t : top) {
    float* diff = t->mutable_diff();
    for (std::size_t i = 0; i < t->count(); ++i) diff[i] = weights[w++];
  }
  for (mc::Blob* b : bottom) {
    std::fill(b->mutable_diff(), b->mutable_diff() + b->count(), 0.0f);
  }
  for (const auto& p : layer.param_blobs()) {
    std::fill(p->mutable_diff(), p->mutable_diff() + p->count(), 0.0f);
  }
  std::vector<bool> propagate(bottom.size(), true);
  layer.backward(top, propagate, bottom);
  env.sync();

  mc::Blob* target = check_param >= 0 ? layer.param_blobs()[static_cast<std::size_t>(check_param)].get()
                                      : bottom[static_cast<std::size_t>(check_bottom)];
  const std::vector<float> analytic = snapshot(target->diff(), target->count());

  // Numeric gradients on a subsample of elements.
  const std::size_t count = target->count();
  const std::size_t stride = std::max<std::size_t>(1, count / max_elements);
  for (std::size_t i = 0; i < count; i += stride) {
    float* data = target->mutable_data();
    const float saved = data[i];
    data[i] = saved + static_cast<float>(eps_);
    const double plus = objective(env, layer, bottom, top, weights);
    target->mutable_data()[i] = saved - static_cast<float>(eps_);
    const double minus = objective(env, layer, bottom, top, weights);
    target->mutable_data()[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps_);
    const double scale =
        std::max({1.0, std::abs(numeric), std::abs(static_cast<double>(analytic[i]))});
    EXPECT_NEAR(analytic[i], numeric, threshold_ * scale)
        << "element " << i << " of "
        << (check_param >= 0 ? "param" : "bottom");
  }
  // Restore a clean forward state for any follow-up assertions.
  layer.forward(bottom, top);
  env.sync();
}

}  // namespace glptest
