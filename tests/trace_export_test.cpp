// Tests of the Chrome-trace exporter and the dataset shuffling extension.

#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/profile_report.hpp"
#include "gpusim/trace_export.hpp"
#include "minicaffe/datasets.hpp"

namespace {

using gpusim::SimDevice;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  return c;
}

TEST(TraceExport, EmitsOneEventPerRecord) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  const auto s = dev.create_stream();
  dev.launch_kernel(s, "my_kernel", cfg(4, 128), {1e6, 1e5}, {});
  dev.memcpy_async(gpusim::kDefaultStream, 4096, true, {});
  dev.synchronize();

  const std::string json = gpusim::to_chrome_trace(dev.timeline());
  EXPECT_NE(json.find("\"my_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"memcpy H2D\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"regs\":32"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  // Balanced JSON array, one object per record.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '[');
}

TEST(TraceExport, EmptyTimelineIsValidJson) {
  gpusim::Timeline t;
  EXPECT_EQ(gpusim::to_chrome_trace(t), "[\n]\n");
}

TEST(TraceExport, EscapesSpecialCharacters) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  dev.launch_kernel(gpusim::kDefaultStream, "weird\"name\\here", cfg(1, 32),
                    {1e4, 1e3}, {});
  dev.synchronize();
  const std::string json = gpusim::to_chrome_trace(dev.timeline());
  EXPECT_NE(json.find("weird\\\"name\\\\here"), std::string::npos);
}

TEST(TraceExport, WritesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "glp4nn_trace_test.json").string();
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  dev.launch_kernel(gpusim::kDefaultStream, "k", cfg(1, 32), {1e4, 1e3}, {});
  dev.synchronize();
  gpusim::write_chrome_trace(dev.timeline(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"k\""), std::string::npos);
  std::filesystem::remove(path);
  EXPECT_THROW(gpusim::write_chrome_trace(dev.timeline(), "/nonexistent/x.json"),
               glp::InvalidArgument);
}

// --- profile report ----------------------------------------------------------------

TEST(ProfileReport, AggregatesByKernelName) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    dev.launch_kernel(gpusim::kDefaultStream, "alpha", cfg(8, 256), {1e7, 1e6}, {});
  }
  dev.launch_kernel(gpusim::kDefaultStream, "beta", cfg(8, 256), {5e7, 5e6}, {});
  dev.synchronize();

  const auto summaries = gpusim::summarize_kernels(dev.timeline());
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "beta");  // sorted by total time
  EXPECT_EQ(summaries[1].name, "alpha");
  EXPECT_EQ(summaries[1].calls, 3);
  EXPECT_LE(summaries[1].min_us, summaries[1].avg_us());
  EXPECT_LE(summaries[1].avg_us(), summaries[1].max_us);
  EXPECT_NEAR(summaries[1].total_us, 3 * summaries[1].avg_us(), 1e-9);

  const std::string report = gpusim::profile_report(dev.timeline());
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("4 launches"), std::string::npos);
}

TEST(ProfileReport, TopLimitsRows) {
  SimDevice dev(gpusim::DeviceTable::p100());
  dev.timeline().set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    dev.launch_kernel(gpusim::kDefaultStream, "k" + std::to_string(i),
                      cfg(4, 128), {1e6 * (i + 1), 1e5}, {});
  }
  dev.synchronize();
  const std::string report = gpusim::profile_report(dev.timeline(), 2);
  EXPECT_NE(report.find("k4"), std::string::npos);   // biggest two kept
  EXPECT_NE(report.find("k3"), std::string::npos);
  EXPECT_EQ(report.find("k0"), std::string::npos);
}

TEST(ProfileReport, EmptyTimeline) {
  gpusim::Timeline t;
  EXPECT_TRUE(gpusim::summarize_kernels(t).empty());
  EXPECT_NE(gpusim::profile_report(t).find("0 launches"), std::string::npos);
}

// --- dataset shuffling -----------------------------------------------------------

TEST(Shuffle, IdentityWhenDisabled) {
  mc::SyntheticDataset d(mc::DatasetSpec::mnist(), 1);
  for (std::uint64_t p : {0ull, 5ull, 59999ull, 60000ull, 60007ull}) {
    EXPECT_EQ(d.index_at(p), p % 60000ull);
  }
}

TEST(Shuffle, PermutesEveryEpochPosition) {
  mc::DatasetSpec spec = mc::DatasetSpec::mnist();
  spec.train_size = 257;
  spec.shuffle = true;
  mc::SyntheticDataset d(spec, 42);
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 257; ++p) {
    const std::uint64_t idx = d.index_at(p);
    EXPECT_LT(idx, 257u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 257u) << "epoch must be a permutation";
}

TEST(Shuffle, DifferentEpochsDifferentOrder) {
  mc::DatasetSpec spec = mc::DatasetSpec::mnist();
  spec.train_size = 100;
  spec.shuffle = true;
  mc::SyntheticDataset d(spec, 7);
  int moved = 0;
  for (std::uint64_t p = 0; p < 100; ++p) {
    if (d.index_at(p) != d.index_at(p + 100)) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Shuffle, DeterministicAcrossInstances) {
  mc::DatasetSpec spec = mc::DatasetSpec::cifar10();
  spec.shuffle = true;
  mc::SyntheticDataset a(spec, 9), b(spec, 9);
  for (std::uint64_t p = 0; p < 500; ++p) {
    EXPECT_EQ(a.index_at(p), b.index_at(p));
  }
}

TEST(Shuffle, EvenSizesStillPermute) {
  mc::DatasetSpec spec = mc::DatasetSpec::mnist();
  spec.train_size = 256;  // highly composite
  spec.shuffle = true;
  mc::SyntheticDataset d(spec, 3);
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 256; ++p) seen.insert(d.index_at(p));
  EXPECT_EQ(seen.size(), 256u);
}

}  // namespace
