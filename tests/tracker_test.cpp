#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/resource_tracker.hpp"

namespace {

using glp4nn::ResourceTracker;
using glp4nn::ScopeProfile;

gpusim::LaunchConfig cfg(unsigned blocks, unsigned threads, int regs = 32,
                         std::size_t smem = 0) {
  gpusim::LaunchConfig c;
  c.grid = {blocks, 1, 1};
  c.block = {threads, 1, 1};
  c.regs_per_thread = regs;
  c.smem_static_bytes = smem;
  return c;
}

struct TrackerTest : ::testing::Test {
  TrackerTest() : ctx(gpusim::DeviceTable::p100()) {}
  scuda::Context ctx;
  ResourceTracker tracker;

  void launch(const std::string& name, unsigned blocks, unsigned threads,
              double flops = 1e6) {
    ctx.device().launch_kernel(gpusim::kDefaultStream, name,
                               cfg(blocks, threads), {flops, flops}, {});
  }
};

TEST_F(TrackerTest, AggregatesKernelsByName) {
  tracker.begin_profiling(ctx);
  for (int i = 0; i < 4; ++i) launch("im2col", 18, 256);
  for (int i = 0; i < 4; ++i) launch("sgemm", 12, 128, 5e6);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "conv1/fwd");

  EXPECT_EQ(p.scope, "conv1/fwd");
  ASSERT_EQ(p.kernels.size(), 2u);
  EXPECT_EQ(p.total_launches, 8);
  // First-seen order preserved.
  EXPECT_EQ(p.kernels[0].name, "im2col");
  EXPECT_EQ(p.kernels[0].launches, 4);
  EXPECT_EQ(p.kernels[0].config.grid.x, 18u);
  EXPECT_EQ(p.kernels[0].config.block.x, 256u);
  EXPECT_EQ(p.kernels[1].name, "sgemm");
  EXPECT_GT(p.kernels[1].avg_duration_us, p.kernels[0].avg_duration_us);
}

TEST_F(TrackerTest, AvgDurationIsMeanOfTotal) {
  tracker.begin_profiling(ctx);
  launch("k", 10, 256, 1e6);
  launch("k", 10, 256, 1e6);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "s");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_NEAR(p.kernels[0].avg_duration_us * 2,
              p.kernels[0].total_duration_us, 1e-9);
  EXPECT_GT(p.kernels[0].avg_duration_us, 0.0);
}

TEST_F(TrackerTest, KernelsBeforeProfilingAreExcluded) {
  launch("early", 4, 128);
  ctx.device().synchronize();
  tracker.begin_profiling(ctx);
  launch("scoped", 4, 128);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "s");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_EQ(p.kernels[0].name, "scoped");
}

TEST_F(TrackerTest, KernelsLaunchedBeforeButCompletingDuringAreExcluded) {
  // A long kernel launched before begin_profiling completes inside the
  // window; the correlation filter must drop it.
  launch("inflight", 500, 1024, 1e10);
  tracker.begin_profiling(ctx);
  launch("scoped", 4, 128);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "s");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_EQ(p.kernels[0].name, "scoped");
}

TEST_F(TrackerTest, EmptyScopeYieldsEmptyProfile) {
  tracker.begin_profiling(ctx);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "empty");
  EXPECT_TRUE(p.kernels.empty());
  EXPECT_EQ(p.total_launches, 0);
}

TEST_F(TrackerTest, DoubleBeginThrows) {
  tracker.begin_profiling(ctx);
  EXPECT_THROW(tracker.begin_profiling(ctx), glp::InvalidArgument);
  tracker.end_profiling(ctx, "s");
}

TEST_F(TrackerTest, EndWithoutBeginThrows) {
  EXPECT_THROW(tracker.end_profiling(ctx, "s"), glp::InvalidArgument);
}

TEST_F(TrackerTest, ProfilingActiveFlag) {
  EXPECT_FALSE(tracker.profiling_active(ctx));
  tracker.begin_profiling(ctx);
  EXPECT_TRUE(tracker.profiling_active(ctx));
  tracker.end_profiling(ctx, "s");
  EXPECT_FALSE(tracker.profiling_active(ctx));
}

TEST_F(TrackerTest, MemoryAccountingGrowsWithRecords) {
  tracker.begin_profiling(ctx);
  for (int i = 0; i < 10; ++i) launch("k" + std::to_string(i), 4, 128);
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "s");
  EXPECT_EQ(p.mem_tt_bytes, 10 * ResourceTracker::kTimestampBytesPerRecord);
  EXPECT_EQ(tracker.mem_tt_bytes(), p.mem_tt_bytes);
  EXPECT_GT(tracker.mem_k_bytes(), 0u);
  EXPECT_GE(tracker.mem_cupti_bytes(), scupti::ActivityApi::kRuntimeArenaBytes);
  EXPECT_EQ(tracker.records_collected(), 10u);
}

TEST_F(TrackerTest, CuptiMemoryDominates) {
  // Fig. 10's structure: mem_cupti >> mem_tt + mem_K for realistic scopes.
  tracker.begin_profiling(ctx);
  for (int i = 0; i < 100; ++i) launch("k", 4, 128);
  ctx.device().synchronize();
  tracker.end_profiling(ctx, "s");
  EXPECT_GT(tracker.mem_cupti_bytes(),
            10 * (tracker.mem_tt_bytes() + tracker.mem_k_bytes()));
}

TEST_F(TrackerTest, SequentialScopesAccumulateCosts) {
  for (int scope = 0; scope < 3; ++scope) {
    tracker.begin_profiling(ctx);
    launch("k", 4, 128);
    ctx.device().synchronize();
    tracker.end_profiling(ctx, "scope" + std::to_string(scope));
  }
  EXPECT_EQ(tracker.records_collected(), 3u);
  EXPECT_GE(tracker.total_profiling_ms(), 0.0);
}

TEST_F(TrackerTest, MultiDeviceSessionsAreIndependent) {
  scuda::Context ctx2(gpusim::DeviceTable::k40c());
  tracker.begin_profiling(ctx);
  tracker.begin_profiling(ctx2);  // allowed: different device
  launch("on1", 4, 128);
  ctx2.device().launch_kernel(gpusim::kDefaultStream, "on2", cfg(4, 128),
                              {1e6, 1e6}, {});
  ctx.device().synchronize();
  ctx2.device().synchronize();
  const ScopeProfile p1 = tracker.end_profiling(ctx, "a");
  const ScopeProfile p2 = tracker.end_profiling(ctx2, "b");
  ASSERT_EQ(p1.kernels.size(), 1u);
  ASSERT_EQ(p2.kernels.size(), 1u);
  EXPECT_EQ(p1.kernels[0].name, "on1");
  EXPECT_EQ(p2.kernels[0].name, "on2");
}

TEST_F(TrackerTest, ConfigFieldsSurviveRoundTrip) {
  tracker.begin_profiling(ctx);
  ctx.device().launch_kernel(gpusim::kDefaultStream, "fat",
                             cfg(7, 192, 77, 4096), {1e6, 1e6}, {});
  ctx.device().synchronize();
  const ScopeProfile p = tracker.end_profiling(ctx, "s");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_EQ(p.kernels[0].config.regs_per_thread, 77);
  EXPECT_EQ(p.kernels[0].config.smem_static_bytes, 4096u);
  EXPECT_EQ(p.kernels[0].config.total_blocks(), 7u);
}

}  // namespace
