// glp4nn_fuzz — differential fuzzer for the GLP4NN runtime scheduler.
//
// Samples random (net, device, scheduler-options) cases from consecutive
// seeds, trains each under serial dispatch and under the scheduler, and
// checks the convergence-invariance contract plus the stream-ordering
// invariants of the recorded timeline. Optionally arms fault injection
// on the scheduler run to exercise graceful degradation.
//
//   glp4nn_fuzz --cases 200 --seed 1
//   glp4nn_fuzz --cases 200 --seed 1 --fault-rate 0.05
//   glp4nn_fuzz --replay 1337 --trace /tmp/case1337.json
//
// Flags:
//   --cases <n>          number of cases (default 50); seeds are
//                        seed, seed+1, ..., seed+n-1
//   --seed <s>           first seed (default 1)
//   --replay <s>         run exactly one seed, verbosely
//   --fault-rate <p>     injected kernel-launch failure probability
//   --stream-fault-rate <p>   injected stream-creation failure probability
//   --capture-loss-rate <p>   injected profiler record-loss probability
//   --max-batch <n>      cap generated batch sizes (default 64)
//   --engine-compare     instead of serial-vs-scheduler, run each case on
//                        the optimized engine AND ReferenceEngine and
//                        require bit-identical losses, parameters and
//                        device timelines (the hot-path equivalence gate)
//   --dag                sample the branchy DAG corpus (inception fan-outs,
//                        diamond skips, fused elementwise chains) and run
//                        the three-way DAG differential: DAG-vs-serial AND
//                        DAG-vs-chain-only, plus an op-schedule replay of
//                        one clean forward/backward pass. Combined with
//                        --engine-compare, runs the engine-equivalence gate
//                        with DAG scheduling enabled on both engines.
//   --fleet              fleet corpus (Dropout-stripped, bit-exact regime):
//                        train each case on an N-device fleet (bucketed
//                        ring all-reduce, eager overlap, per-device GLP4NN
//                        schedulers) and on the single-device reference,
//                        and require bit-identical losses and parameters
//                        plus a clean link-contract audit of every
//                        cross-device transfer
//   --fleet-devices <n>  fleet width (default 2)
//   --links <kind>       fleet interconnect: nvlink (ring) or pcie
//                        (shared host channel); default nvlink
//   --fleet-engine <e>   engine the fleet devices run on: optimized
//                        (default) or reference — the latter doubles as
//                        a cross-engine differential over the fleet path
//   --no-overlap         fleet: serialize-then-reduce baseline instead of
//                        eager bucketed overlap
//   --collective <c>     fleet all-reduce algorithm: auto (cost model,
//                        default) | ring | tree | hier | sample (rotate
//                        deterministically per case seed). The reference
//                        oracle replays whichever program is selected, so
//                        every algorithm is held to its own bit-exactness
//                        contract
//   --fp16-wire          fleet: fp16 gradient compression on the wire
//                        (still bit-identical to the fp16 oracle)
//   --no-branches        linear nets only
//   --no-timeline        skip timeline recording + race checking
//   --trace <file>       Chrome trace of the last failing (or replayed)
//                        case, with one marker per race violation
//   --verbose            one summary line per case
//
// Exit code: 0 when every case passes, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "core/glp4nn.hpp"
#include "gpusim/trace_export.hpp"
#include "minicaffe/solver.hpp"
#include "testing/differential_runner.hpp"
#include "testing/fleet_differential.hpp"
#include "testing/net_generator.hpp"

namespace {

[[noreturn]] void fail(const glp::Flags& flags, const std::string& error) {
  std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
               flags.usage().c_str());
  std::exit(2);
}

struct Stats {
  int passed = 0;
  int failed = 0;
  int bit_exact = 0;
  int tolerance = 0;
  std::size_t launch_faults = 0;
  std::size_t stream_faults = 0;
  std::size_t capture_drops = 0;
  std::size_t fallback_scopes = 0;
  int peak_concurrency = 0;
  // DAG-mode accumulators.
  std::size_t relu_epilogues = 0;
  std::size_t fused_chains = 0;
  int peak_op_concurrency = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int cases = 50;
  std::uint64_t seed = 1;
  bool replay = false;
  bool verbose = false;
  std::string trace_path;
  glpfuzz::NetGenOptions gen;
  glpfuzz::DiffOptions diff;

  unsigned long long seed_arg = 1;
  std::string replay_arg;
  bool no_branches = false, no_timeline = false, engine_compare = false;
  bool dag = false;
  bool fleet = false, no_overlap = false;
  glpfuzz::FleetDiffOptions fleet_opts;
  std::string links = "nvlink";
  std::string fleet_engine = "optimized";
  std::string collective = "auto";
  bool collective_sample = false, fp16_wire = false;

  glp::Flags flags("glp4nn_fuzz",
                   "Differential fuzzer for the GLP4NN runtime scheduler "
                   "(exit 0 iff every case passes).");
  flags.opt("cases", &cases, "number of cases; seeds are seed..seed+n-1")
      .opt("seed", &seed_arg, "first seed")
      .opt("replay", &replay_arg, "run exactly this one seed, verbosely")
      .opt("fault-rate", &diff.faults.launch_failure_rate,
           "injected kernel-launch failure probability")
      .opt("stream-fault-rate", &diff.faults.stream_create_failure_rate,
           "injected stream-creation failure probability")
      .opt("capture-loss-rate", &diff.faults.capture_loss_rate,
           "injected profiler record-loss probability")
      .opt("max-batch", &gen.max_batch, "cap generated batch sizes")
      .flag("engine-compare", &engine_compare,
            "compare optimized engine vs ReferenceEngine (bit-identical "
            "losses, params and timelines) instead of serial-vs-scheduler")
      .flag("dag", &dag,
            "branchy DAG corpus + three-way DAG differential (DAG vs "
            "serial AND DAG vs chain-only, with op-schedule replay)")
      .flag("fleet", &fleet,
            "fleet corpus: N-device data-parallel training vs the "
            "single-device reference (bit-identical) + link-contract audit")
      .opt("fleet-devices", &fleet_opts.devices, "fleet width")
      .opt("links", &links, "fleet interconnect: nvlink or pcie")
      .opt("fleet-engine", &fleet_engine,
           "engine the fleet devices run on: optimized or reference "
           "(reference doubles as a cross-engine fleet differential)")
      .flag("no-overlap", &no_overlap,
            "fleet: serialize-then-reduce instead of eager bucketed overlap")
      .opt("collective", &collective,
           "fleet all-reduce: auto|ring|tree|hier|sample (per case)")
      .flag("fp16-wire", &fp16_wire,
            "fleet: fp16 gradient compression on the wire")
      .flag("no-branches", &no_branches, "linear nets only")
      .flag("no-timeline", &no_timeline,
            "skip timeline recording + race checking")
      .opt("trace", &trace_path,
           "Chrome trace of the last failing (or replayed) case")
      .flag("verbose", &verbose, "one summary line per case");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }
  seed = seed_arg;
  if (!replay_arg.empty()) {
    try {
      seed = std::stoull(replay_arg);
    } catch (const std::exception&) {
      fail(flags, "bad value '" + replay_arg + "' for --replay");
    }
    replay = true;
    cases = 1;
    verbose = true;
  }
  if (no_branches) gen.allow_branches = false;
  if (no_timeline) diff.check_timeline = false;
  if (fleet) {
    if (engine_compare || dag) fail(flags, "--fleet excludes the other modes");
    if (fleet_opts.devices < 1) fail(flags, "--fleet-devices must be >= 1");
    if (links == "nvlink") {
      fleet_opts.topology = gpusim::LinkTopology::kNvlinkRing;
    } else if (links == "pcie") {
      fleet_opts.topology = gpusim::LinkTopology::kPcieHost;
    } else {
      fail(flags, "--links must be nvlink or pcie");
    }
    if (fleet_engine == "optimized") {
      fleet_opts.engine = gpusim::EngineKind::kOptimized;
    } else if (fleet_engine == "reference") {
      fleet_opts.engine = gpusim::EngineKind::kReference;
    } else {
      fail(flags, "--fleet-engine must be optimized or reference");
    }
    fleet_opts.overlap = !no_overlap;
    fleet_opts.faults = diff.faults;
    fleet_opts.check_transfers = !no_timeline;
    if (collective == "sample") {
      collective_sample = true;
    } else if (const auto choice = comm::parse_collective(collective)) {
      fleet_opts.collective.collective = *choice;
    } else {
      fail(flags, "--collective must be auto|ring|tree|hier|sample");
    }
    fleet_opts.collective.wire =
        fp16_wire ? comm::WireFormat::kFp16 : comm::WireFormat::kFp32;
  }
  if (dag) {
    gen.dag_corpus = true;
    // Under --engine-compare the DAG path runs inside the engine gate.
    if (engine_compare) diff.dag_schedule = true;
  }
  if (cases <= 0) fail(flags, "--cases must be positive");
  for (double rate : {diff.faults.launch_failure_rate,
                      diff.faults.stream_create_failure_rate,
                      diff.faults.capture_loss_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      fail(flags, "fault rates must be probabilities in [0, 1]");
    }
  }

  Stats stats;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(i);
    const glpfuzz::FuzzCase c = fleet ? glpfuzz::make_fleet_case(case_seed, gen)
                                      : glpfuzz::make_case(case_seed, gen);

    if (fleet) {
      if (collective_sample) {
        // Rotate through the choices deterministically so a failing seed
        // replays with the same algorithm via an explicit --collective.
        static const comm::CollectiveChoice kRotation[] = {
            comm::CollectiveChoice::kAuto, comm::CollectiveChoice::kRing,
            comm::CollectiveChoice::kTree, comm::CollectiveChoice::kHier};
        fleet_opts.collective.collective = kRotation[case_seed % 4];
      }
      glpfuzz::FleetDiffResult fr;
      try {
        fr = glpfuzz::run_fleet_differential(c, fleet_opts);
      } catch (const std::exception& e) {
        fr.ok = false;
        fr.failure = std::string("exception: ") + e.what();
      }
      stats.launch_faults += fr.launch_faults;
      stats.stream_faults += fr.stream_faults;
      stats.fallback_scopes += static_cast<std::size_t>(fr.comm_fallbacks);
      ++stats.bit_exact;
      if (fr.ok) {
        ++stats.passed;
        if (verbose) {
          std::printf(
              "PASS %s | %d device(s), %s all-reduce%s bit-identical over "
              "%zu params, %zu bucket(s), %zu transfer(s), peak link "
              "%.1f GB/s\n",
              c.summary().c_str(), fleet_opts.devices,
              comm::to_string(fleet_opts.collective.collective),
              fp16_wire ? " (fp16 wire)" : "", fr.params_compared, fr.buckets,
              fr.transfers.transfers_checked, fr.transfers.peak_channel_rate);
        }
      } else {
        ++stats.failed;
        std::printf("FAIL %s\n     %s\n", c.summary().c_str(),
                    fr.failure.c_str());
        std::printf("     replay: %s --replay %llu --fleet --fleet-devices "
                    "%d --links %s --fleet-engine %s --collective %s%s%s\n",
                    argv[0], static_cast<unsigned long long>(case_seed),
                    fleet_opts.devices, links.c_str(), fleet_engine.c_str(),
                    comm::to_string(fleet_opts.collective.collective),
                    fp16_wire ? " --fp16-wire" : "",
                    no_overlap ? " --no-overlap" : "");
      }
      continue;
    }

    if (engine_compare) {
      glpfuzz::EngineDiffResult er;
      try {
        er = glpfuzz::run_engine_differential(c, diff);
      } catch (const std::exception& e) {
        er.ok = false;
        er.failure = std::string("exception: ") + e.what();
      }
      if (er.ok) {
        ++stats.passed;
        ++stats.bit_exact;
        if (verbose) {
          std::printf("PASS %s | engines bit-identical over %zu kernels, "
                      "%zu copies\n",
                      c.summary().c_str(), er.kernels_compared,
                      er.copies_compared);
        }
      } else {
        ++stats.failed;
        std::printf("FAIL %s\n     %s\n", c.summary().c_str(),
                    er.failure.c_str());
        std::printf("     replay: %s --replay %llu --engine-compare%s\n",
                    argv[0], static_cast<unsigned long long>(case_seed),
                    dag ? " --dag" : "");
      }
      continue;
    }

    if (dag) {
      glpfuzz::DagDiffResult dr;
      try {
        dr = glpfuzz::run_dag_differential(c, diff);
      } catch (const std::exception& e) {
        dr.ok = false;
        dr.failure = std::string("exception: ") + e.what();
      }

      stats.launch_faults += dr.launch_faults;
      stats.stream_faults += dr.stream_faults;
      stats.fallback_scopes += dr.serial_fallback_scopes;
      stats.relu_epilogues += dr.relu_epilogues;
      stats.fused_chains += dr.fused_chains;
      stats.peak_concurrency =
          std::max(stats.peak_concurrency, dr.races.peak_concurrency);
      stats.peak_op_concurrency =
          std::max({stats.peak_op_concurrency,
                    dr.forward_schedule.peak_op_concurrency,
                    dr.backward_schedule.peak_op_concurrency});
      (dr.bit_exact_expected ? stats.bit_exact : stats.tolerance) += 1;

      if (dr.ok) {
        ++stats.passed;
        if (verbose) {
          std::printf(
              "PASS %s | %s, fused %zu chain(s) + %zu epilogue(s), "
              "op-concurrency fwd=%d bwd=%d, %zu+%zu edges\n",
              c.summary().c_str(),
              dr.serial_bits_match && dr.chain_bits_match ? "bit-exact"
                                                          : "tolerance",
              dr.fused_chains, dr.relu_epilogues,
              dr.forward_schedule.peak_op_concurrency,
              dr.backward_schedule.peak_op_concurrency,
              dr.forward_schedule.edges_checked,
              dr.backward_schedule.edges_checked);
        }
      } else {
        ++stats.failed;
        std::printf("FAIL %s\n     %s\n", c.summary().c_str(),
                    dr.failure.c_str());
        if (!dr.races.clean()) std::fputs(dr.races.to_string().c_str(), stdout);
        if (!dr.forward_schedule.clean()) {
          std::fputs(dr.forward_schedule.to_string().c_str(), stdout);
        }
        if (!dr.backward_schedule.clean()) {
          std::fputs(dr.backward_schedule.to_string().c_str(), stdout);
        }
        std::printf("     replay: %s --replay %llu --dag\n", argv[0],
                    static_cast<unsigned long long>(case_seed));
      }

      // Trace dump of the DAG-scheduled run (same shape as the serial
      // branch below, with ec.dag_schedule on).
      if (!trace_path.empty() && (replay || !dr.ok)) {
        const glpfuzz::FuzzCase again = glpfuzz::make_case(case_seed, gen);
        scuda::Context ctx(again.device);
        ctx.device().timeline().set_enabled(true);
        glp4nn::Glp4nnEngine engine(again.options);
        mc::ExecContext ec;
        ec.ctx = &ctx;
        ec.dispatcher = &engine.scheduler_for(ctx);
        ec.dag_schedule = true;
        mc::Net net(again.net, ec);
        mc::SgdSolver solver(net, {});
        solver.step(again.iters);
        ctx.device().synchronize();
        const glpfuzz::RaceReport report =
            glpfuzz::check_timeline(ctx.device().timeline(), again.device);
        gpusim::write_chrome_trace(ctx.device().timeline(),
                                   glpfuzz::violation_markers(report),
                                   trace_path);
        std::printf("     trace written to %s\n", trace_path.c_str());
      }
      continue;
    }

    glpfuzz::DiffResult r;
    std::string error;
    try {
      r = glpfuzz::run_differential(c, diff);
    } catch (const std::exception& e) {
      r.ok = false;
      r.failure = std::string("exception: ") + e.what();
    }

    stats.launch_faults += r.launch_faults;
    stats.stream_faults += r.stream_faults;
    stats.capture_drops += r.capture_drops;
    stats.fallback_scopes += r.serial_fallback_scopes;
    stats.peak_concurrency =
        std::max(stats.peak_concurrency, r.races.peak_concurrency);
    (r.bit_exact_expected ? stats.bit_exact : stats.tolerance) += 1;

    if (r.ok) {
      ++stats.passed;
      if (verbose) {
        std::printf("PASS %s | %s, max param diff %.3g, %zu ops, peak C=%d\n",
                    c.summary().c_str(),
                    r.bit_exact_observed ? "bit-exact" : "tolerance",
                    r.max_param_diff, r.races.ops_checked,
                    r.races.peak_concurrency);
      }
    } else {
      ++stats.failed;
      std::printf("FAIL %s\n     %s\n", c.summary().c_str(),
                  r.failure.c_str());
      if (!r.races.clean()) {
        std::fputs(r.races.to_string().c_str(), stdout);
      }
      std::printf("     replay: %s --replay %llu\n", argv[0],
                  static_cast<unsigned long long>(case_seed));
    }

    // On request, dump a trace of the replayed (or any failing) case with
    // race-violation markers for chrome://tracing triage.
    if (!trace_path.empty() && (replay || !r.ok)) {
      const glpfuzz::FuzzCase again = glpfuzz::make_case(case_seed, gen);
      scuda::Context ctx(again.device);
      ctx.device().timeline().set_enabled(true);
      glp4nn::Glp4nnEngine engine(again.options);
      mc::ExecContext ec;
      ec.ctx = &ctx;
      ec.dispatcher = &engine.scheduler_for(ctx);
      mc::Net net(again.net, ec);
      mc::SgdSolver solver(net, {});
      solver.step(again.iters);
      ctx.device().synchronize();
      const glpfuzz::RaceReport report =
          glpfuzz::check_timeline(ctx.device().timeline(), again.device);
      gpusim::write_chrome_trace(ctx.device().timeline(),
                                 glpfuzz::violation_markers(report),
                                 trace_path);
      std::printf("     trace written to %s\n", trace_path.c_str());
    }
  }

  std::printf(
      "\n%d/%d cases passed (%d bit-exact regime, %d tolerance regime)\n",
      stats.passed, cases, stats.bit_exact, stats.tolerance);
  if (stats.launch_faults + stats.stream_faults + stats.capture_drops > 0) {
    std::printf(
        "faults injected: %zu launch, %zu stream-create, %zu capture drops; "
        "%zu scope(s) degraded to serial\n",
        stats.launch_faults, stats.stream_faults, stats.capture_drops,
        stats.fallback_scopes);
  }
  if (dag && !engine_compare) {
    std::printf(
        "dag: %zu coalesced chain(s), %zu ReLU epilogue(s), peak op "
        "concurrency %d\n",
        stats.fused_chains, stats.relu_epilogues, stats.peak_op_concurrency);
  }
  return stats.failed == 0 ? 0 : 1;
}
