// glp4nn_serve — replay synthetic open-loop traffic against the inference
// serving subsystem and report latency/throughput/SLO attainment.
//
//   glp4nn_serve --requests 1000 --rate 2000
//   glp4nn_serve --models tiny_cnn,mlp --arrival flash_crowd --compare
//   glp4nn_serve --batch-mode continuous --rate 100000 --requests 20000
//   glp4nn_serve --slo-aware --deadline-ms 5 --qos 2000:4,0
//   glp4nn_serve --ingest-threads 4 --rate 50000
//
// With --compare the same trace is replayed twice — GLP4NN scheduler vs
// serial baseline — and both result lines are printed for a side-by-side
// read (the scheduler should win on p99 and throughput).
//
// --ingest-threads N exercises the lock-free MPMC producer→batcher
// handoff for real: N wall-clock producer threads push the trace through
// a bounded glp::MpmcRing, the drain side verifies nothing was lost or
// duplicated, and the drained trace is then replayed deterministically on
// the simulated clock. Everything else in the tool is simulated-time and
// bit-reproducible for a given seed.
//
// --fleet-devices N shards the tenants across an N-device fleet
// (serving/fleet_server.hpp): tenants land on --replicas-wide replica
// groups and a deterministic least-busy router splits the trace.
// --device-gen picks each device's generation (repeatable or
// comma-separated, cycled to the fleet width; default --device).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/mpmc_ring.hpp"
#include "common/strings.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/trace_export.hpp"
#include "serving/fleet_server.hpp"
#include "serving/model_zoo.hpp"
#include "serving/server.hpp"
#include "simcuda/fleet.hpp"

namespace {

[[noreturn]] void fail(const glp::Flags& flags, const std::string& error) {
  std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
               flags.usage().c_str());
  std::exit(2);
}

struct RunResult {
  serving::ServingStats stats;
  std::size_t replicas = 0;
};

void print_stats(const char* label, const RunResult& r, bool per_tenant) {
  const serving::ServingStats& s = r.stats;
  std::printf(
      "%-8s served %zu/%zu (rej %zu, shed %zu, exp %zu, miss %zu, down %zu) | "
      "p50 %.3f p95 %.3f p99 %.3f ms | %.0f req/s | slo %.2f%% | "
      "%llu batches (mean %.2f) | %zu arenas\n",
      label, s.served, s.offered, s.rejected, s.shed, s.expired,
      s.deadline_misses, s.downgraded, s.p50_ms, s.p95_ms, s.p99_ms,
      s.throughput_rps, 100.0 * s.slo_attainment,
      static_cast<unsigned long long>(s.batches), s.mean_batch, r.replicas);
  if (!per_tenant) return;
  for (const serving::TenantStats& t : s.tenants) {
    std::printf(
        "  tenant %d: served %zu/%zu (rej %zu, shed %zu, exp %zu, miss %zu, "
        "down %zu) | p99 %.3f ms | %.0f req/s | slo %.2f%%\n",
        t.tenant, t.served, t.offered, t.rejected, t.shed, t.expired,
        t.deadline_misses, t.downgraded, t.p99_ms, t.throughput_rps,
        100.0 * t.slo_attainment);
  }
}

/// Wall-clock multi-producer ingest through the lock-free ring: the trace
/// is partitioned across `threads` producers pushing concurrently while
/// this thread drains. Verifies the no-loss/no-duplication contract and
/// returns the drained trace (re-sorted by the deterministic replay).
std::vector<serving::InferenceRequest> mpmc_ingest(
    std::vector<serving::InferenceRequest> trace, int threads) {
  glp::MpmcRing<serving::InferenceRequest> ring(1024);
  const std::size_t total = trace.size();

  const auto t_start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(threads));
  for (int p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < total;
           i += static_cast<std::size_t>(threads)) {
        while (!ring.try_push(std::move(trace[i]))) std::this_thread::yield();
      }
    });
  }
  std::vector<serving::InferenceRequest> drained;
  drained.reserve(total);
  while (drained.size() < total) {
    serving::InferenceRequest r;
    if (ring.try_pop(r)) {
      drained.push_back(std::move(r));
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  std::set<std::uint64_t> ids;
  for (const auto& r : drained) ids.insert(r.id);
  GLP_REQUIRE(ids.size() == total,
              "mpmc ingest lost or duplicated requests: " << ids.size()
                                                          << " unique of "
                                                          << total);
  std::printf(
      "mpmc ingest: %zu requests through %d producers in %.3f s "
      "(%.0f req/s wall), none lost or duplicated\n",
      total, threads, secs, static_cast<double>(total) / std::max(secs, 1e-9));
  return drained;
}

}  // namespace

int main(int argc, char** argv) {
  std::string models_csv = "tiny_cnn,small_cnn";
  std::string device = "P100", mode = "glp4nn", arrival = "poisson";
  std::string batch_mode = "windowed", qos_csv;
  std::string trace_path, json_path;
  int requests = 1000, max_batch = 8, slots = 4, queue_cap = 64;
  int ingest_threads = 0;
  int fleet_devices = 1, replicas = 1;
  std::vector<std::string> device_gens;
  double rate = 2000.0, max_delay_us = 2000.0, deadline_ms = 0.0;
  double headroom = 1.2;
  unsigned long long seed = 42;
  bool no_batching = false, timing_only = false, compare = false;
  bool no_coalesce = false, slo_aware = false, downgrade = false;

  glp::Flags flags("glp4nn_serve",
                   "Replay synthetic open-loop inference traffic against "
                   "the multi-tenant serving subsystem.");
  flags
      .opt("models", &models_csv,
           "comma-separated tenant models: tiny_cnn|small_cnn|mlp")
      .opt("device", &device, "K40C|P100|TitanXP|Fermi|Maxwell|Volta")
      .opt("mode", &mode, "glp4nn|serial")
      .opt("requests", &requests, "trace length")
      .opt("rate", &rate, "offered load, requests/s")
      .opt("arrival", &arrival,
           "poisson|bursty|uniform|diurnal|flash_crowd|heavy_tail|adversarial")
      .opt("deadline-ms", &deadline_ms, "per-request deadline (0 = none)")
      .opt("batch-mode", &batch_mode, "windowed|continuous")
      .opt("max-batch", &max_batch, "dynamic batcher size cap")
      .opt("max-delay-us", &max_delay_us, "batcher delay cap (windowed mode)")
      .flag("no-batching", &no_batching, "disable the dynamic batcher")
      .flag("no-coalesce", &no_coalesce, "disable lane coalescing")
      .flag("slo-aware", &slo_aware,
            "shed provably-late requests at admission")
      .flag("downgrade", &downgrade,
            "serve infeasible requests best-effort instead of shedding")
      .opt("headroom", &headroom, "admission feasibility safety factor")
      .opt("qos", &qos_csv,
           "per-tenant rate contracts, rate[:burst] CSV (0 = no contract)")
      .opt("slots", &slots, "concurrent in-flight batch slots")
      .opt("queue", &queue_cap, "per-tenant admission queue capacity")
      .opt("ingest-threads", &ingest_threads,
           "wall-clock MPMC ingest producers (0 = direct handoff)")
      .opt("fleet-devices", &fleet_devices,
           "shard tenants across this many devices (1 = single device)")
      .opt("replicas", &replicas, "replica-group size per tenant (fleet mode)")
      .opt_list("device-gen", &device_gens,
                "per-device generation, repeatable/comma-separated, cycled "
                "to the fleet width (default: --device everywhere)")
      .opt("seed", &seed, "trace seed")
      .flag("timing-only", &timing_only, "skip numerics; timing simulation only")
      .flag("compare", &compare, "replay under both glp4nn and serial")
      .opt("trace", &trace_path, "Chrome trace of the (last) replay")
      .opt("json", &json_path, "write stats as JSON");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    const auto props = gpusim::DeviceTable::by_name(device);
    if (!props) fail(flags, "unknown device '" + device + "'");
    if (mode != "glp4nn" && mode != "serial") {
      fail(flags, "unknown mode '" + mode + "'");
    }
    if (fleet_devices < 1) fail(flags, "--fleet-devices must be >= 1");
    if (replicas < 1) fail(flags, "--replicas must be >= 1");
    const bool fleet_mode = fleet_devices > 1;
    if (fleet_mode && !trace_path.empty()) {
      fail(flags, "--trace exports a single device timeline; "
                  "it is not supported in fleet mode");
    }
    std::vector<gpusim::DeviceProps> fleet_props;
    for (int d = 0; d < fleet_devices; ++d) {
      if (device_gens.empty()) {
        fleet_props.push_back(*props);
      } else {
        const std::string& gen = device_gens[static_cast<std::size_t>(d) %
                                             device_gens.size()];
        const auto p = gpusim::DeviceTable::by_name(gen);
        if (!p) fail(flags, "unknown device '" + gen + "'");
        fleet_props.push_back(*p);
      }
    }
    serving::TraceSpec ts;
    ts.requests = requests;
    ts.rate_rps = rate;
    ts.tenants = 0;  // set below
    ts.deadline_ms = deadline_ms;
    ts.seed = seed;
    ts.fill_inputs = !timing_only;
    if (arrival == "poisson") {
      ts.arrival = serving::ArrivalProcess::kPoisson;
    } else if (arrival == "bursty") {
      ts.arrival = serving::ArrivalProcess::kBursty;
    } else if (arrival == "uniform") {
      ts.arrival = serving::ArrivalProcess::kUniform;
    } else if (arrival == "diurnal") {
      ts.arrival = serving::ArrivalProcess::kDiurnal;
    } else if (arrival == "flash_crowd") {
      ts.arrival = serving::ArrivalProcess::kFlashCrowd;
    } else if (arrival == "heavy_tail") {
      ts.arrival = serving::ArrivalProcess::kHeavyTail;
    } else if (arrival == "adversarial") {
      ts.arrival = serving::ArrivalProcess::kAdversarial;
    } else {
      fail(flags, "unknown arrival process '" + arrival + "'");
    }

    std::vector<serving::TenantModel> models;
    for (const std::string& name : glp::split(models_csv, ",")) {
      serving::TenantModel m;
      m.name = std::string(glp::trim(name));
      m.spec = serving::by_name(m.name);
      models.push_back(std::move(m));
    }
    if (models.empty()) fail(flags, "--models named no tenants");
    ts.tenants = static_cast<int>(models.size());

    if (!qos_csv.empty()) {
      const auto parts = glp::split(qos_csv, ",");
      if (parts.size() != models.size()) {
        fail(flags, "--qos names " + std::to_string(parts.size()) +
                        " contracts for " + std::to_string(models.size()) +
                        " tenants");
      }
      for (std::size_t t = 0; t < parts.size(); ++t) {
        const auto rb = glp::split(std::string(glp::trim(parts[t])), ":");
        models[t].qos.rate_rps = std::stod(std::string(glp::trim(rb[0])));
        if (rb.size() > 1) {
          models[t].qos.burst = std::stod(std::string(glp::trim(rb[1])));
        }
      }
    }

    serving::ServerOptions base;
    base.batch.enabled = !no_batching;
    if (batch_mode == "continuous") {
      base.batch.mode = serving::BatchMode::kContinuous;
    } else if (batch_mode != "windowed") {
      fail(flags, "unknown batch mode '" + batch_mode + "'");
    }
    base.batch.max_batch = max_batch;
    base.batch.max_delay_us = max_delay_us;
    base.coalesce_lanes = !no_coalesce;
    base.admission.slo_aware = slo_aware;
    base.admission.downgrade = downgrade;
    base.admission.headroom = headroom;
    base.slots = slots;
    base.queue_capacity = static_cast<std::size_t>(queue_cap);
    base.mode = timing_only ? kern::ComputeMode::kTimingOnly
                            : kern::ComputeMode::kNumeric;

    if (fleet_mode) {
      std::printf("serving %zu tenant(s) [%s] on a %d-device %s fleet "
                  "(%d replica(s) per tenant): %d requests @ %.0f req/s "
                  "(%s arrivals, %s batching)\n",
                  models.size(), models_csv.c_str(), fleet_devices,
                  fleet_props.front().name.c_str(), replicas, requests, rate,
                  arrival.c_str(), serving::batch_mode_name(base.batch.mode));
    } else {
      std::printf("serving %zu tenant(s) [%s] on %s: %d requests @ %.0f req/s "
                  "(%s arrivals, %s batching)\n",
                  models.size(), models_csv.c_str(), props->name.c_str(),
                  requests, rate, arrival.c_str(),
                  serving::batch_mode_name(base.batch.mode));
    }

    std::vector<std::size_t> sizes;
    for (const auto& m : models) {
      const auto& d = m.spec.layers.front().params.dataset;
      sizes.push_back(static_cast<std::size_t>(d.channels) * d.height *
                      d.width);
    }
    auto trace = serving::make_trace(ts, sizes);
    if (ingest_threads > 0) {
      trace = mpmc_ingest(std::move(trace), ingest_threads);
    }

    const auto run = [&](bool use_scheduler) -> RunResult {
      RunResult r;
      if (fleet_mode) {
        scuda::Fleet fleet(fleet_props, {});
        serving::FleetServerOptions fo;
        fo.server = base;
        fo.server.use_scheduler = use_scheduler;
        fo.replicas = replicas;
        serving::FleetServer server(fleet, models, fo);
        const auto records = server.replay(trace);
        r.stats = serving::InferenceServer::summarize(records);
        for (int d = 0; d < server.devices(); ++d) {
          r.replicas += server.server(d).total_replicas();
        }
        return r;
      }
      scuda::Context gpu(*props);
      serving::ServerOptions opts = base;
      opts.use_scheduler = use_scheduler;
      if (!trace_path.empty()) opts.record_timeline = true;
      serving::InferenceServer server(gpu, models, opts);
      const auto records = server.replay(trace);
      if (!trace_path.empty()) {
        gpusim::write_chrome_trace(gpu.device().timeline(), trace_path);
      }
      r.stats = serving::InferenceServer::summarize(records);
      r.replicas = server.total_replicas();
      return r;
    };

    const bool per_tenant = models.size() > 1;
    RunResult glp_result, serial_result;
    const bool want_glp = compare || mode == "glp4nn";
    const bool want_serial = compare || mode == "serial";
    if (want_serial) {
      serial_result = run(false);
      print_stats("serial", serial_result, per_tenant);
    }
    if (want_glp) {
      glp_result = run(true);
      print_stats("glp4nn", glp_result, per_tenant);
    }
    if (compare) {
      const auto& a = glp_result.stats;
      const auto& b = serial_result.stats;
      std::printf("glp4nn vs serial: p99 %.3f vs %.3f ms (%.2fx), "
                  "throughput %.0f vs %.0f req/s (%.2fx)\n",
                  a.p99_ms, b.p99_ms, b.p99_ms / std::max(a.p99_ms, 1e-9),
                  a.throughput_rps, b.throughput_rps,
                  a.throughput_rps / std::max(b.throughput_rps, 1e-9));
    }
    if (!trace_path.empty()) {
      std::printf("trace written to '%s'\n", trace_path.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      const auto dump = [&](const char* key, const RunResult& r, bool comma) {
        const serving::ServingStats& s = r.stats;
        os << "  \"" << key << "\": {\"served\": " << s.served
           << ", \"rejected\": " << s.rejected << ", \"shed\": " << s.shed
           << ", \"expired\": " << s.expired
           << ", \"downgraded\": " << s.downgraded
           << ", \"deadline_misses\": " << s.deadline_misses
           << ", \"slo_attainment\": " << s.slo_attainment
           << ", \"p50_ms\": " << s.p50_ms << ", \"p95_ms\": " << s.p95_ms
           << ", \"p99_ms\": " << s.p99_ms
           << ", \"throughput_rps\": " << s.throughput_rps
           << ", \"batches\": " << s.batches
           << ", \"mean_batch\": " << s.mean_batch
           << ", \"batch_mode\": \"" << serving::batch_mode_name(base.batch.mode)
           << "\", \"arenas\": " << r.replicas << ", \"tenants\": [";
        for (std::size_t i = 0; i < s.tenants.size(); ++i) {
          const serving::TenantStats& t = s.tenants[i];
          os << (i ? ", " : "") << "{\"tenant\": " << t.tenant
             << ", \"served\": " << t.served << ", \"shed\": " << t.shed
             << ", \"expired\": " << t.expired
             << ", \"downgraded\": " << t.downgraded
             << ", \"p99_ms\": " << t.p99_ms
             << ", \"slo_attainment\": " << t.slo_attainment
             << ", \"throughput_rps\": " << t.throughput_rps << "}";
        }
        os << "]}" << (comma ? ",\n" : "\n");
      };
      os << "{\n";
      if (want_glp) dump("glp4nn", glp_result, want_serial);
      if (want_serial) dump("serial", serial_result, false);
      os << "}\n";
      std::printf("stats written to '%s'\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
