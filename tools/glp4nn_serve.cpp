// glp4nn_serve — replay synthetic open-loop traffic against the inference
// serving subsystem and report latency/throughput.
//
//   glp4nn_serve --requests 1000 --rate 2000
//   glp4nn_serve --models tiny_cnn,small_cnn --arrival bursty --compare
//   glp4nn_serve --mode serial --no-batching --deadline-ms 20
//
// With --compare the same trace is replayed twice — GLP4NN scheduler vs
// serial baseline — and both result lines are printed for a side-by-side
// read (the scheduler should win on p99 and throughput).

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/trace_export.hpp"
#include "serving/model_zoo.hpp"
#include "serving/server.hpp"

namespace {

[[noreturn]] void fail(const glp::Flags& flags, const std::string& error) {
  std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
               flags.usage().c_str());
  std::exit(2);
}

struct RunResult {
  serving::ServingStats stats;
  std::size_t replicas = 0;
};

void print_stats(const char* label, const RunResult& r) {
  const serving::ServingStats& s = r.stats;
  std::printf(
      "%-8s served %zu/%zu (rej %zu, exp %zu, miss %zu) | "
      "p50 %.3f p95 %.3f p99 %.3f ms | %.0f req/s | "
      "%llu batches (mean %.2f) | %zu arenas\n",
      label, s.served, s.offered, s.rejected, s.expired, s.deadline_misses,
      s.p50_ms, s.p95_ms, s.p99_ms, s.throughput_rps,
      static_cast<unsigned long long>(s.batches), s.mean_batch, r.replicas);
}

}  // namespace

int main(int argc, char** argv) {
  std::string models_csv = "tiny_cnn,small_cnn";
  std::string device = "P100", mode = "glp4nn", arrival = "poisson";
  std::string trace_path, json_path;
  int requests = 1000, max_batch = 8, slots = 4, queue_cap = 64;
  double rate = 2000.0, max_delay_us = 2000.0, deadline_ms = 0.0;
  unsigned long long seed = 42;
  bool no_batching = false, timing_only = false, compare = false;

  glp::Flags flags("glp4nn_serve",
                   "Replay synthetic open-loop inference traffic against "
                   "the multi-tenant serving subsystem.");
  flags
      .opt("models", &models_csv,
           "comma-separated tenant models: tiny_cnn|small_cnn|mlp")
      .opt("device", &device, "K40C|P100|TitanXP|Fermi|Maxwell|Volta")
      .opt("mode", &mode, "glp4nn|serial")
      .opt("requests", &requests, "trace length")
      .opt("rate", &rate, "offered load, requests/s")
      .opt("arrival", &arrival, "poisson|bursty|uniform")
      .opt("deadline-ms", &deadline_ms, "per-request deadline (0 = none)")
      .opt("max-batch", &max_batch, "dynamic batcher size cap")
      .opt("max-delay-us", &max_delay_us, "dynamic batcher delay cap")
      .flag("no-batching", &no_batching, "disable the dynamic batcher")
      .opt("slots", &slots, "concurrent in-flight batch slots")
      .opt("queue", &queue_cap, "admission-control queue capacity")
      .opt("seed", &seed, "trace seed")
      .flag("timing-only", &timing_only, "skip numerics; timing simulation only")
      .flag("compare", &compare, "replay under both glp4nn and serial")
      .opt("trace", &trace_path, "Chrome trace of the (last) replay")
      .opt("json", &json_path, "write stats as JSON");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    const auto props = gpusim::DeviceTable::by_name(device);
    if (!props) fail(flags, "unknown device '" + device + "'");
    if (mode != "glp4nn" && mode != "serial") {
      fail(flags, "unknown mode '" + mode + "'");
    }
    serving::TraceSpec ts;
    ts.requests = requests;
    ts.rate_rps = rate;
    ts.tenants = 0;  // set below
    ts.deadline_ms = deadline_ms;
    ts.seed = seed;
    ts.fill_inputs = !timing_only;
    if (arrival == "poisson") {
      ts.arrival = serving::ArrivalProcess::kPoisson;
    } else if (arrival == "bursty") {
      ts.arrival = serving::ArrivalProcess::kBursty;
    } else if (arrival == "uniform") {
      ts.arrival = serving::ArrivalProcess::kUniform;
    } else {
      fail(flags, "unknown arrival process '" + arrival + "'");
    }

    std::vector<serving::TenantModel> models;
    for (const std::string& name : glp::split(models_csv, ",")) {
      serving::TenantModel m;
      m.name = std::string(glp::trim(name));
      m.spec = serving::by_name(m.name);
      models.push_back(std::move(m));
    }
    if (models.empty()) fail(flags, "--models named no tenants");
    ts.tenants = static_cast<int>(models.size());

    serving::ServerOptions base;
    base.batch.enabled = !no_batching;
    base.batch.max_batch = max_batch;
    base.batch.max_delay_us = max_delay_us;
    base.slots = slots;
    base.queue_capacity = static_cast<std::size_t>(queue_cap);
    base.mode = timing_only ? kern::ComputeMode::kTimingOnly
                            : kern::ComputeMode::kNumeric;

    std::printf("serving %zu tenant(s) [%s] on %s: %d requests @ %.0f req/s "
                "(%s arrivals)\n",
                models.size(), models_csv.c_str(), props->name.c_str(),
                requests, rate, arrival.c_str());

    const auto run = [&](bool use_scheduler) -> RunResult {
      scuda::Context gpu(*props);
      serving::ServerOptions opts = base;
      opts.use_scheduler = use_scheduler;
      if (!trace_path.empty()) opts.record_timeline = true;
      serving::InferenceServer server(gpu, models, opts);
      std::vector<std::size_t> sizes;
      for (int t = 0; t < server.tenants(); ++t) {
        sizes.push_back(server.session(t).sample_input_size());
      }
      const auto records = server.replay(serving::make_trace(ts, sizes));
      if (!trace_path.empty()) {
        gpusim::write_chrome_trace(gpu.device().timeline(), trace_path);
      }
      RunResult r;
      r.stats = serving::InferenceServer::summarize(records);
      r.replicas = server.total_replicas();
      return r;
    };

    RunResult glp_result, serial_result;
    const bool want_glp = compare || mode == "glp4nn";
    const bool want_serial = compare || mode == "serial";
    if (want_serial) {
      serial_result = run(false);
      print_stats("serial", serial_result);
    }
    if (want_glp) {
      glp_result = run(true);
      print_stats("glp4nn", glp_result);
    }
    if (compare) {
      const auto& a = glp_result.stats;
      const auto& b = serial_result.stats;
      std::printf("glp4nn vs serial: p99 %.3f vs %.3f ms (%.2fx), "
                  "throughput %.0f vs %.0f req/s (%.2fx)\n",
                  a.p99_ms, b.p99_ms, b.p99_ms / std::max(a.p99_ms, 1e-9),
                  a.throughput_rps, b.throughput_rps,
                  a.throughput_rps / std::max(b.throughput_rps, 1e-9));
    }
    if (!trace_path.empty()) {
      std::printf("trace written to '%s'\n", trace_path.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      const auto dump = [&](const char* key, const RunResult& r, bool comma) {
        const serving::ServingStats& s = r.stats;
        os << "  \"" << key << "\": {\"served\": " << s.served
           << ", \"rejected\": " << s.rejected
           << ", \"expired\": " << s.expired
           << ", \"deadline_misses\": " << s.deadline_misses
           << ", \"p50_ms\": " << s.p50_ms << ", \"p95_ms\": " << s.p95_ms
           << ", \"p99_ms\": " << s.p99_ms
           << ", \"throughput_rps\": " << s.throughput_rps
           << ", \"batches\": " << s.batches
           << ", \"mean_batch\": " << s.mean_batch
           << ", \"arenas\": " << r.replicas << "}" << (comma ? ",\n" : "\n");
      };
      os << "{\n";
      if (want_glp) dump("glp4nn", glp_result, want_serial);
      if (want_serial) dump("serial", serial_result, false);
      os << "}\n";
      std::printf("stats written to '%s'\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
