// glp4nn_train — command-line trainer in the spirit of the `caffe` binary.
//
//   glp4nn_train --model cifar10 --device P100 --iters 20
//   glp4nn_train --net my_net.prototxt --mode serial --timing-only
//   glp4nn_train --model lenet --mode fixed:8 --snapshot weights.glpw
//
// Flags:
//   --net <file>        network definition in the text format
//   --model <name>      built-in model: lenet | cifar10 | siamese |
//                       caffenet | googlenet
//   --device <name>     K40C | P100 | TitanXP | Fermi | Maxwell | Volta
//   --mode <m>          glp4nn (default) | serial | fixed:<N> | strict
//   --iters <n>         training iterations (default 10)
//   --lr <f>            base learning rate (default 0.01)
//   --momentum <f>      SGD momentum (default 0.9)
//   --solver <s>        sgd | nesterov | adagrad
//   --timing-only       skip numerics; simulate kernel timing only
//   --snapshot <file>   write weights + solver state after training
//   --restore <file>    load weights + solver state before training
//   --display <n>       print loss every n iterations (default 1)
//   --trace <file>      write a Chrome trace of the final iteration
//   --summary           print the layer table before training
//   --profile           print an nvprof-style kernel summary at the end
//
// Fleet (data-parallel) training:
//   --fleet-devices <n> train on an n-device fleet with the bucketed
//                       collective all-reduce (default 1 = single device)
//   --device-gen <g>    per-device generation, repeatable or
//                       comma-separated, cycled to the fleet width
//                       (default: --device everywhere)
//   --links <kind>      fleet interconnect: nvlink | pcie
//   --no-overlap        serialize-then-reduce instead of eager overlap
//   --collective <c>    all-reduce algorithm: auto (cost model, default) |
//                       ring | tree | hier
//   --fp16-wire         compress gradients to fp16 on the wire (fp32
//                       accumulation; loss-trajectory tolerance contract)
//
// --trace works in fleet mode too: it writes a merged Chrome trace of the
// final iteration with one process row per device, cross-device
// memcpy_peer spans included.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/data_parallel.hpp"
#include "common/cli.hpp"
#include "core/glp4nn.hpp"
#include "gpusim/profile_report.hpp"
#include "gpusim/trace_export.hpp"
#include "minicaffe/models.hpp"
#include "minicaffe/net_parser.hpp"
#include "minicaffe/solver.hpp"
#include "simcuda/fleet.hpp"

namespace {

[[noreturn]] void fail(const glp::Flags& flags, const std::string& error) {
  std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
               flags.usage().c_str());
  std::exit(2);
}

mc::NetSpec builtin_model(const std::string& name) {
  if (name == "lenet") return mc::models::lenet();
  if (name == "cifar10") return mc::models::cifar10_quick();
  if (name == "siamese") return mc::models::siamese_mnist();
  if (name == "caffenet") return mc::models::caffenet();
  if (name == "googlenet") return mc::models::googlenet_tail();
  throw glp::InvalidArgument("unknown built-in model '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_file, model = "lenet", device = "P100", mode = "glp4nn";
  std::string snapshot_path, restore_path, solver_name = "sgd", trace_path;
  int iters = 10, display = 1;
  float lr = 0.01f, momentum = 0.9f;
  bool timing_only = false, want_summary = false, want_profile = false;
  int fleet_devices = 1;
  std::vector<std::string> device_gens;
  std::string links = "nvlink";
  bool no_overlap = false;
  std::string collective = "auto";
  bool fp16_wire = false;

  glp::Flags flags("glp4nn_train",
                   "Train a network on the simulated GPU (the `caffe` "
                   "binary of this repo).");
  flags.opt("net", &net_file, "network definition file (text format)")
      .opt("model", &model,
           "built-in model: lenet|cifar10|siamese|caffenet|googlenet")
      .opt("device", &device, "K40C|P100|TitanXP|Fermi|Maxwell|Volta")
      .opt("mode", &mode, "glp4nn|serial|fixed:N|strict")
      .opt("iters", &iters, "training iterations")
      .opt("lr", &lr, "base learning rate")
      .opt("momentum", &momentum, "SGD momentum")
      .opt("solver", &solver_name, "sgd|nesterov|adagrad")
      .flag("timing-only", &timing_only,
            "skip numerics; simulate kernel timing only")
      .opt("snapshot", &snapshot_path, "write weights + solver state after")
      .opt("restore", &restore_path, "load weights + solver state before")
      .opt("display", &display, "print loss every N iterations")
      .opt("trace", &trace_path, "write Chrome trace of the final iteration")
      .flag("summary", &want_summary, "print the layer table before training")
      .flag("profile", &want_profile, "print a kernel summary at the end")
      .opt("fleet-devices", &fleet_devices,
           "data-parallel fleet width (1 = single device)")
      .opt_list("device-gen", &device_gens,
                "per-device generation, repeatable/comma-separated, cycled "
                "to the fleet width (default: --device everywhere)")
      .opt("links", &links, "fleet interconnect: nvlink or pcie")
      .flag("no-overlap", &no_overlap,
            "fleet: serialize-then-reduce instead of eager bucketed overlap")
      .opt("collective", &collective,
           "fleet all-reduce algorithm: auto|ring|tree|hier")
      .flag("fp16-wire", &fp16_wire,
            "fleet: compress gradients to fp16 on the wire");
  switch (flags.parse(argc, argv)) {
    case glp::Flags::Status::kHelp:
      return 0;
    case glp::Flags::Status::kError:
      return 2;
    case glp::Flags::Status::kOk:
      break;
  }

  try {
    const auto props = gpusim::DeviceTable::by_name(device);
    if (!props) fail(flags, "unknown device '" + device + "'");

    const mc::NetSpec spec =
        net_file.empty() ? builtin_model(model) : mc::parse_net_file(net_file);

    mc::SolverParams sp;
    sp.base_lr = lr;
    sp.momentum = momentum;
    if (solver_name == "nesterov") {
      sp.type = mc::SolverType::kNesterov;
    } else if (solver_name == "adagrad") {
      sp.type = mc::SolverType::kAdaGrad;
    } else if (solver_name != "sgd") {
      fail(flags, "unknown solver '" + solver_name + "'");
    }

    const auto report_iteration = [&](int iter, float loss) {
      if (display > 0 && iter % display == 0) {
        if (timing_only) {
          std::printf("iter %4d\n", iter);
        } else {
          std::printf("iter %4d  loss %.4f\n", iter, loss);
        }
      }
    };

    if (fleet_devices < 1) fail(flags, "--fleet-devices must be >= 1");
    if (fleet_devices > 1) {
      // --- data-parallel fleet training ---------------------------------
      if (!snapshot_path.empty() || !restore_path.empty() || want_profile) {
        fail(flags, "--snapshot/--restore/--profile are single-device only");
      }
      scuda::FleetOptions fopts;
      if (links == "nvlink") {
        fopts.topology = gpusim::LinkTopology::kNvlinkRing;
        fopts.link = gpusim::LinkProps::nvlink();
      } else if (links == "pcie") {
        fopts.topology = gpusim::LinkTopology::kPcieHost;
        fopts.link = gpusim::LinkProps::pcie();
      } else {
        fail(flags, "--links must be nvlink or pcie");
      }
      std::vector<gpusim::DeviceProps> fleet_props;
      for (int d = 0; d < fleet_devices; ++d) {
        const std::string& name =
            device_gens.empty()
                ? device
                : device_gens[static_cast<std::size_t>(d) % device_gens.size()];
        const auto p = gpusim::DeviceTable::by_name(name);
        if (!p) fail(flags, "unknown device '" + name + "'");
        fleet_props.push_back(*p);
      }
      scuda::Fleet fleet(fleet_props, fopts);

      std::vector<std::unique_ptr<kern::KernelDispatcher>> dispatchers;
      std::vector<std::unique_ptr<glp4nn::Glp4nnEngine>> engines;
      std::vector<std::unique_ptr<mc::ExecContext>> ecs;
      std::vector<mc::ExecContext*> ec_ptrs;
      for (int d = 0; d < fleet_devices; ++d) {
        scuda::Context& ctx = fleet.device(d);
        auto ec = std::make_unique<mc::ExecContext>();
        ec->ctx = &ctx;
        ec->mode = timing_only ? kern::ComputeMode::kTimingOnly
                               : kern::ComputeMode::kNumeric;
        if (mode == "serial") {
          dispatchers.push_back(std::make_unique<kern::SerialDispatcher>(ctx));
          ec->dispatcher = dispatchers.back().get();
        } else if (mode.rfind("fixed:", 0) == 0) {
          dispatchers.push_back(std::make_unique<kern::FixedStreamDispatcher>(
              ctx, std::stoi(mode.substr(6))));
          ec->dispatcher = dispatchers.back().get();
        } else if (mode == "glp4nn" || mode == "strict") {
          glp4nn::SchedulerOptions opts;
          opts.strict_repro = mode == "strict";
          engines.push_back(std::make_unique<glp4nn::Glp4nnEngine>(opts));
          ec->dispatcher = &engines.back()->scheduler_for(ctx);
        } else {
          fail(flags, "unknown mode '" + mode + "'");
        }
        ec_ptrs.push_back(ec.get());
        ecs.push_back(std::move(ec));
      }

      comm::FleetTrainerOptions topts;
      topts.solver = sp;
      topts.overlap = !no_overlap;
      const auto choice = comm::parse_collective(collective);
      if (!choice) fail(flags, "--collective must be auto|ring|tree|hier");
      topts.collective.collective = *choice;
      topts.collective.wire = fp16_wire ? comm::WireFormat::kFp16
                                        : comm::WireFormat::kFp32;
      comm::FleetTrainer trainer(fleet, ec_ptrs, spec, topts);
      std::size_t largest = 0;
      for (const auto& b : trainer.plan().buckets) {
        largest = std::max(largest, b.count);
      }
      std::printf(
          "net '%s': %zu layers on a %d-device %s fleet (%s links, %s, "
          "%zu bucket(s), %s all-reduce%s)%s\n",
          spec.name.c_str(), spec.layers.size(), fleet_devices,
          fleet_props.front().name.c_str(), links.c_str(),
          no_overlap ? "serialize-then-reduce" : "eager overlap",
          trainer.plan().buckets.size(),
          comm::to_string(trainer.collectives().algo_for(largest)),
          fp16_wire ? ", fp16 wire" : "", timing_only ? " (timing only)" : "");
      if (want_summary) std::printf("%s", trainer.net(0).summary().c_str());

      const double t0 = fleet.max_device_now();
      if (trace_path.empty()) {
        trainer.step(iters, report_iteration);
      } else {
        // Train normally, recording every device's final iteration and
        // merging them into one per-device-process Chrome trace.
        if (iters > 1) trainer.step(iters - 1, report_iteration);
        for (int d = 0; d < fleet_devices; ++d) {
          fleet.device(d).device().timeline().set_enabled(true);
        }
        trainer.step(1, report_iteration);
        fleet.synchronize_all();
        std::vector<const gpusim::Timeline*> timelines;
        std::vector<std::string> names;
        for (int d = 0; d < fleet_devices; ++d) {
          timelines.push_back(&fleet.device(d).device().timeline());
          names.push_back("device " + std::to_string(d) + " (" +
                          fleet_props[static_cast<std::size_t>(d)].name + ")");
          fleet.device(d).device().timeline().set_enabled(false);
        }
        gpusim::write_chrome_trace_fleet(timelines, trace_path, names);
        std::printf("fleet trace written to '%s'\n", trace_path.c_str());
      }
      fleet.synchronize_all();
      const double ms = (fleet.max_device_now() - t0) / 1e6;
      std::printf(
          "trained %d iterations on %d devices in %.2f simulated ms "
          "(%.2f ms/iter, %zu cross-device transfer(s))\n",
          iters, fleet_devices, ms, ms / std::max(iters, 1),
          trainer.collectives().transfers().size());
      return 0;
    }

    scuda::Context gpu(*props);
    std::unique_ptr<kern::KernelDispatcher> fixed;
    std::unique_ptr<glp4nn::Glp4nnEngine> engine;
    mc::ExecContext ec;
    ec.ctx = &gpu;
    ec.mode = timing_only ? kern::ComputeMode::kTimingOnly
                          : kern::ComputeMode::kNumeric;
    if (mode == "serial") {
      fixed = std::make_unique<kern::SerialDispatcher>(gpu);
      ec.dispatcher = fixed.get();
    } else if (mode.rfind("fixed:", 0) == 0) {
      fixed = std::make_unique<kern::FixedStreamDispatcher>(
          gpu, std::stoi(mode.substr(6)));
      ec.dispatcher = fixed.get();
    } else if (mode == "glp4nn" || mode == "strict") {
      glp4nn::SchedulerOptions opts;
      opts.strict_repro = mode == "strict";
      engine = std::make_unique<glp4nn::Glp4nnEngine>(opts);
      ec.dispatcher = &engine->scheduler_for(gpu);
    } else {
      fail(flags, "unknown mode '" + mode + "'");
    }

    mc::Net net(spec, ec);
    std::printf("net '%s': %zu layers on %s, mode %s%s\n", spec.name.c_str(),
                spec.layers.size(), props->name.c_str(), mode.c_str(),
                timing_only ? " (timing only)" : "");
    if (want_summary) std::printf("%s", net.summary().c_str());
    if (want_profile) gpu.device().timeline().set_enabled(true);

    mc::SgdSolver solver(net, sp);
    if (!restore_path.empty()) {
      solver.restore(restore_path);
      std::printf("restored snapshot '%s' (iteration %d)\n",
                  restore_path.c_str(), solver.iter());
    }

    const double t0 = gpu.device().host_now();
    if (trace_path.empty()) {
      solver.step(iters, report_iteration);
    } else {
      // Train normally, recording a Chrome trace of the final iteration.
      if (iters > 1) solver.step(iters - 1, report_iteration);
      gpu.device().timeline().set_enabled(true);
      solver.step(1, report_iteration);
      gpusim::write_chrome_trace(gpu.device().timeline(), trace_path);
      gpu.device().timeline().set_enabled(false);
      std::printf("trace written to '%s'\n", trace_path.c_str());
    }
    const double ms = (gpu.device().host_now() - t0) / 1e6;
    std::printf("trained %d iterations in %.2f simulated ms (%.2f ms/iter)\n",
                iters, ms, ms / std::max(iters, 1));

    if (engine != nullptr) {
      const auto costs = engine->costs();
      std::printf("GLP4NN overhead: T_p %.3f ms, T_a %.3f ms; streams:\n",
                  costs.profiling_ms, costs.analysis_ms);
      for (const auto& [scope, d] : engine->analyzer_for(gpu)->decisions()) {
        std::printf("  %-20s -> %d\n", scope.c_str(),
                    engine->scheduler_for(gpu).stream_count(scope));
      }
    }

    if (want_profile) {
      std::printf("\nkernel profile (simulated):\n%s",
                  gpusim::profile_report(gpu.device().timeline(), 15).c_str());
    }

    if (!snapshot_path.empty()) {
      solver.snapshot(snapshot_path);
      std::printf("snapshot written to '%s'\n", snapshot_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
